#include "src/checkpoint/delta_engine.h"

#include <algorithm>

namespace pronghorn {

namespace {

constexpr int64_t kMinCostMs = 3;  // Even a tiny delta write takes a few ms.

}  // namespace

DeltaCheckpointEngine::DeltaCheckpointEngine(uint64_t seed, DeltaEngineOptions options)
    : rng_(HashCombine(seed, 0xde17aULL)), options_(options) {}

Duration DeltaCheckpointEngine::DrawCost(Duration mean, Duration stddev) {
  const double us = rng_.Gaussian(static_cast<double>(mean.ToMicros()),
                                  static_cast<double>(stddev.ToMicros()));
  return Duration::Micros(
      std::max<int64_t>(static_cast<int64_t>(us), kMinCostMs * 1000));
}

Result<CheckpointOutcome> DeltaCheckpointEngine::Checkpoint(
    const RuntimeProcess& process, SnapshotId id, TimePoint now) {
  if (id.value == 0) {
    return InvalidArgumentError("snapshot id 0 is reserved");
  }
  ByteWriter writer;
  writer.Reserve(last_payload_bytes_);
  process.Serialize(writer);
  last_payload_bytes_ = writer.size();

  const WorkloadProfile& profile = process.profile();
  const bool is_base = !base_taken_.contains(profile.name);
  const double size_fraction = is_base ? 1.0 : options_.delta_size_fraction;
  const double time_fraction = is_base ? 1.0 : options_.delta_checkpoint_fraction;

  SnapshotMetadata metadata;
  metadata.id = id;
  metadata.function = profile.name;
  metadata.request_number = process.requests_executed();
  metadata.logical_size_bytes = static_cast<uint64_t>(
      process.MemoryFootprintMb() * 1024.0 * 1024.0 * size_fraction);
  metadata.created_at = now;

  const Duration downtime =
      DrawCost(profile.checkpoint_mean * time_fraction,
               profile.checkpoint_stddev * time_fraction);
  base_taken_[profile.name] = true;
  RecordCheckpoint(downtime);
  SnapshotImage image(std::move(metadata), writer.TakeData());
  ObjectBlob blob(image.Encode(), image.metadata().logical_size_bytes);
  return CheckpointOutcome{std::move(image), downtime, std::move(blob)};
}

Result<RestoreOutcome> DeltaCheckpointEngine::Restore(const SnapshotImage& image,
                                                      const WorkloadRegistry& registry) {
  ByteReader reader(image.payload());
  PRONGHORN_ASSIGN_OR_RETURN(RuntimeProcess process,
                             RuntimeProcess::Deserialize(reader, registry));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes in snapshot payload");
  }
  if (process.requests_executed() != image.metadata().request_number) {
    return DataLossError("snapshot metadata request number disagrees with state");
  }
  process.ReseedForRestore(rng_.NextUint64());

  const WorkloadProfile& profile = process.profile();
  const Duration restore_time =
      DrawCost(profile.restore_mean * (1.0 + options_.restore_overhead_fraction),
               profile.restore_stddev);
  RecordRestore(restore_time);
  return RestoreOutcome(std::move(process), restore_time);
}

}  // namespace pronghorn
