// Deduplicating (delta) checkpoint engine.
//
// Demonstrates the paper's engine-agnosticism claim (§4: CRIU is "a stand-in
// for any Checkpoint Engine ... the benefits of our orchestration strategies
// can accrue to serverless systems that use different checkpoint-restore
// implementations") with a Medes-style engine [§7 related work]: most pages
// of consecutive snapshots of one function are identical, so after the first
// (base) snapshot, subsequent images are stored as deltas — far smaller and
// faster to write, slightly slower to restore (patch application).
//
// The payload still carries the complete serialized process state; only the
// *cost model* (logical size, checkpoint/restore time) reflects dedup.

#ifndef PRONGHORN_SRC_CHECKPOINT_DELTA_ENGINE_H_
#define PRONGHORN_SRC_CHECKPOINT_DELTA_ENGINE_H_

#include <map>
#include <string>

#include "src/checkpoint/engine.h"
#include "src/common/rng.h"

namespace pronghorn {

struct DeltaEngineOptions {
  // Fraction of the full image a delta snapshot occupies (Medes reports
  // order-of-magnitude reductions for warm snapshots of one function).
  double delta_size_fraction = 0.12;
  // Checkpoint time scales roughly with bytes written.
  double delta_checkpoint_fraction = 0.35;
  // Restores pay a patch-application overhead on top of the base restore.
  double restore_overhead_fraction = 0.15;
};

class DeltaCheckpointEngine : public CheckpointEngine {
 public:
  explicit DeltaCheckpointEngine(uint64_t seed,
                                 DeltaEngineOptions options = DeltaEngineOptions{});

  Result<CheckpointOutcome> Checkpoint(const RuntimeProcess& process, SnapshotId id,
                                       TimePoint now) override;
  Result<RestoreOutcome> Restore(const SnapshotImage& image,
                                 const WorkloadRegistry& registry) override;

  // True when a base image for `function` exists (later snapshots delta it).
  bool HasBase(const std::string& function) const {
    return base_taken_.contains(function);
  }

 private:
  Duration DrawCost(Duration mean, Duration stddev);

  Rng rng_;
  DeltaEngineOptions options_;
  // Functions whose base snapshot has been taken.
  std::map<std::string, bool> base_taken_;
  // Size of the last serialized payload, pre-reserved for the next encode
  // (successive checkpoints are near-identical in size).
  size_t last_payload_bytes_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CHECKPOINT_DELTA_ENGINE_H_
