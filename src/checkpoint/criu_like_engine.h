// CRIU-like checkpoint engine.
//
// Performs genuine state capture (the full RuntimeProcess serializes into the
// image payload and restores from it, CRC-verified) and charges simulated
// checkpoint/restore time drawn from the per-workload cost model calibrated
// to the paper's Table 4 (CRIU 3.15 measurements).

#ifndef PRONGHORN_SRC_CHECKPOINT_CRIU_LIKE_ENGINE_H_
#define PRONGHORN_SRC_CHECKPOINT_CRIU_LIKE_ENGINE_H_

#include "src/checkpoint/engine.h"
#include "src/common/rng.h"

namespace pronghorn {

class CriuLikeEngine : public CheckpointEngine {
 public:
  // `seed` drives cost jitter and restore reseeding salts.
  explicit CriuLikeEngine(uint64_t seed);

  Result<CheckpointOutcome> Checkpoint(const RuntimeProcess& process, SnapshotId id,
                                       TimePoint now) override;
  Result<RestoreOutcome> Restore(const SnapshotImage& image,
                                 const WorkloadRegistry& registry) override;

 private:
  // Gaussian(mean, sd) clamped to a sane floor; CRIU never completes in 0ms.
  Duration DrawCost(Duration mean, Duration stddev);

  Rng rng_;
  // Size of the last serialized payload: successive checkpoints of a worker
  // are near-identical in size, so pre-reserving it makes the encode a
  // single allocation instead of a geometric growth sequence.
  size_t last_payload_bytes_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CHECKPOINT_CRIU_LIKE_ENGINE_H_
