// Abstract checkpoint engine interface.
//
// Pronghorn is explicitly agnostic to the checkpoint/restore implementation
// (§4: CRIU is "a stand-in for any Checkpoint Engine"). The orchestrator only
// needs these two primitives plus their costs.

#ifndef PRONGHORN_SRC_CHECKPOINT_ENGINE_H_
#define PRONGHORN_SRC_CHECKPOINT_ENGINE_H_

#include "src/checkpoint/snapshot.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/jit/runtime_process.h"
#include "src/obs/sink.h"
#include "src/store/object_store.h"

namespace pronghorn {

// Result of checkpointing a live process: the image plus the worker downtime
// the operation caused (the process is frozen while pages are dumped), plus
// the sealed store-ready encoding of the image. Sealing at checkpoint time
// (rather than at upload time) gives the snapshot store one immutable buffer
// to chunk, retry, and share without re-encoding.
struct CheckpointOutcome {
  SnapshotImage image;
  Duration downtime;
  ObjectBlob blob;  // image.Encode() + logical size, ready for PutSnapshot.
};

// Result of restoring: an equivalent live process plus the time the restore
// took (on the critical path of the first request after a hot start).
struct RestoreOutcome {
  RestoreOutcome(RuntimeProcess p, Duration d) : process(std::move(p)), restore_time(d) {}
  RuntimeProcess process;
  Duration restore_time;
};

class CheckpointEngine {
 public:
  virtual ~CheckpointEngine() = default;

  // Freezes `process` and produces an image. `id` must be globally unique
  // (allocated from the Database sequence); `now` timestamps the metadata.
  virtual Result<CheckpointOutcome> Checkpoint(const RuntimeProcess& process,
                                               SnapshotId id, TimePoint now) = 0;

  // Reconstructs a live process from `image`. The returned process is
  // re-seeded so that two restores of one image warm up independently.
  virtual Result<RestoreOutcome> Restore(const SnapshotImage& image,
                                         const WorkloadRegistry& registry) = 0;

  // Cumulative operation counters, maintained by every implementation.
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  uint64_t restores_performed() const { return restores_performed_; }
  Duration total_checkpoint_time() const { return total_checkpoint_time_; }
  Duration total_restore_time() const { return total_restore_time_; }

  // Borrowed observability sink; null disables engine metrics.
  void set_obs(ObsSink* obs) { obs_ = obs; }

 protected:
  // Implementations call these on every successful operation.
  void RecordCheckpoint(Duration downtime) {
    checkpoints_taken_ += 1;
    total_checkpoint_time_ += downtime;
    if (obs_ != nullptr) {
      obs_->Counter("engine.checkpoints", 1);
      obs_->Observe("engine.checkpoint_downtime_us", downtime);
    }
  }
  void RecordRestore(Duration restore_time) {
    restores_performed_ += 1;
    total_restore_time_ += restore_time;
    if (obs_ != nullptr) {
      obs_->Counter("engine.restores", 1);
      obs_->Observe("engine.restore_time_us", restore_time);
    }
  }

 private:
  uint64_t checkpoints_taken_ = 0;
  uint64_t restores_performed_ = 0;
  Duration total_checkpoint_time_;
  Duration total_restore_time_;
  ObsSink* obs_ = nullptr;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CHECKPOINT_ENGINE_H_
