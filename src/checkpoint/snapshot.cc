#include "src/checkpoint/snapshot.h"

#include "src/common/crc32.h"

namespace pronghorn {

namespace {

constexpr uint32_t kMagic = 0x50534e50;  // "PSNP"
// v2: event counters embedded in engine payloads (MethodState::deopt_count,
// compile_remaining) are 64-bit. The wire encoding was already varint, so v1
// images decode unchanged; the bump marks the widened value range.
constexpr uint8_t kVersion = 2;
constexpr uint8_t kMinVersion = 1;

}  // namespace

std::vector<uint8_t> SnapshotImage::Encode() const {
  ByteWriter writer;
  writer.Reserve(payload_.size() + 128);
  writer.WriteUint32(kMagic);
  writer.WriteUint8(kVersion);
  writer.WriteUint64(metadata_.id.value);
  writer.WriteString(metadata_.function);
  writer.WriteVarint(metadata_.request_number);
  writer.WriteVarint(metadata_.logical_size_bytes);
  writer.WriteInt64(metadata_.created_at.ToMicros());
  writer.WriteBytes(payload_);
  const uint32_t crc = Crc32(writer.data());
  writer.WriteUint32(crc);
  return writer.TakeData();
}

Result<SnapshotImage> SnapshotImage::Decode(std::span<const uint8_t> bytes) {
  if (bytes.size() < 4) {
    return DataLossError("snapshot image truncated");
  }
  // Validate the trailing CRC before parsing anything else.
  const std::span<const uint8_t> body = bytes.first(bytes.size() - 4);
  ByteReader crc_reader(bytes.subspan(bytes.size() - 4));
  PRONGHORN_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.ReadUint32());
  if (Crc32(body) != stored_crc) {
    return DataLossError("snapshot image CRC mismatch");
  }

  ByteReader reader(body);
  PRONGHORN_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadUint32());
  if (magic != kMagic) {
    return DataLossError("bad snapshot magic");
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t version, reader.ReadUint8());
  if (version < kMinVersion || version > kVersion) {
    return DataLossError("unsupported snapshot version");
  }
  SnapshotMetadata metadata;
  PRONGHORN_ASSIGN_OR_RETURN(metadata.id.value, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(metadata.function, reader.ReadString());
  PRONGHORN_ASSIGN_OR_RETURN(metadata.request_number, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(metadata.logical_size_bytes, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(int64_t created_us, reader.ReadInt64());
  metadata.created_at = TimePoint::FromMicros(created_us);
  PRONGHORN_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, reader.ReadBytes());
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after snapshot payload");
  }
  return SnapshotImage(std::move(metadata), std::move(payload));
}

std::string SnapshotImage::ObjectKey() const {
  return "snapshots/" + metadata_.function + "/" + std::to_string(metadata_.id.value);
}

}  // namespace pronghorn
