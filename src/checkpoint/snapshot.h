// Snapshot images and metadata.
//
// A SnapshotImage is the unit the checkpoint engine produces and the object
// store holds. The payload carries the complete serialized RuntimeProcess
// state (the part of a CRIU image that determines behavior); the bulk of a
// real image — anonymous heap pages — is represented by `logical_size_bytes`,
// which drives all storage/network accounting (Table 5) without materializing
// tens of megabytes per snapshot in the simulator.

#ifndef PRONGHORN_SRC_CHECKPOINT_SNAPSHOT_H_
#define PRONGHORN_SRC_CHECKPOINT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"

namespace pronghorn {

// Globally unique snapshot identifier (allocated from the Database sequence).
struct SnapshotId {
  uint64_t value = 0;

  auto operator<=>(const SnapshotId&) const = default;
};

struct SnapshotMetadata {
  SnapshotId id;
  // Function the snapshot belongs to.
  std::string function;
  // JIT maturity: requests the process had executed when checkpointed. This
  // is the "request number" of Algorithm 1.
  uint64_t request_number = 0;
  // Modeled on-disk image size (compressed CRIU image equivalent).
  uint64_t logical_size_bytes = 0;
  TimePoint created_at;

  bool operator==(const SnapshotMetadata&) const = default;
};

class SnapshotImage {
 public:
  SnapshotImage(SnapshotMetadata metadata, std::vector<uint8_t> payload)
      : metadata_(std::move(metadata)), payload_(std::move(payload)) {}

  const SnapshotMetadata& metadata() const { return metadata_; }
  const std::vector<uint8_t>& payload() const { return payload_; }

  // Serializes to the on-wire image format: magic, version, metadata,
  // payload, trailing CRC-32 over everything preceding it.
  std::vector<uint8_t> Encode() const;

  // Parses and validates an encoded image. Fails with kDataLoss on a bad
  // magic, unsupported version, truncation, or CRC mismatch.
  static Result<SnapshotImage> Decode(std::span<const uint8_t> bytes);

  // Canonical object-store key for this snapshot.
  std::string ObjectKey() const;

 private:
  SnapshotMetadata metadata_;
  std::vector<uint8_t> payload_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CHECKPOINT_SNAPSHOT_H_
