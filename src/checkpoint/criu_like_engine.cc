#include "src/checkpoint/criu_like_engine.h"

#include <algorithm>

namespace pronghorn {

namespace {

// CRIU's floor: even a trivial process dump/restore takes a few ms.
constexpr int64_t kMinCostMs = 5;

}  // namespace

CriuLikeEngine::CriuLikeEngine(uint64_t seed) : rng_(HashCombine(seed, 0xc41uLL)) {}

Duration CriuLikeEngine::DrawCost(Duration mean, Duration stddev) {
  const double us = rng_.Gaussian(static_cast<double>(mean.ToMicros()),
                                  static_cast<double>(stddev.ToMicros()));
  return Duration::Micros(
      std::max<int64_t>(static_cast<int64_t>(us), kMinCostMs * 1000));
}

Result<CheckpointOutcome> CriuLikeEngine::Checkpoint(const RuntimeProcess& process,
                                                     SnapshotId id, TimePoint now) {
  if (id.value == 0) {
    return InvalidArgumentError("snapshot id 0 is reserved");
  }
  ByteWriter writer;
  writer.Reserve(last_payload_bytes_);
  process.Serialize(writer);
  last_payload_bytes_ = writer.size();

  SnapshotMetadata metadata;
  metadata.id = id;
  metadata.function = process.profile().name;
  metadata.request_number = process.requests_executed();
  metadata.logical_size_bytes =
      static_cast<uint64_t>(process.MemoryFootprintMb() * 1024.0 * 1024.0);
  metadata.created_at = now;

  const WorkloadProfile& profile = process.profile();
  const Duration downtime = DrawCost(profile.checkpoint_mean, profile.checkpoint_stddev);

  RecordCheckpoint(downtime);
  SnapshotImage image(std::move(metadata), writer.TakeData());
  ObjectBlob blob(image.Encode(), image.metadata().logical_size_bytes);
  return CheckpointOutcome{std::move(image), downtime, std::move(blob)};
}

Result<RestoreOutcome> CriuLikeEngine::Restore(const SnapshotImage& image,
                                               const WorkloadRegistry& registry) {
  ByteReader reader(image.payload());
  PRONGHORN_ASSIGN_OR_RETURN(RuntimeProcess process,
                             RuntimeProcess::Deserialize(reader, registry));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes in snapshot payload");
  }
  if (process.requests_executed() != image.metadata().request_number) {
    return DataLossError("snapshot metadata request number disagrees with state");
  }
  // Restored workers run in a fresh environment; JIT behavior from here on is
  // not a replay of the checkpointed worker's future.
  process.ReseedForRestore(rng_.NextUint64());

  const WorkloadProfile& profile = process.profile();
  const Duration restore_time = DrawCost(profile.restore_mean, profile.restore_stddev);

  RecordRestore(restore_time);
  return RestoreOutcome(std::move(process), restore_time);
}

}  // namespace pronghorn
