#include "src/jit/runtime_process.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"

namespace pronghorn {

namespace {

// Compile-pipeline constants. These are latency-model knobs, not workload
// calibration: they shape how steppy the warm-up curve is.
constexpr int64_t kBaselineCompileMinRequests = 1;
constexpr int64_t kBaselineCompileMaxRequests = 1;
constexpr int64_t kOptimizedCompileMinRequests = 3;
constexpr int64_t kOptimizedCompileMaxRequests = 10;
// Compute-latency overhead per in-flight compilation (compiler threads
// contend with the application), capped across concurrent compilations.
constexpr double kCompileInterferencePerJob = 0.02;
constexpr double kCompileInterferenceCap = 0.10;
// Environment jitter on the compute part (scheduling, caches).
constexpr double kEnvironmentNoiseSigma = 0.03;
// Deopt handling: the faulting request re-executes the method's work
// interpreted plus pays a reprofile penalty proportional to method weight.
constexpr double kDeoptPenaltyFactor = 0.5;
// Requests of additional profiling before a deoptimized method becomes
// eligible for re-optimization.
constexpr int64_t kReprofileMinRequests = 30;
constexpr int64_t kReprofileMaxRequests = 150;
// Lognormal sigma of the GC pause length around the profile's mean.
constexpr double kGcPauseSigma = 0.6;

}  // namespace

RuntimeProcess::RuntimeProcess(const WorkloadProfile& profile, Rng rng)
    : profile_(&profile), rng_(rng) {}

RuntimeProcess RuntimeProcess::ColdStart(const WorkloadProfile& profile, uint64_t seed) {
  Rng rng(HashCombine(seed, 0x70726f6e67ULL));
  RuntimeProcess process(profile, rng.Fork(1));
  Rng table_rng = rng.Fork(2);
  process.methods_ = BuildMethodTable(profile, table_rng);
  return process;
}

double RuntimeProcess::MethodLatencyFactor(const MethodState& method) const {
  const double speedup = profile_->converged_speedup;
  switch (method.tier) {
    case CompilationTier::kInterpreter:
      return 1.0;
    case CompilationTier::kBaseline:
      // The baseline tier removes `baseline_speedup_fraction` of the total
      // latency reduction the optimizing tier would deliver.
      return 1.0 - profile_->baseline_speedup_fraction * (1.0 - 1.0 / speedup);
    case CompilationTier::kOptimized:
      return 1.0 / speedup;
  }
  return 1.0;
}

void RuntimeProcess::TickCompilationPipeline(ExecutionResult& result) {
  for (MethodState& method : methods_) {
    method.invocations += 1;

    // Finish in-flight compilations.
    if (method.compile_remaining > 0) {
      method.compile_remaining -= 1;
      if (method.compile_remaining == 0) {
        method.tier = method.compile_target;
        if (method.tier == CompilationTier::kOptimized) {
          // Fresh optimized code speculates on the input class the profiling
          // data is dominated by.
          method.specialized_class = DominantInputClass();
        }
        result.compilations_finished += 1;
      }
      continue;  // At most one pipeline transition per method per request.
    }

    // Enqueue tier-up compilations when hotness thresholds are crossed.
    if (method.tier == CompilationTier::kInterpreter &&
        method.invocations >= method.baseline_threshold) {
      method.compile_target = CompilationTier::kBaseline;
      method.compile_remaining = static_cast<uint64_t>(
          rng_.UniformInt(kBaselineCompileMinRequests, kBaselineCompileMaxRequests));
    } else if (method.tier == CompilationTier::kBaseline && method.optimizable &&
               method.invocations >= method.optimize_threshold) {
      method.compile_target = CompilationTier::kOptimized;
      method.compile_remaining = static_cast<uint64_t>(
          rng_.UniformInt(kOptimizedCompileMinRequests, kOptimizedCompileMaxRequests));
    }
  }
}

ExecutionResult RuntimeProcess::Execute(const FunctionRequest& request) {
  ExecutionResult result;

  const uint32_t request_class = std::min(request.input_class, kMaxInputClasses - 1);
  class_counts_[request_class] += 1;

  // --- Deoptimization (speculative optimization invalidated by this input).
  double deopt_penalty_factor = 0.0;
  for (MethodState& method : methods_) {
    if (method.tier != CompilationTier::kOptimized) {
      continue;
    }
    // Re-optimized code covers more paths, so repeat deopts get rarer.
    double p = profile_->deopt_rate / static_cast<double>(methods_.size()) /
               (1.0 + static_cast<double>(method.deopt_count));
    // Code specialized for a different input class trips its speculation
    // guards far more often (class_sensitivity = 0 disables the effect).
    // Unlike ordinary deopts, this term does NOT decay with deopt_count:
    // every recompile re-specializes to the dominant profile, so minority-
    // class requests keep hitting fresh guards.
    if (profile_->class_sensitivity > 0.0 &&
        method.specialized_class != MethodState::kUnspecialized &&
        method.specialized_class != request_class) {
      p += profile_->deopt_rate * profile_->class_sensitivity /
           static_cast<double>(methods_.size());
    }
    if (rng_.Bernoulli(p)) {
      method.tier = CompilationTier::kBaseline;
      method.deopt_count += 1;
      method.optimize_threshold =
          method.invocations +
          static_cast<uint64_t>(rng_.UniformInt(kReprofileMinRequests,
                                                kReprofileMaxRequests));
      deopt_penalty_factor += method.weight * kDeoptPenaltyFactor;
      result.deopts += 1;
      total_deopts_ += 1;
    }
  }

  // --- Compute part: weighted mix of per-method tier factors.
  double compute_factor = deopt_penalty_factor;
  size_t compiles_in_flight = 0;
  for (const MethodState& method : methods_) {
    compute_factor += method.weight * MethodLatencyFactor(method);
    if (method.compile_remaining > 0) {
      ++compiles_in_flight;
    }
  }
  compute_factor += std::min(
      kCompileInterferenceCap,
      kCompileInterferencePerJob * static_cast<double>(compiles_in_flight));

  const double input_factor =
      std::pow(request.input_scale, profile_->input_scale_exponent);
  const double env_noise = rng_.LogNormal(0.0, kEnvironmentNoiseSigma);
  double latency_us = profile_->compute_base.ToSeconds() * 1e6 * compute_factor *
                      input_factor * env_noise;

  // --- I/O part: JIT-independent, with its own jitter and partial coupling
  // to input size (bigger files upload/compress slower).
  if (profile_->io_base > Duration::Zero()) {
    const double io_noise = rng_.LogNormal(0.0, profile_->io_noise_sigma);
    const double io_input =
        std::pow(request.input_scale, profile_->io_input_coupling);
    latency_us += profile_->io_base.ToSeconds() * 1e6 * io_noise * io_input;
  }

  // --- Garbage-collection pause: an occasional stop-the-world spike, with
  // lognormal spread around the profile's mean pause.
  if (profile_->gc_pause_probability > 0.0 &&
      rng_.Bernoulli(profile_->gc_pause_probability)) {
    latency_us += static_cast<double>(profile_->gc_pause_mean.ToMicros()) *
                  rng_.LogNormal(0.0, kGcPauseSigma);
  }

  // --- One-off lazy initialization folded into the first request ever.
  if (!lazy_init_done_) {
    latency_us += static_cast<double>(profile_->lazy_init_cost.ToMicros());
    lazy_init_done_ = true;
  }

  // Advance the JIT pipeline *after* computing this request's latency: code
  // compiled during a request benefits the next one.
  TickCompilationPipeline(result);

  requests_executed_ += 1;
  result.latency = Duration::Micros(static_cast<int64_t>(latency_us));
  return result;
}

double RuntimeProcess::MemoryFootprintMb() const {
  // Base image plus code-cache growth: fully-compiled processes are ~15%
  // larger than freshly-booted ones (real CRIU images grow similarly).
  double optimized_weight = 0.0;
  for (const MethodState& m : methods_) {
    if (m.tier == CompilationTier::kOptimized) {
      optimized_weight += m.weight;
    } else if (m.tier == CompilationTier::kBaseline) {
      optimized_weight += 0.4 * m.weight;
    }
  }
  return profile_->snapshot_mb * (0.85 + 0.15 * optimized_weight +
                                  (lazy_init_done_ ? 0.05 : 0.0));
}

double RuntimeProcess::CurrentComputeFactor() const {
  double factor = 0.0;
  for (const MethodState& m : methods_) {
    factor += m.weight * MethodLatencyFactor(m);
  }
  return factor;
}

size_t RuntimeProcess::CountAtTier(CompilationTier tier) const {
  size_t count = 0;
  for (const MethodState& m : methods_) {
    if (m.tier == tier) {
      ++count;
    }
  }
  return count;
}

uint32_t RuntimeProcess::DominantInputClass() const {
  uint32_t best = MethodState::kUnspecialized;
  uint64_t best_count = 0;
  for (uint32_t c = 0; c < kMaxInputClasses; ++c) {
    if (class_counts_[c] > best_count) {
      best = c;
      best_count = class_counts_[c];
    }
  }
  return best;
}

void RuntimeProcess::Serialize(ByteWriter& writer) const {
  writer.WriteString(profile_->name);
  writer.WriteUint8(static_cast<uint8_t>(profile_->family));
  writer.WriteVarint(requests_executed_);
  writer.WriteVarint(total_deopts_);
  writer.WriteUint8(lazy_init_done_ ? 1 : 0);
  for (uint64_t count : class_counts_) {
    writer.WriteVarint(count);
  }
  for (uint64_t word : rng_.state()) {
    writer.WriteUint64(word);
  }
  writer.WriteVarint(methods_.size());
  for (const MethodState& m : methods_) {
    m.Serialize(writer);
  }
}

Result<RuntimeProcess> RuntimeProcess::Deserialize(ByteReader& reader,
                                                   const WorkloadRegistry& registry) {
  PRONGHORN_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t family_raw, reader.ReadUint8());
  PRONGHORN_ASSIGN_OR_RETURN(const WorkloadProfile* profile, registry.Find(name));
  if (static_cast<uint8_t>(profile->family) != family_raw) {
    return DataLossError("snapshot family does not match registry profile for " + name);
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t requests, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t deopts, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t lazy_done, reader.ReadUint8());
  std::array<uint64_t, kMaxInputClasses> class_counts{};
  for (uint64_t& count : class_counts) {
    PRONGHORN_ASSIGN_OR_RETURN(count, reader.ReadVarint());
  }

  std::array<uint64_t, 4> rng_state{};
  for (uint64_t& word : rng_state) {
    PRONGHORN_ASSIGN_OR_RETURN(word, reader.ReadUint64());
  }
  Rng rng(0);
  rng.set_state(rng_state);

  PRONGHORN_ASSIGN_OR_RETURN(uint64_t method_count, reader.ReadVarint());
  if (method_count == 0 || method_count > 4096) {
    return DataLossError("implausible method count in snapshot");
  }
  RuntimeProcess process(*profile, rng);
  process.requests_executed_ = requests;
  process.total_deopts_ = deopts;
  process.lazy_init_done_ = lazy_done != 0;
  process.class_counts_ = class_counts;
  process.methods_.reserve(method_count);
  for (uint64_t i = 0; i < method_count; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(MethodState m, MethodState::Deserialize(reader));
    process.methods_.push_back(m);
  }
  return process;
}

void RuntimeProcess::ReseedForRestore(uint64_t salt) {
  rng_ = rng_.Fork(salt);
}

bool RuntimeProcess::StateEquals(const RuntimeProcess& other) const {
  return profile_->name == other.profile_->name &&
         requests_executed_ == other.requests_executed_ &&
         total_deopts_ == other.total_deopts_ &&
         lazy_init_done_ == other.lazy_init_done_ &&
         class_counts_ == other.class_counts_ &&
         rng_.state() == other.rng_.state() && methods_ == other.methods_;
}

}  // namespace pronghorn
