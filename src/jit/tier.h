// Compilation tiers of the simulated managed runtime.

#ifndef PRONGHORN_SRC_JIT_TIER_H_
#define PRONGHORN_SRC_JIT_TIER_H_

#include <cstdint>
#include <string_view>

namespace pronghorn {

// Three-tier pipeline modeling HotSpot (interpreter -> C1 -> C2) and PyPy
// (interpreter -> unoptimized trace -> optimized trace).
enum class CompilationTier : uint8_t {
  kInterpreter = 0,
  kBaseline = 1,
  kOptimized = 2,
};

inline std::string_view CompilationTierName(CompilationTier tier) {
  switch (tier) {
    case CompilationTier::kInterpreter:
      return "interpreter";
    case CompilationTier::kBaseline:
      return "baseline";
    case CompilationTier::kOptimized:
      return "optimized";
  }
  return "unknown";
}

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_JIT_TIER_H_
