// Checkpointable managed-runtime process simulator.
//
// A RuntimeProcess stands in for one PyPy/JVM worker process executing a
// serverless function. It reproduces the latency phenomenology the paper's
// §2 identifies as essential for checkpoint orchestration:
//
//  * slow, stepwise warm-up: methods tier up (interpreter -> baseline ->
//    optimizing) at stochastic invocation thresholds, with background
//    compilation latency and compile-thread interference;
//  * non-monotonicity: speculative optimizations occasionally deoptimize,
//    temporarily reverting methods to the baseline tier (Observation #3);
//  * non-determinism: compile timing and deopt events are drawn from the
//    process's own RNG stream, so two workers never warm up identically;
//  * full-state checkpointability: the entire process (method table, hotness
//    counters, RNG) serializes to bytes and restores to an equivalent
//    process, which is what CRIU does to the real runtimes.
//
// JIT maturity is the number of requests the process has executed since cold
// start; a snapshot taken at request R freezes maturity R, which is the
// quantity Pronghorn's request-centric policy reasons about.

#ifndef PRONGHORN_SRC_JIT_RUNTIME_PROCESS_H_
#define PRONGHORN_SRC_JIT_RUNTIME_PROCESS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/jit/method_model.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// One function invocation as the worker sees it.
struct FunctionRequest {
  uint64_t id = 0;
  // Multiplicative input-size factor drawn by the client-side input model.
  double input_scale = 1.0;
  // Input class (request shape / code path selector). Only meaningful for
  // workloads with class_sensitivity > 0; clamped to kMaxInputClasses - 1.
  uint32_t input_class = 0;
};

// Outcome of executing one request, with the latency decomposition the
// metrics collector records.
struct ExecutionResult {
  Duration latency;
  // Number of methods whose compilation completed during this request.
  // 64-bit so downstream accumulations never narrow an event count.
  uint64_t compilations_finished = 0;
  // Number of deoptimization events triggered by this request.
  uint64_t deopts = 0;
};

class RuntimeProcess {
 public:
  // Distinct input classes the specialization model distinguishes.
  static constexpr uint32_t kMaxInputClasses = 8;

  // Boots a fresh (cold) process for `profile`. `seed` drives all of the
  // process's JIT non-determinism.
  static RuntimeProcess ColdStart(const WorkloadProfile& profile, uint64_t seed);

  // Executes one request, advancing JIT state, and returns its latency.
  ExecutionResult Execute(const FunctionRequest& request);

  // JIT maturity: requests executed since cold start (across checkpoints).
  uint64_t requests_executed() const { return requests_executed_; }

  const WorkloadProfile& profile() const { return *profile_; }

  // Modeled resident set, used by the checkpoint engine to size images. The
  // footprint grows as the code cache fills with compiled methods.
  double MemoryFootprintMb() const;

  // Effective compute-latency factor at the current JIT state (1.0 =
  // interpreted, 1/converged_speedup = fully optimized); excludes noise.
  double CurrentComputeFactor() const;

  // Introspection for tests and exhibits.
  size_t MethodCount() const { return methods_.size(); }
  size_t CountAtTier(CompilationTier tier) const;
  uint64_t total_deopts() const { return total_deopts_; }

  // --- Checkpoint support -------------------------------------------------
  // Serializes the complete process state (method table, counters, RNG).
  void Serialize(ByteWriter& writer) const;
  // Reconstructs a process from serialized state; the workload profile is
  // rebound by name through `registry`.
  static Result<RuntimeProcess> Deserialize(ByteReader& reader,
                                            const WorkloadRegistry& registry);
  // Called by the checkpoint engine after restore: mixes `salt` into the RNG
  // so two workers restored from one snapshot warm up differently (real JIT
  // compilation is not deterministic; §2 "Complex language runtimes").
  void ReseedForRestore(uint64_t salt);

  bool StateEquals(const RuntimeProcess& other) const;

  // Majority input class observed so far (what fresh optimized code will
  // specialize on); kUnspecialized while nothing was observed.
  uint32_t DominantInputClass() const;

 private:
  RuntimeProcess(const WorkloadProfile& profile, Rng rng);

  // Advances hotness counters and the compile pipeline for one request.
  void TickCompilationPipeline(ExecutionResult& result);
  // Latency factor contributed by one method at its current tier.
  double MethodLatencyFactor(const MethodState& method) const;

  const WorkloadProfile* profile_;  // Borrowed from the registry; never null.
  Rng rng_;
  std::vector<MethodState> methods_;
  // Per-class observation counts feeding optimization specialization.
  std::array<uint64_t, kMaxInputClasses> class_counts_{};
  uint64_t requests_executed_ = 0;
  uint64_t total_deopts_ = 0;
  bool lazy_init_done_ = false;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_JIT_RUNTIME_PROCESS_H_
