// Per-method JIT state for the runtime simulator.

#ifndef PRONGHORN_SRC_JIT_METHOD_MODEL_H_
#define PRONGHORN_SRC_JIT_METHOD_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/jit/tier.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// Hotness counters, tier, and in-flight compilation for one hot method. The
// fields mirror what a real tiered VM tracks per method (invocation counter,
// compile queue entry, deopt history) at the granularity the latency model
// needs.
struct MethodState {
  // Share of the workload's compute time spent in this method; shares over a
  // process sum to 1.
  double weight = 0.0;
  CompilationTier tier = CompilationTier::kInterpreter;
  uint64_t invocations = 0;
  // 64-bit like every other event counter: week-long replays of a
  // class-churning workload can deopt a method past 2^32. The wire format is
  // unchanged (always a varint); snapshot kVersion 2 marks the widened range.
  uint64_t deopt_count = 0;
  // Invocation-count thresholds that enqueue tier-up compilations.
  uint64_t baseline_threshold = 0;
  uint64_t optimize_threshold = 0;
  // Remaining requests until the in-flight compilation (if any) finishes;
  // 0 means no compilation in flight.
  uint64_t compile_remaining = 0;
  CompilationTier compile_target = CompilationTier::kInterpreter;
  // False for methods whose bytecode size exceeds the compiler's inlining /
  // compilation threshold: they are capped at the baseline tier forever
  // (§2: "JIT compilers have internal thresholds such as the size of a
  // method ... that, once hit, may prevent the method from ever be[ing]
  // selected for optimization").
  bool optimizable = true;
  // Input class the optimized code speculates on (kUnspecialized before the
  // optimizing tier compiles). Requests of a different class hit the
  // speculation guards and deoptimize far more often — the §6 "distinct
  // inputs lead to divergent code paths and execution profiles" effect.
  static constexpr uint32_t kUnspecialized = 0xffffffffu;
  uint32_t specialized_class = kUnspecialized;

  void Serialize(ByteWriter& writer) const;
  static Result<MethodState> Deserialize(ByteReader& reader);

  bool operator==(const MethodState& other) const = default;
};

// Builds the initial method table for a workload: weights drawn from a
// normalized exponential (a few dominant methods plus a tail), baseline
// thresholds in the first few dozen invocations, and optimize thresholds
// log-uniform over [convergence/25, convergence] with the final method pinned
// near the convergence point so that full optimization lands where the
// profile says it should (Figure 1 calibration).
std::vector<MethodState> BuildMethodTable(const WorkloadProfile& profile, Rng& rng);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_JIT_METHOD_MODEL_H_
