#include "src/jit/method_model.h"

#include <algorithm>
#include <cmath>

namespace pronghorn {

namespace {

// Fraction of hot methods too large for the optimizing tier.
constexpr double kOversizedMethodProbability = 0.03;

}  // namespace

void MethodState::Serialize(ByteWriter& writer) const {
  writer.WriteDouble(weight);
  writer.WriteUint8(static_cast<uint8_t>(tier));
  writer.WriteVarint(invocations);
  writer.WriteVarint(deopt_count);
  writer.WriteVarint(baseline_threshold);
  writer.WriteVarint(optimize_threshold);
  writer.WriteVarint(compile_remaining);
  writer.WriteUint8(static_cast<uint8_t>(compile_target));
  writer.WriteUint8(optimizable ? 1 : 0);
  writer.WriteUint32(specialized_class);
}

Result<MethodState> MethodState::Deserialize(ByteReader& reader) {
  MethodState m;
  PRONGHORN_ASSIGN_OR_RETURN(m.weight, reader.ReadDouble());
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t tier_raw, reader.ReadUint8());
  if (tier_raw > static_cast<uint8_t>(CompilationTier::kOptimized)) {
    return DataLossError("invalid compilation tier");
  }
  m.tier = static_cast<CompilationTier>(tier_raw);
  PRONGHORN_ASSIGN_OR_RETURN(m.invocations, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(m.deopt_count, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(m.baseline_threshold, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(m.optimize_threshold, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(m.compile_remaining, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t target_raw, reader.ReadUint8());
  if (target_raw > static_cast<uint8_t>(CompilationTier::kOptimized)) {
    return DataLossError("invalid compile target tier");
  }
  m.compile_target = static_cast<CompilationTier>(target_raw);
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t optimizable_raw, reader.ReadUint8());
  m.optimizable = optimizable_raw != 0;
  PRONGHORN_ASSIGN_OR_RETURN(m.specialized_class, reader.ReadUint32());
  return m;
}

std::vector<MethodState> BuildMethodTable(const WorkloadProfile& profile, Rng& rng) {
  const size_t count = profile.hot_method_count;
  std::vector<MethodState> methods(count);

  // Exponential draws normalized to 1 give a realistic skew: a couple of
  // dominant methods carry most of the compute time.
  double weight_total = 0.0;
  for (MethodState& m : methods) {
    m.weight = rng.Exponential(1.0) + 0.05;
    weight_total += m.weight;
  }
  for (MethodState& m : methods) {
    m.weight /= weight_total;
  }

  const double convergence = static_cast<double>(profile.convergence_requests);
  const double lo = std::max(2.0, convergence / 25.0);
  for (size_t i = 0; i < count; ++i) {
    MethodState& m = methods[i];
    // Baseline compilation triggers within the first handful of invocations
    // (hot methods are invoked on every request, so counters fill quickly).
    m.baseline_threshold = static_cast<uint64_t>(rng.UniformInt(1, 3));
    if (i + 1 == count) {
      // Pin the slowest method near the profile's convergence point so that
      // "fully optimized" lands where Figure 1 says it should.
      m.optimize_threshold =
          static_cast<uint64_t>(convergence * rng.UniformDouble(0.85, 1.0));
    } else {
      const double log_lo = std::log(lo);
      const double log_hi = std::log(convergence * 0.95);
      m.optimize_threshold =
          static_cast<uint64_t>(std::exp(rng.UniformDouble(log_lo, log_hi)));
    }
    m.optimize_threshold = std::max(m.optimize_threshold, m.baseline_threshold + 2);
    // A small fraction of methods exceed the optimizer's method-size limit
    // and stay at the baseline tier forever.
    m.optimizable = !rng.Bernoulli(kOversizedMethodProbability);
  }
  return methods;
}

}  // namespace pronghorn
