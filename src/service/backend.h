// The worker-lifecycle seam between the simulation kernel and the
// orchestrator.
//
// SimCore drives every worker session through this interface, so the same
// kernel state machine runs either in-process (LocalWorkerBackend, the
// default: direct Orchestrator calls, session owned here) or as a client of
// the live OrchestratorService (ServiceClient in orchestrator_service.h:
// requests serialized over the wire, session owned service-side). Both
// backends issue the identical Orchestrator call sequence, which is what
// makes service-mode report digests bit-identical to in-process runs.

#ifndef PRONGHORN_SRC_SERVICE_BACKEND_H_
#define PRONGHORN_SRC_SERVICE_BACKEND_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "src/common/clock.h"
#include "src/core/orchestrator.h"

namespace pronghorn {

// The client-visible slice of a WorkerSession: everything SimCore reads about
// a live worker. The session itself (the RuntimeProcess and checkpoint plan)
// stays behind the backend.
struct SessionView {
  uint64_t worker_id = 0;
  bool restored = false;
  bool degraded = false;
  uint64_t restored_from = 0;  // SnapshotId value; 0 when cold.
  Duration startup_latency;
  Duration startup_overhead;
};

// End-of-lifetime accounting, sampled when the worker is evicted or retired.
// memory_mb must be the footprint at session end: a worker's code cache grows
// over its lifetime, so sampling any earlier undercounts memory-time.
struct SessionEnd {
  double memory_mb = 0.0;
  uint64_t requests_executed = 0;
  bool retired = false;
};

class WorkerBackend {
 public:
  virtual ~WorkerBackend() = default;

  // Provisions a worker for this backend's slot (restore / cold start /
  // degraded start — the Orchestrator decides).
  virtual Result<SessionView> StartWorker() = 0;
  // Serves one request on the live session.
  virtual Result<RequestOutcome> ServeRequest(const FunctionRequest& request) = 0;
  // Ends the live session and returns its final accounting. Infallible by
  // design: eviction cannot be refused, so backends resolve internal errors
  // themselves (the service client logs and returns a zeroed accounting).
  virtual SessionEnd EndSession() = 0;
};

inline SessionView MakeSessionView(const WorkerSession& session) {
  SessionView view;
  view.worker_id = session.worker_id;
  view.restored = session.restored;
  view.degraded = session.degraded;
  view.restored_from = session.restored_from.value;
  view.startup_latency = session.startup_latency;
  view.startup_overhead = session.startup_overhead;
  return view;
}

// In-process backend: the pre-service behavior, one direct Orchestrator call
// per operation. The Orchestrator is borrowed and must outlive the backend.
class LocalWorkerBackend final : public WorkerBackend {
 public:
  explicit LocalWorkerBackend(Orchestrator* orchestrator) : orchestrator_(orchestrator) {}

  Result<SessionView> StartWorker() override {
    PRONGHORN_ASSIGN_OR_RETURN(WorkerSession started, orchestrator_->StartWorker());
    session_.emplace(std::move(started));
    return MakeSessionView(*session_);
  }

  Result<RequestOutcome> ServeRequest(const FunctionRequest& request) override {
    if (!session_.has_value()) {
      return FailedPreconditionError("no live worker session");
    }
    return orchestrator_->ServeRequest(*session_, request);
  }

  SessionEnd EndSession() override {
    SessionEnd end;
    if (session_.has_value()) {
      end.memory_mb = session_->process.MemoryFootprintMb();
      end.requests_executed = session_->process.requests_executed();
      end.retired = true;
      session_.reset();
    }
    return end;
  }

 private:
  Orchestrator* orchestrator_;
  std::optional<WorkerSession> session_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_BACKEND_H_
