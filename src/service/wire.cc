#include "src/service/wire.h"

#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace pronghorn {

ByteWriter BeginWireFrame(WireType type) {
  ByteWriter writer;
  writer.WriteUint32(kWireMagic);
  writer.WriteUint8(kWireVersion);
  writer.WriteUint8(static_cast<uint8_t>(type));
  return writer;
}

std::vector<uint8_t> SealWireFrame(ByteWriter writer) {
  const uint32_t crc = Crc32(writer.data());
  writer.WriteUint32(crc);
  return writer.TakeData();
}

Result<std::pair<WireType, std::span<const uint8_t>>> OpenWireFrame(
    std::span<const uint8_t> bytes) {
  // Frame envelope: 4 magic + 1 version + 1 type + 4 trailing CRC.
  constexpr size_t kFrameOverhead = 10;
  if (bytes.size() < kFrameOverhead) {
    return DataLossError("service frame truncated below minimum size");
  }
  const std::span<const uint8_t> covered = bytes.subspan(0, bytes.size() - 4);
  ByteReader trailer(bytes.subspan(bytes.size() - 4));
  PRONGHORN_ASSIGN_OR_RETURN(const uint32_t crc, trailer.ReadUint32());
  if (crc != Crc32(covered)) {
    return DataLossError("service frame checksum mismatch");
  }
  ByteReader header(covered);
  PRONGHORN_ASSIGN_OR_RETURN(const uint32_t magic, header.ReadUint32());
  if (magic != kWireMagic) {
    return DataLossError("service frame has wrong magic");
  }
  PRONGHORN_ASSIGN_OR_RETURN(const uint8_t version, header.ReadUint8());
  if (version != kWireVersion) {
    return InvalidArgumentError("unsupported service wire version " +
                                std::to_string(version));
  }
  PRONGHORN_ASSIGN_OR_RETURN(const uint8_t type, header.ReadUint8());
  if (type < static_cast<uint8_t>(WireType::kStartDecision) ||
      type > static_cast<uint8_t>(WireType::kJournalRecord)) {
    return InvalidArgumentError("unknown service message type " +
                                std::to_string(type));
  }
  return std::make_pair(static_cast<WireType>(type), covered.subspan(6));
}

namespace {

Result<bool> ReadBool(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(const uint8_t value, reader.ReadUint8());
  if (value > 1) {
    return DataLossError("boolean field out of range");
  }
  return value == 1;
}

void WriteDuration(ByteWriter& writer, Duration value) {
  writer.WriteInt64(value.ToMicros());
}

Result<Duration> ReadDuration(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t micros, reader.ReadInt64());
  return Duration::Micros(micros);
}

Status RequireEnd(const ByteReader& reader) {
  if (!reader.AtEnd()) {
    return DataLossError("service frame has trailing bytes");
  }
  return OkStatus();
}

}  // namespace

std::vector<uint8_t> EncodeServiceRequest(const ServiceRequest& request) {
  ByteWriter writer = BeginWireFrame(request.type);
  writer.WriteString(request.function);
  writer.WriteVarint(request.slot);
  switch (request.type) {
    case WireType::kObservation:
      writer.WriteVarint(request.request.id);
      writer.WriteDouble(request.request.input_scale);
      writer.WriteVarint(request.request.input_class);
      writer.WriteUint8(request.defer_commit ? 1 : 0);
      break;
    case WireType::kCheckpointPlan:
      writer.WriteUint8(request.retire ? 1 : 0);
      break;
    default:
      break;  // kStartDecision carries only the routing fields.
  }
  return SealWireFrame(std::move(writer));
}

Result<ServiceRequest> DecodeServiceRequest(std::span<const uint8_t> bytes) {
  PRONGHORN_ASSIGN_OR_RETURN(const auto frame, OpenWireFrame(bytes));
  ServiceRequest request;
  request.type = frame.first;
  if (request.type != WireType::kStartDecision &&
      request.type != WireType::kObservation &&
      request.type != WireType::kCheckpointPlan) {
    return InvalidArgumentError("response type in a request frame");
  }
  ByteReader reader(frame.second);
  PRONGHORN_ASSIGN_OR_RETURN(request.function, reader.ReadString());
  PRONGHORN_ASSIGN_OR_RETURN(const uint64_t slot, reader.ReadVarint());
  if (slot > UINT32_MAX) {
    return DataLossError("slot index out of range");
  }
  request.slot = static_cast<uint32_t>(slot);
  if (request.type == WireType::kObservation) {
    PRONGHORN_ASSIGN_OR_RETURN(request.request.id, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(request.request.input_scale, reader.ReadDouble());
    PRONGHORN_ASSIGN_OR_RETURN(const uint64_t input_class, reader.ReadVarint());
    if (input_class > UINT32_MAX) {
      return DataLossError("input class out of range");
    }
    request.request.input_class = static_cast<uint32_t>(input_class);
    PRONGHORN_ASSIGN_OR_RETURN(request.defer_commit, ReadBool(reader));
  } else if (request.type == WireType::kCheckpointPlan) {
    PRONGHORN_ASSIGN_OR_RETURN(request.retire, ReadBool(reader));
  }
  PRONGHORN_RETURN_IF_ERROR(RequireEnd(reader));
  return request;
}

std::vector<uint8_t> EncodeServiceResponse(const ServiceResponse& response) {
  ByteWriter writer = BeginWireFrame(response.type);
  switch (response.type) {
    case WireType::kStartAck:
      writer.WriteVarint(response.view.worker_id);
      writer.WriteUint8(response.view.restored ? 1 : 0);
      writer.WriteUint8(response.view.degraded ? 1 : 0);
      writer.WriteVarint(response.view.restored_from);
      WriteDuration(writer, response.view.startup_latency);
      WriteDuration(writer, response.view.startup_overhead);
      break;
    case WireType::kObservationAck:
      WriteDuration(writer, response.outcome.latency);
      writer.WriteVarint(response.outcome.request_number);
      writer.WriteUint8(response.outcome.checkpoint_taken ? 1 : 0);
      WriteDuration(writer, response.outcome.checkpoint_downtime);
      WriteDuration(writer, response.outcome.request_overhead);
      WriteDuration(writer, response.outcome.checkpoint_overhead);
      writer.WriteUint8(response.committed ? 1 : 0);
      break;
    case WireType::kPlanAck:
      writer.WriteUint8(response.plan.live ? 1 : 0);
      writer.WriteUint8(response.plan.has_plan ? 1 : 0);
      writer.WriteVarint(response.plan.checkpoint_at);
      writer.WriteVarint(response.plan.requests_executed);
      writer.WriteDouble(response.plan.memory_mb);
      writer.WriteUint8(response.plan.retired ? 1 : 0);
      break;
    case WireType::kShed:
      writer.WriteVarint(response.queue_depth);
      writer.WriteString(response.message);
      break;
    default:  // kError
      writer.WriteUint8(static_cast<uint8_t>(response.code));
      writer.WriteString(response.message);
      break;
  }
  return SealWireFrame(std::move(writer));
}

Result<ServiceResponse> DecodeServiceResponse(std::span<const uint8_t> bytes) {
  PRONGHORN_ASSIGN_OR_RETURN(const auto frame, OpenWireFrame(bytes));
  ServiceResponse response;
  response.type = frame.first;
  ByteReader reader(frame.second);
  switch (response.type) {
    case WireType::kStartAck: {
      PRONGHORN_ASSIGN_OR_RETURN(response.view.worker_id, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.view.restored, ReadBool(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.view.degraded, ReadBool(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.view.restored_from, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.view.startup_latency, ReadDuration(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.view.startup_overhead, ReadDuration(reader));
      break;
    }
    case WireType::kObservationAck: {
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.latency, ReadDuration(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.request_number, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.checkpoint_taken, ReadBool(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.checkpoint_downtime,
                                 ReadDuration(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.request_overhead,
                                 ReadDuration(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.outcome.checkpoint_overhead,
                                 ReadDuration(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.committed, ReadBool(reader));
      break;
    }
    case WireType::kPlanAck: {
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.live, ReadBool(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.has_plan, ReadBool(reader));
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.checkpoint_at, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.requests_executed, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.memory_mb, reader.ReadDouble());
      PRONGHORN_ASSIGN_OR_RETURN(response.plan.retired, ReadBool(reader));
      break;
    }
    case WireType::kError: {
      PRONGHORN_ASSIGN_OR_RETURN(const uint8_t code, reader.ReadUint8());
      if (code > static_cast<uint8_t>(StatusCode::kUnavailable) ||
          code == static_cast<uint8_t>(StatusCode::kOk)) {
        return DataLossError("error code out of range");
      }
      response.code = static_cast<StatusCode>(code);
      PRONGHORN_ASSIGN_OR_RETURN(response.message, reader.ReadString());
      break;
    }
    case WireType::kShed: {
      response.code = StatusCode::kResourceExhausted;
      PRONGHORN_ASSIGN_OR_RETURN(response.queue_depth, reader.ReadVarint());
      PRONGHORN_ASSIGN_OR_RETURN(response.message, reader.ReadString());
      break;
    }
    default:
      return InvalidArgumentError("request type in a response frame");
  }
  PRONGHORN_RETURN_IF_ERROR(RequireEnd(reader));
  return response;
}

}  // namespace pronghorn
