// Live orchestrator service: a long-running, request-driven front end over
// per-function Orchestrators (the paper's always-on control plane, ROADMAP
// item 1).
//
// Architecture (DESIGN.md §11):
//   - Clients encode StartDecision / Observation / CheckpointPlan frames
//     (wire.h) and block in Call(); the service routes each request to a
//     shard by a stable hash of the function name and replies through a
//     per-request mailbox.
//   - N shards, each a bounded MPMC queue drained by one thread. All slots of
//     one function land on one shard, so the per-deployment shared state
//     (PolicyStateStore scope, SimClock, engine) is only ever touched by that
//     shard's thread plus control operations under an exclusive lock.
//   - Group commit: observations sent with defer_commit are executed and
//     acknowledged immediately, while their knowledge writes accumulate in
//     the slot's Orchestrator buffer. A batch flushes when it reaches
//     max_batch, when its oldest observation ages past flush_interval in
//     simulated time, at barriers (StartDecision, CheckpointPlan, Unbind,
//     Drain, shutdown), or when this lifetime's checkpoint plan fires.
//     Group commit is work-conserving: a commit a synchronous client waits
//     on (defer_commit off) is never delayed, which is why service-mode
//     simulation digests are bit-identical to in-process runs.
//   - Lifecycle: Drain() processes everything enqueued before it and flushes
//     every batch; Reconfigure() drains, then atomically swaps shard count
//     and flush policy with bindings and live sessions preserved; Shutdown()
//     drains and joins (also run by the destructor).

#ifndef PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_
#define PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/orchestrator.h"
#include "src/service/backend.h"
#include "src/service/mpmc_queue.h"
#include "src/service/wire.h"

namespace pronghorn {

class ObsSink;

struct ServiceConfig {
  uint32_t shards = 4;
  size_t queue_capacity = 256;  // Per-shard; full queues backpressure Push.
  // Deferred observations per slot that force a group-commit flush.
  uint32_t max_batch = 16;
  // Maximum simulated-time age of a deferred observation before the shard
  // flushes its slot at the end of a burst.
  Duration flush_interval = Duration::Millis(5);
  // Envelopes one shard drains per wakeup before checking aged batches.
  uint32_t max_burst = 32;
  // Borrowed observability sink; null disables all service instrumentation.
  ObsSink* obs = nullptr;
};

// Monotonic service counters (plain snapshot of the internal atomics).
// `observations_committed` counts knowledge writes that landed in the
// Database; after a successful Drain with no injected faults it equals
// `observations` — the no-lost-observations invariant the concurrency test
// asserts.
struct ServiceStatsSnapshot {
  uint64_t requests = 0;
  uint64_t start_decisions = 0;
  uint64_t observations = 0;
  uint64_t plan_requests = 0;
  uint64_t observations_deferred = 0;
  uint64_t observations_committed = 0;
  uint64_t batches_committed = 0;
  uint64_t max_batch_committed = 0;
  uint64_t decode_errors = 0;
  uint64_t rejected_requests = 0;
  uint64_t flush_errors = 0;
  uint64_t drains = 0;
  uint64_t reconfigures = 0;
};

class OrchestratorService {
 public:
  explicit OrchestratorService(ServiceConfig config);
  ~OrchestratorService();

  OrchestratorService(const OrchestratorService&) = delete;
  OrchestratorService& operator=(const OrchestratorService&) = delete;

  // Binds slot `slot` of `function` to an Orchestrator and the deployment's
  // simulated clock (both borrowed; must outlive the binding). kAlreadyExists
  // when the slot is already bound.
  Status Bind(const std::string& function, uint32_t slot, Orchestrator* orchestrator,
              SimClock* clock);
  // Flushes the function's pending batches and removes every slot binding.
  Status Unbind(const std::string& function);

  // Submits one encoded request frame and blocks until its response frame is
  // ready. Never fails at the transport level: malformed frames and
  // shut-down services yield an encoded kError response.
  std::vector<uint8_t> Call(const std::vector<uint8_t>& request_bytes);

  // Processes everything enqueued before the call and flushes every deferred
  // batch. Safe on an already-stopped service.
  Status Drain();
  // Drains, then swaps shard count / batch cap / flush interval without
  // dropping bindings or live sessions.
  Status Reconfigure(uint32_t shards, uint32_t max_batch, Duration flush_interval);
  // Drain + stop shard threads; idempotent. Calls after shutdown get kError
  // responses.
  void Shutdown();

  ServiceStatsSnapshot stats() const;
  uint32_t shard_count() const;
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  // One live (function, slot) binding. `deferred` mirrors the orchestrator's
  // pending-observation count so barriers know whether a flush would touch
  // the Database at all (it must not in synchronous mode, where commits
  // happen in-line and an extra Update would break digest equivalence).
  struct SlotState {
    Orchestrator* orchestrator = nullptr;
    std::optional<WorkerSession> session;
    uint64_t deferred = 0;
    TimePoint oldest_deferred;
  };

  struct Endpoint {
    uint64_t name_hash = 0;  // Stable routing hash of the function name.
    SimClock* clock = nullptr;
    std::vector<SlotState> slots;
  };

  // Per-request reply mailbox, stack-allocated by Call().
  struct PendingReply {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool ready = false;
    std::vector<uint8_t> bytes;
  };

  // Countdown gate a Drain() waits on; one token lands on every shard queue.
  struct DrainGate {
    std::mutex mutex;
    std::condition_variable cv;
    uint32_t remaining = 0;
  };

  struct Envelope {
    ServiceRequest request;
    PendingReply* reply = nullptr;
    DrainGate* gate = nullptr;  // Non-null marks a drain token.
  };

  struct Stats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> start_decisions{0};
    std::atomic<uint64_t> observations{0};
    std::atomic<uint64_t> plan_requests{0};
    std::atomic<uint64_t> observations_deferred{0};
    std::atomic<uint64_t> observations_committed{0};
    std::atomic<uint64_t> batches_committed{0};
    std::atomic<uint64_t> max_batch_committed{0};
    std::atomic<uint64_t> decode_errors{0};
    std::atomic<uint64_t> rejected_requests{0};
    std::atomic<uint64_t> flush_errors{0};
    std::atomic<uint64_t> drains{0};
    std::atomic<uint64_t> reconfigures{0};
  };

  // Starts queues and shard threads per config_ (lifecycle lock held).
  void Start();
  // Closes queues and joins shard threads (lifecycle lock held).
  void Stop();
  // Pushes one drain token per shard and waits for all of them.
  void DrainLocked();

  void ShardLoop(uint32_t shard);
  void ProcessEnvelope(uint32_t shard, Envelope& envelope);
  ServiceResponse HandleRequest(const ServiceRequest& request);
  ServiceResponse HandleStartDecision(Endpoint& endpoint, SlotState& slot);
  ServiceResponse HandleObservation(Endpoint& endpoint, SlotState& slot,
                                    const ServiceRequest& request);
  ServiceResponse HandlePlan(SlotState& slot, const ServiceRequest& request);

  // Commits a slot's deferred batch (no-op when empty). kUnavailable inside
  // the commit leaves the batch buffered and still returns OK; only hard
  // faults surface.
  Status FlushSlot(SlotState& slot);
  Status FlushEndpoint(Endpoint& endpoint);
  // Flushes every endpoint owned by `shard`; hard faults are counted and
  // logged (no requester is waiting on them).
  void FlushShard(uint32_t shard);
  // End-of-burst sweep: flushes slots whose oldest deferred observation aged
  // past flush_interval on their deployment's simulated clock.
  void FlushAged(uint32_t shard);

  uint32_t ShardOf(uint64_t name_hash) const;
  void Reply(Envelope& envelope, const ServiceResponse& response);

  ServiceConfig config_;

  // Serializes control operations (Drain / Reconfigure / Shutdown).
  std::mutex control_mutex_;
  // Guards the queue/thread topology: Call() holds it shared while pushing,
  // Reconfigure/Shutdown hold it exclusively while swapping.
  mutable std::shared_mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<MpmcQueue<Envelope>>> queues_;
  std::vector<std::thread> shard_threads_;

  // Guards the endpoint registry: shard threads hold it shared for a whole
  // burst, Bind/Unbind hold it exclusively.
  std::shared_mutex endpoints_mutex_;
  std::unordered_map<std::string, Endpoint> endpoints_;

  mutable Stats stats_;
};

// A WorkerBackend that drives one (function, slot) pair through the service's
// wire boundary: each operation encodes a frame, blocks in Call(), and
// decodes the reply. With `defer_commit` the client runs in pipelined mode
// (observations acknowledged after execution, knowledge group-committed
// later); simulation clients leave it off, which keeps service-mode digests
// bit-identical to in-process runs.
class ServiceClient final : public WorkerBackend {
 public:
  ServiceClient(OrchestratorService* service, std::string function, uint32_t slot,
                bool defer_commit = false);

  Result<SessionView> StartWorker() override;
  Result<RequestOutcome> ServeRequest(const FunctionRequest& request) override;
  SessionEnd EndSession() override;

  // Non-retiring plan probe (tests sample live-session progress with it).
  Result<WirePlan> QueryPlan();

 private:
  Result<ServiceResponse> Roundtrip(const ServiceRequest& request, WireType expected);

  OrchestratorService* service_;
  std::string function_;
  uint32_t slot_;
  bool defer_commit_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_
