// Live orchestrator service: a long-running, request-driven front end over
// per-function Orchestrators (the paper's always-on control plane, ROADMAP
// item 1).
//
// Architecture (DESIGN.md §11):
//   - Clients encode StartDecision / Observation / CheckpointPlan frames
//     (wire.h) and block in Call(); the service routes each request to a
//     shard by a stable hash of the function name and replies through a
//     per-request mailbox.
//   - N shards, each a bounded MPMC queue drained by one thread. All slots of
//     one function land on one shard, so the per-deployment shared state
//     (PolicyStateStore scope, SimClock, engine) is only ever touched by that
//     shard's thread plus control operations under an exclusive lock.
//   - Group commit: observations sent with defer_commit are executed and
//     acknowledged immediately, while their knowledge writes accumulate in
//     the slot's Orchestrator buffer. A batch flushes when it reaches
//     max_batch, when its oldest observation ages past flush_interval in
//     simulated time, at barriers (StartDecision, CheckpointPlan, Unbind,
//     Drain, shutdown), or when this lifetime's checkpoint plan fires.
//     Group commit is work-conserving: a commit a synchronous client waits
//     on (defer_commit off) is never delayed, which is why service-mode
//     simulation digests are bit-identical to in-process runs.
//   - Lifecycle: Drain() processes everything enqueued before it and flushes
//     every batch; Reconfigure() drains, then atomically swaps shard count
//     and flush policy with bindings and live sessions preserved; Shutdown()
//     drains and joins (also run by the destructor).
//   - Crash tolerance (DESIGN.md §12): with `journal_dir` set, every deferred
//     observation is appended to a per-slot write-ahead journal before its
//     ack, and the journal truncates only after the group commit covering it
//     lands. Scheduled shard crashes (config.faults.service) kill a shard
//     thread at a chosen envelope; a supervisor thread joins the corpse,
//     replays its journals through the orchestrator's sequence-checked commit
//     (deduped against the policy-state blob's per-slot high-water mark, so
//     delivery is exactly-once), re-queues any parked envelope at the front,
//     and restarts the shard with sessions and bindings intact.
//   - Backpressure (shed_deadline_ms > 0): a start decision that cannot
//     enqueue before the deadline gets an explicit kShed reply instead of
//     blocking; observations and plans — the knowledge-carrying messages —
//     always block. ServiceClient can degrade a shed start to a local,
//     unorchestrated cold session instead of failing the request.

#ifndef PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_
#define PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/core/orchestrator.h"
#include "src/jit/runtime_process.h"
#include "src/service/backend.h"
#include "src/service/journal.h"
#include "src/service/mpmc_queue.h"
#include "src/service/wire.h"
#include "src/store/fault_injection.h"

namespace pronghorn {

class ObsSink;

struct ServiceConfig {
  uint32_t shards = 4;
  size_t queue_capacity = 256;  // Per-shard; full queues backpressure Push.
  // Deferred observations per slot that force a group-commit flush.
  uint32_t max_batch = 16;
  // Maximum simulated-time age of a deferred observation before the shard
  // flushes its slot at the end of a burst.
  Duration flush_interval = Duration::Millis(5);
  // Envelopes one shard drains per wakeup before checking aged batches.
  uint32_t max_burst = 32;
  // Directory for per-slot write-ahead observation journals; empty disables
  // journaling entirely (no sequences assigned, no extra Database reads —
  // the disabled path is bit-identical to the pre-journal service).
  std::string journal_dir;
  // Host-time budget for enqueueing a start decision; 0 blocks forever.
  // Past the deadline the caller gets an explicit kShed response instead of
  // waiting on a saturated shard. Start decisions only: observations and
  // checkpoint plans carry knowledge and always block.
  uint32_t shed_deadline_ms = 0;
  // Scheduled shard crashes and stalls (deterministic chaos; see
  // src/store/fault_injection.h). Crashes require journaling for lossless
  // recovery of deferred batches; without it mid-batch crashes lose their
  // buffered observations — visibly, in the books.
  ServiceFaultPlan faults;
  // Borrowed observability sink; null disables all service instrumentation.
  ObsSink* obs = nullptr;
};

// Monotonic service counters (plain snapshot of the internal atomics).
// `observations_committed` counts knowledge writes that landed in the
// Database; after a successful Drain with no injected faults it equals
// `observations` — the no-lost-observations invariant the concurrency test
// asserts.
struct ServiceStatsSnapshot {
  uint64_t requests = 0;
  uint64_t start_decisions = 0;
  uint64_t observations = 0;
  uint64_t plan_requests = 0;
  uint64_t observations_deferred = 0;
  uint64_t observations_committed = 0;
  uint64_t batches_committed = 0;
  uint64_t max_batch_committed = 0;
  uint64_t decode_errors = 0;
  uint64_t rejected_requests = 0;
  uint64_t flush_errors = 0;
  uint64_t drains = 0;
  uint64_t reconfigures = 0;
  // Crash-tolerance counters (all zero when chaos and journaling are off).
  uint64_t crashes_injected = 0;
  uint64_t stalls_injected = 0;
  uint64_t shards_recovered = 0;
  uint64_t sheds = 0;  // Start decisions refused past the shed deadline.
  uint64_t journal_appends = 0;
  uint64_t journal_truncations = 0;
  // Journal records recovery pushed back through the commit path vs. skipped
  // as already covered by the high-water mark.
  uint64_t journal_replayed = 0;
  uint64_t journal_deduped = 0;
  uint64_t journal_torn_tails = 0;  // Recoveries that dropped a torn tail.
};

class OrchestratorService {
 public:
  explicit OrchestratorService(ServiceConfig config);
  ~OrchestratorService();

  OrchestratorService(const OrchestratorService&) = delete;
  OrchestratorService& operator=(const OrchestratorService&) = delete;

  // Binds slot `slot` of `function` to an Orchestrator and the deployment's
  // simulated clock (both borrowed; must outlive the binding). kAlreadyExists
  // when the slot is already bound.
  Status Bind(const std::string& function, uint32_t slot, Orchestrator* orchestrator,
              SimClock* clock);
  // Flushes the function's pending batches and removes every slot binding.
  Status Unbind(const std::string& function);

  // Submits one encoded request frame and blocks until its response frame is
  // ready. Never fails at the transport level: malformed frames and
  // shut-down services yield an encoded kError response.
  std::vector<uint8_t> Call(const std::vector<uint8_t>& request_bytes);

  // Processes everything enqueued before the call and flushes every deferred
  // batch. Safe on an already-stopped service.
  Status Drain();
  // Drains, then swaps shard count / batch cap / flush interval without
  // dropping bindings or live sessions.
  Status Reconfigure(uint32_t shards, uint32_t max_batch, Duration flush_interval);
  // Drain + stop shard threads; idempotent. Calls after shutdown get kError
  // responses.
  void Shutdown();

  ServiceStatsSnapshot stats() const;
  uint32_t shard_count() const;
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  // One live (function, slot) binding. `deferred` mirrors the orchestrator's
  // pending-observation count so barriers know whether a flush would touch
  // the Database at all (it must not in synchronous mode, where commits
  // happen in-line and an extra Update would break digest equivalence).
  struct SlotState {
    Orchestrator* orchestrator = nullptr;
    std::optional<WorkerSession> session;
    uint64_t deferred = 0;
    TimePoint oldest_deferred;
    // Write-ahead journal for this slot's deferred observations (null when
    // journaling is disabled).
    std::unique_ptr<ObservationJournal> journal;
    // Last journal sequence assigned; seeded at bind time from the recovered
    // journal and the blob's committed high-water mark so sequences never
    // restart below a value the dedup would swallow.
    uint64_t last_sequence = 0;
  };

  struct Endpoint {
    uint64_t name_hash = 0;  // Stable routing hash of the function name.
    SimClock* clock = nullptr;
    std::vector<SlotState> slots;
  };

  // Per-request reply mailbox, stack-allocated by Call().
  struct PendingReply {
    std::mutex mutex;
    std::condition_variable ready_cv;
    bool ready = false;
    std::vector<uint8_t> bytes;
  };

  // Countdown gate a Drain() waits on; one token lands on every shard queue.
  struct DrainGate {
    std::mutex mutex;
    std::condition_variable cv;
    uint32_t remaining = 0;
  };

  struct Envelope {
    ServiceRequest request;
    PendingReply* reply = nullptr;
    DrainGate* gate = nullptr;  // Non-null marks a drain token.
  };

  struct Stats {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> start_decisions{0};
    std::atomic<uint64_t> observations{0};
    std::atomic<uint64_t> plan_requests{0};
    std::atomic<uint64_t> observations_deferred{0};
    std::atomic<uint64_t> observations_committed{0};
    std::atomic<uint64_t> batches_committed{0};
    std::atomic<uint64_t> max_batch_committed{0};
    std::atomic<uint64_t> decode_errors{0};
    std::atomic<uint64_t> rejected_requests{0};
    std::atomic<uint64_t> flush_errors{0};
    std::atomic<uint64_t> drains{0};
    std::atomic<uint64_t> reconfigures{0};
    std::atomic<uint64_t> crashes_injected{0};
    std::atomic<uint64_t> stalls_injected{0};
    std::atomic<uint64_t> shards_recovered{0};
    std::atomic<uint64_t> sheds{0};
    std::atomic<uint64_t> journal_appends{0};
    std::atomic<uint64_t> journal_truncations{0};
    std::atomic<uint64_t> journal_replayed{0};
    std::atomic<uint64_t> journal_deduped{0};
    std::atomic<uint64_t> journal_torn_tails{0};
  };

  // Starts queues and shard threads per config_ (lifecycle lock held).
  void Start();
  // Closes queues and joins shard threads (lifecycle lock held).
  void Stop();
  // Pushes one drain token per shard and waits for all of them.
  void DrainLocked();

  void ShardLoop(uint32_t shard);
  void ProcessEnvelope(uint32_t shard, Envelope& envelope);
  ServiceResponse HandleRequest(const ServiceRequest& request);
  ServiceResponse HandleStartDecision(Endpoint& endpoint, SlotState& slot);
  ServiceResponse HandleObservation(Endpoint& endpoint, SlotState& slot,
                                    const ServiceRequest& request);
  ServiceResponse HandlePlan(SlotState& slot, const ServiceRequest& request);

  // Commits a slot's deferred batch (no-op when empty). kUnavailable inside
  // the commit leaves the batch buffered and still returns OK; only hard
  // faults surface.
  Status FlushSlot(SlotState& slot);
  Status FlushEndpoint(Endpoint& endpoint);
  // Flushes every endpoint owned by `shard`; hard faults are counted and
  // logged (no requester is waiting on them).
  void FlushShard(uint32_t shard);
  // End-of-burst sweep: flushes slots whose oldest deferred observation aged
  // past flush_interval on their deployment's simulated clock.
  void FlushAged(uint32_t shard);

  uint32_t ShardOf(uint64_t name_hash) const;
  void Reply(Envelope& envelope, const ServiceResponse& response);

  // --- Crash tolerance ---
  // Returns the stage of a crash scheduled for this (shard, op), arming the
  // plan entry so it fires exactly once; nullopt when nothing is scheduled.
  std::optional<ServiceCrashStage> TakeCrash(uint32_t shard, uint64_t op);
  // Sleeps out any stall scheduled for this (shard, op); fires once each.
  void MaybeStall(uint32_t shard, uint64_t op);
  // Simulated crash exit: counts the crash and hands the shard to the
  // supervisor. The calling shard thread must return immediately after.
  void CrashShard(uint32_t shard, ServiceCrashStage stage);
  // The memory loss of a mid-batch crash: discards every orchestrator-side
  // pending observation owned by `shard`. slot.deferred is intentionally
  // kept — it is the supervisor's ledger of what recovery still owes.
  void DropShardBuffers(uint32_t shard);
  // Joins the dead shard thread, replays its journals, re-queues any parked
  // envelope at the front, and restarts the thread (supervisor only).
  void RecoverShard(uint32_t shard);
  // Replays every journal owned by `shard` through the deduping commit path.
  void ReplayShardJournals(uint32_t shard);
  // Recovers one slot's journal: replay, bookkeeping, truncate-on-success.
  // Used both by crash recovery and by Bind (leftover journal from a
  // previous service incarnation).
  void RecoverSlotJournal(const std::string& function, SlotState& slot);
  // Waits for dead shards and recovers them until told to stop; drains every
  // pending recovery before exiting.
  void SupervisorLoop();

  ServiceConfig config_;

  // Serializes control operations (Drain / Reconfigure / Shutdown).
  std::mutex control_mutex_;
  // Guards the queue/thread topology: Call() holds it shared while pushing,
  // Reconfigure/Shutdown hold it exclusively while swapping.
  mutable std::shared_mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<MpmcQueue<Envelope>>> queues_;
  std::vector<std::thread> shard_threads_;

  // Guards the endpoint registry: shard threads hold it shared for a whole
  // burst, Bind/Unbind hold it exclusively.
  std::shared_mutex endpoints_mutex_;
  std::unordered_map<std::string, Endpoint> endpoints_;

  // --- Crash-injection state ---
  // Per-shard processed-envelope counters (gate tokens excluded), monotonic
  // across recoveries — `at_op` in the fault plan indexes into this count.
  // Each entry is written only by its shard's thread; Start() resizes it
  // while no shard threads run.
  std::vector<uint64_t> shard_ops_;
  // One armed-flag per plan entry, parallel to config_.faults.service; an
  // entry is only ever touched by the thread of the shard it names.
  std::vector<char> crash_fired_;
  std::vector<char> stall_fired_;
  // Envelope a kEnqueue crash parked, per shard; handed from the dying
  // thread to the supervisor across the join.
  std::vector<std::optional<Envelope>> parked_;

  // Supervisor: one thread (spawned only when crashes are scheduled) that
  // recovers dead shards. Stop() joins it before touching shard threads, so
  // thread-slot writes never race.
  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  std::deque<uint32_t> dead_shards_;
  bool supervisor_stop_ = false;
  std::thread supervisor_thread_;

  mutable Stats stats_;
};

// A WorkerBackend that drives one (function, slot) pair through the service's
// wire boundary: each operation encodes a frame, blocks in Call(), and
// decodes the reply. With `defer_commit` the client runs in pipelined mode
// (observations acknowledged after execution, knowledge group-committed
// later); simulation clients leave it off, which keeps service-mode digests
// bit-identical to in-process runs.
class ServiceClient final : public WorkerBackend {
 public:
  ServiceClient(OrchestratorService* service, std::string function, uint32_t slot,
                bool defer_commit = false);

  Result<SessionView> StartWorker() override;
  Result<RequestOutcome> ServeRequest(const FunctionRequest& request) override;
  SessionEnd EndSession() override;

  // Non-retiring plan probe (tests sample live-session progress with it).
  Result<WirePlan> QueryPlan();

  // Arms the shed fallback: when the service sheds this client's start
  // decision (kResourceExhausted past the shed deadline), StartWorker
  // degrades to a local, unorchestrated cold session instead of failing —
  // no restore, no checkpoint plan, no knowledge writes, requests executed
  // in-process until EndSession. The profile is borrowed and must outlive
  // the client. Without a fallback a shed surfaces as kResourceExhausted.
  void set_shed_fallback(const WorkloadProfile* profile, uint64_t seed) {
    fallback_profile_ = profile;
    fallback_seed_ = seed;
  }

  // Sessions this client served locally because their start was shed.
  uint64_t sheds_degraded() const { return sheds_degraded_; }

 private:
  Result<ServiceResponse> Roundtrip(const ServiceRequest& request, WireType expected);

  OrchestratorService* service_;
  std::string function_;
  uint32_t slot_;
  bool defer_commit_;
  const WorkloadProfile* fallback_profile_ = nullptr;
  uint64_t fallback_seed_ = 0;
  uint64_t sheds_degraded_ = 0;
  // Live degraded session (set only after a shed with an armed fallback).
  std::optional<RuntimeProcess> shed_process_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_ORCHESTRATOR_SERVICE_H_
