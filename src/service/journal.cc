#include "src/service/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/bytes.h"
#include "src/service/wire.h"

namespace pronghorn {

namespace {

// Little-endian u32 length prefix in front of every framed record.
constexpr size_t kLengthPrefix = 4;

std::vector<uint8_t> EncodeRecord(const ObservationJournal::Record& record) {
  ByteWriter body = BeginWireFrame(WireType::kJournalRecord);
  body.WriteVarint(record.sequence);
  body.WriteVarint(record.request_number);
  body.WriteInt64(record.latency.ToMicros());
  const std::vector<uint8_t> frame = SealWireFrame(std::move(body));

  ByteWriter prefix;
  prefix.WriteUint32(static_cast<uint32_t>(frame.size()));
  std::vector<uint8_t> framed = prefix.TakeData();
  framed.insert(framed.end(), frame.begin(), frame.end());
  return framed;
}

Result<ObservationJournal::Record> DecodeRecord(std::span<const uint8_t> frame) {
  PRONGHORN_ASSIGN_OR_RETURN(const auto opened, OpenWireFrame(frame));
  if (opened.first != WireType::kJournalRecord) {
    return DataLossError("journal frame has non-journal type");
  }
  ByteReader reader(opened.second);
  ObservationJournal::Record record;
  PRONGHORN_ASSIGN_OR_RETURN(record.sequence, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(record.request_number, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t micros, reader.ReadInt64());
  record.latency = Duration::Micros(micros);
  if (!reader.AtEnd()) {
    return DataLossError("journal record has trailing bytes");
  }
  return record;
}

}  // namespace

std::string ObservationJournal::FilePath(const std::string& dir,
                                         const std::string& function,
                                         uint32_t slot) {
  std::string name = function;
  for (char& c : name) {
    if (c == '/') {
      c = '_';
    }
  }
  return dir + "/" + name + "." + std::to_string(slot) + ".journal";
}

Result<std::unique_ptr<ObservationJournal>> ObservationJournal::Open(
    const std::string& dir, const std::string& function, uint32_t slot) {
  std::string path = FilePath(dir, function, slot);
  // "ab" creates the file when missing and preserves an existing journal for
  // recovery; every write lands at the end regardless of interleaved reads.
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return UnavailableError("cannot open journal " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<ObservationJournal>(
      new ObservationJournal(std::move(path), file));
}

ObservationJournal::ObservationJournal(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

ObservationJournal::~ObservationJournal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status ObservationJournal::Append(const Record& record) {
  const std::vector<uint8_t> bytes = EncodeRecord(record);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    return UnavailableError("journal append failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  return OkStatus();
}

Status ObservationJournal::Truncate() {
  // Reopen-for-write is the portable truncate; the handle stays usable for
  // subsequent appends.
  std::FILE* reopened = std::freopen(path_.c_str(), "wb", file_);
  if (reopened == nullptr) {
    file_ = nullptr;  // freopen failure closes the original stream.
    return UnavailableError("journal truncate failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  file_ = reopened;
  return OkStatus();
}

Result<ObservationJournal::RecoveredLog> ObservationJournal::Recover() const {
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    return UnavailableError("cannot read journal " + path_ + ": " +
                            std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(in);

  RecoveredLog log;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kLengthPrefix) {
      break;  // Torn mid-length-prefix.
    }
    ByteReader prefix(std::span<const uint8_t>(bytes).subspan(offset, kLengthPrefix));
    const auto length = prefix.ReadUint32();
    if (!length.ok() || *length == 0 ||
        remaining - kLengthPrefix < static_cast<size_t>(*length)) {
      break;  // Torn mid-record: the append died before the frame completed.
    }
    const auto record = DecodeRecord(
        std::span<const uint8_t>(bytes).subspan(offset + kLengthPrefix, *length));
    if (!record.ok()) {
      break;  // Corrupt tail (bad CRC / magic): drop it and everything after.
    }
    log.records.push_back(*record);
    offset += kLengthPrefix + *length;
  }
  log.torn_tail_bytes = bytes.size() - offset;
  return log;
}

uint64_t ObservationJournal::MaxRecordedSequence() const {
  const auto log = Recover();
  if (!log.ok()) {
    return 0;
  }
  uint64_t max_sequence = 0;
  for (const Record& record : log->records) {
    max_sequence = std::max(max_sequence, record.sequence);
  }
  return max_sequence;
}

}  // namespace pronghorn
