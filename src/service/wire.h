// Wire format of the orchestrator service.
//
// Every message is a self-delimiting little-endian frame so a socket
// transport can be layered under the in-process queue later without touching
// the service core:
//
//   u32  magic ("Phrn")
//   u8   version (1)
//   u8   type (WireType)
//   ...  type-specific body (ByteWriter primitives)
//   u32  CRC32 over every preceding byte
//
// Decoding validates everything: wrong magic or a failed CRC is kDataLoss
// (any single-bit flip is caught — pinned by tests/service_protocol_test.cc),
// an unsupported version or type is kInvalidArgument, and a frame with
// trailing bytes after its body is kDataLoss. Request bodies all lead with
// the function name, which is the service's shard-routing key.

#ifndef PRONGHORN_SRC_SERVICE_WIRE_H_
#define PRONGHORN_SRC_SERVICE_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/core/orchestrator.h"
#include "src/service/backend.h"

namespace pronghorn {

inline constexpr uint32_t kWireMagic = 0x5068726e;  // "Phrn"
inline constexpr uint8_t kWireVersion = 1;

enum class WireType : uint8_t {
  // Requests.
  kStartDecision = 1,   // Provision a worker for (function, slot).
  kObservation = 2,     // Serve one request and record its latency knowledge.
  kCheckpointPlan = 3,  // Report the slot's plan/accounting; optionally retire.
  // Responses.
  kStartAck = 4,        // SessionView.
  kObservationAck = 5,  // RequestOutcome + whether the knowledge is committed.
  kPlanAck = 6,         // WirePlan.
  kError = 7,           // StatusCode + message.
  kShed = 8,            // Backpressure: start decision shed past the deadline.
  // Durable records (never travels the request/response path).
  kJournalRecord = 9,   // One write-ahead journal entry (src/service/journal).
};

struct ServiceRequest {
  WireType type = WireType::kStartDecision;
  std::string function;  // Routing key; always first on the wire.
  uint32_t slot = 0;
  // kObservation only.
  FunctionRequest request;
  // kObservation: reply after execution and let the service group-commit the
  // knowledge write later, instead of committing before the reply.
  bool defer_commit = false;
  // kCheckpointPlan only: end the session after reporting.
  bool retire = false;
};

// kPlanAck body: this lifetime's plan plus the session accounting SimCore
// needs at evict/retire time.
struct WirePlan {
  bool live = false;  // False when the slot had no session (idempotent retire).
  bool has_plan = false;
  uint64_t checkpoint_at = 0;  // Valid when has_plan.
  uint64_t requests_executed = 0;
  double memory_mb = 0.0;
  bool retired = false;
};

struct ServiceResponse {
  WireType type = WireType::kError;
  // kError and kShed.
  StatusCode code = StatusCode::kInternal;
  std::string message;
  // kShed only: queue depth observed when the deadline expired, so the
  // client's degrade decision (and its logs) can cite the pressure.
  uint64_t queue_depth = 0;
  // kStartAck only.
  SessionView view;
  // kObservationAck only.
  RequestOutcome outcome;
  bool committed = false;
  // kPlanAck only.
  WirePlan plan;
};

std::vector<uint8_t> EncodeServiceRequest(const ServiceRequest& request);
Result<ServiceRequest> DecodeServiceRequest(std::span<const uint8_t> bytes);

std::vector<uint8_t> EncodeServiceResponse(const ServiceResponse& response);
Result<ServiceResponse> DecodeServiceResponse(std::span<const uint8_t> bytes);

// Framing building blocks, shared with the write-ahead journal
// (src/service/journal.cc) so its on-disk records carry the same
// magic/version/CRC envelope as every other service message. BeginWireFrame
// starts an envelope (magic, version, type); SealWireFrame appends the CRC32
// over everything written; OpenWireFrame validates magic, version, type
// range, and checksum, returning the type and the body span.
ByteWriter BeginWireFrame(WireType type);
std::vector<uint8_t> SealWireFrame(ByteWriter writer);
Result<std::pair<WireType, std::span<const uint8_t>>> OpenWireFrame(
    std::span<const uint8_t> bytes);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_WIRE_H_
