// Bounded multi-producer multi-consumer queue for the orchestrator service.
//
// Producers (service clients) block in Push when the queue is full — the
// service's backpressure — and consumers (shard threads) block in Pop until
// work arrives or the queue is closed. Close() is the shutdown handshake:
// pushes fail immediately, pops drain whatever is already queued and then
// return false, so every accepted request is still answered before a shard
// thread exits. Plain mutex + condition variables: the round-trip through the
// queue is also the happens-before edge that lets service mode stay
// data-race-free while shard threads drive simulation state.

#ifndef PRONGHORN_SRC_SERVICE_MPMC_QUEUE_H_
#define PRONGHORN_SRC_SERVICE_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace pronghorn {

// Outcome of a deadline-bounded push.
enum class PushOutcome {
  kAccepted = 0,  // Item enqueued.
  kClosed = 1,    // Queue closed; item dropped.
  kShed = 2,      // Still full at the deadline; item dropped (backpressure).
};

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks while the queue is full; false when the queue was closed (the item
  // is dropped). `depth_after` (optional) receives the queue depth right
  // after the push — the service's queue-depth gauge.
  bool Push(T item, size_t* depth_after = nullptr) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
      if (depth_after != nullptr) {
        *depth_after = items_.size();
      }
    }
    not_empty_.notify_one();
    return true;
  }

  // Push that gives up when the queue is still full after `deadline` of host
  // time — the service's load-shedding decision point. A zero deadline means
  // wait forever (identical to Push). On kShed, `depth_after` receives the
  // depth observed at the deadline so the shed reply can cite the pressure.
  PushOutcome PushWithDeadline(T item, std::chrono::milliseconds deadline,
                               size_t* depth_after = nullptr) {
    if (deadline.count() <= 0) {
      return Push(std::move(item), depth_after) ? PushOutcome::kAccepted
                                                : PushOutcome::kClosed;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const bool ready = not_full_.wait_for(
          lock, deadline, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return PushOutcome::kClosed;
      }
      if (!ready) {
        if (depth_after != nullptr) {
          *depth_after = items_.size();
        }
        return PushOutcome::kShed;
      }
      items_.push_back(std::move(item));
      if (depth_after != nullptr) {
        *depth_after = items_.size();
      }
    }
    not_empty_.notify_one();
    return PushOutcome::kAccepted;
  }

  // Re-queues an item at the FRONT, bypassing the capacity bound (the queue
  // may briefly hold capacity+1 items). Recovery only: a crashed shard's
  // parked envelope must re-enter ahead of everything behind it so the
  // arrival order — and with it the simulation trajectory — is preserved.
  // False when the queue is closed.
  bool PushFront(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_front(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available; false once the queue is closed AND
  // drained (consumers see every item accepted before the close).
  bool Pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return false;
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; false when the queue is currently empty.
  bool TryPop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (items_.empty()) {
        return false;
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  void Close() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t depth() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_MPMC_QUEUE_H_
