#include "src/service/orchestrator_service.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/sink.h"

namespace pronghorn {

namespace {

// FNV-1a over the function name: the stable shard-routing hash (std::hash is
// not portable across standard libraries; the same function must land on the
// same shard everywhere).
uint64_t StableNameHash(std::string_view name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

ServiceResponse ErrorResponse(const Status& status) {
  ServiceResponse response;
  response.type = WireType::kError;
  response.code = status.code();
  response.message = status.message();
  return response;
}

void NoteMax(std::atomic<uint64_t>& slot, uint64_t candidate) {
  uint64_t prev = slot.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !slot.compare_exchange_weak(prev, candidate, std::memory_order_relaxed)) {
  }
}

}  // namespace

OrchestratorService::OrchestratorService(ServiceConfig config) : config_(config) {
  config_.shards = std::max<uint32_t>(config_.shards, 1);
  config_.max_batch = std::max<uint32_t>(config_.max_batch, 1);
  config_.max_burst = std::max<uint32_t>(config_.max_burst, 1);
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  Start();
}

OrchestratorService::~OrchestratorService() { Shutdown(); }

void OrchestratorService::Start() {
  queues_.clear();
  shard_threads_.clear();
  for (uint32_t i = 0; i < config_.shards; ++i) {
    queues_.push_back(std::make_unique<MpmcQueue<Envelope>>(config_.queue_capacity));
  }
  running_.store(true, std::memory_order_release);
  shard_threads_.reserve(config_.shards);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    shard_threads_.emplace_back(&OrchestratorService::ShardLoop, this, i);
  }
}

void OrchestratorService::Stop() {
  running_.store(false, std::memory_order_release);
  for (const auto& queue : queues_) {
    queue->Close();
  }
  for (std::thread& thread : shard_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  shard_threads_.clear();
}

uint32_t OrchestratorService::ShardOf(uint64_t name_hash) const {
  return static_cast<uint32_t>(name_hash % config_.shards);
}

uint32_t OrchestratorService::shard_count() const {
  std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  return config_.shards;
}

ServiceStatsSnapshot OrchestratorService::stats() const {
  ServiceStatsSnapshot out;
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.start_decisions = stats_.start_decisions.load(std::memory_order_relaxed);
  out.observations = stats_.observations.load(std::memory_order_relaxed);
  out.plan_requests = stats_.plan_requests.load(std::memory_order_relaxed);
  out.observations_deferred =
      stats_.observations_deferred.load(std::memory_order_relaxed);
  out.observations_committed =
      stats_.observations_committed.load(std::memory_order_relaxed);
  out.batches_committed = stats_.batches_committed.load(std::memory_order_relaxed);
  out.max_batch_committed = stats_.max_batch_committed.load(std::memory_order_relaxed);
  out.decode_errors = stats_.decode_errors.load(std::memory_order_relaxed);
  out.rejected_requests = stats_.rejected_requests.load(std::memory_order_relaxed);
  out.flush_errors = stats_.flush_errors.load(std::memory_order_relaxed);
  out.drains = stats_.drains.load(std::memory_order_relaxed);
  out.reconfigures = stats_.reconfigures.load(std::memory_order_relaxed);
  return out;
}

Status OrchestratorService::Bind(const std::string& function, uint32_t slot,
                                 Orchestrator* orchestrator, SimClock* clock) {
  if (function.empty()) {
    return InvalidArgumentError("function name must be non-empty");
  }
  if (orchestrator == nullptr || clock == nullptr) {
    return InvalidArgumentError("binding needs an orchestrator and a clock");
  }
  std::unique_lock<std::shared_mutex> lock(endpoints_mutex_);
  Endpoint& endpoint = endpoints_[function];
  endpoint.name_hash = StableNameHash(function);
  endpoint.clock = clock;
  if (slot >= endpoint.slots.size()) {
    endpoint.slots.resize(slot + 1);
  }
  if (endpoint.slots[slot].orchestrator != nullptr) {
    return AlreadyExistsError("slot " + std::to_string(slot) + " of '" + function +
                              "' is already bound");
  }
  endpoint.slots[slot].orchestrator = orchestrator;
  return OkStatus();
}

Status OrchestratorService::Unbind(const std::string& function) {
  std::unique_lock<std::shared_mutex> lock(endpoints_mutex_);
  auto it = endpoints_.find(function);
  if (it == endpoints_.end()) {
    return NotFoundError("function '" + function + "' is not bound");
  }
  const Status flushed = FlushEndpoint(it->second);
  endpoints_.erase(it);
  return flushed;
}

std::vector<uint8_t> OrchestratorService::Call(
    const std::vector<uint8_t>& request_bytes) {
  auto decoded = DecodeServiceRequest(request_bytes);
  if (!decoded.ok()) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    return EncodeServiceResponse(ErrorResponse(decoded.status()));
  }
  Envelope envelope;
  envelope.request = *std::move(decoded);
  PendingReply reply;
  envelope.reply = &reply;

  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeServiceResponse(
          ErrorResponse(FailedPreconditionError("service is shut down")));
    }
    const uint32_t shard = ShardOf(StableNameHash(envelope.request.function));
    size_t depth = 0;
    if (!queues_[shard]->Push(std::move(envelope), &depth)) {
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeServiceResponse(
          ErrorResponse(FailedPreconditionError("service queue is closed")));
    }
    if (config_.obs != nullptr) {
      config_.obs->Gauge("service.queue_depth", static_cast<double>(depth));
    }
  }

  std::unique_lock<std::mutex> lock(reply.mutex);
  reply.ready_cv.wait(lock, [&] { return reply.ready; });
  return std::move(reply.bytes);
}

void OrchestratorService::DrainLocked() {
  // Threads are alive (shared lifecycle lock held by the caller): one token
  // per shard, processed after everything enqueued before it; each token
  // flushes its shard's deferred batches before acking.
  DrainGate gate;
  gate.remaining = static_cast<uint32_t>(queues_.size());
  for (const auto& queue : queues_) {
    Envelope token;
    token.gate = &gate;
    if (!queue->Push(std::move(token))) {
      std::unique_lock<std::mutex> lock(gate.mutex);
      gate.remaining -= 1;
    }
  }
  std::unique_lock<std::mutex> lock(gate.mutex);
  gate.cv.wait(lock, [&] { return gate.remaining == 0; });
}

Status OrchestratorService::Drain() {
  std::unique_lock<std::mutex> control(control_mutex_);
  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return OkStatus();  // Stopped service: shutdown already drained.
    }
    DrainLocked();
  }
  stats_.drains.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.drains", 1);
  }
  return OkStatus();
}

Status OrchestratorService::Reconfigure(uint32_t shards, uint32_t max_batch,
                                        Duration flush_interval) {
  if (shards == 0 || max_batch == 0) {
    return InvalidArgumentError("shards and max_batch must be positive");
  }
  if (flush_interval < Duration::Zero()) {
    return InvalidArgumentError("flush_interval must be non-negative");
  }
  std::unique_lock<std::mutex> control(control_mutex_);
  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("service is shut down");
    }
    // Drain first while threads still run, so in-flight pushers finish and
    // release their shared lifecycle lock before we take it exclusively.
    DrainLocked();
  }
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  Stop();
  config_.shards = shards;
  config_.max_batch = max_batch;
  config_.flush_interval = flush_interval;
  Start();
  stats_.reconfigures.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.reconfigures", 1);
  }
  return OkStatus();
}

void OrchestratorService::Shutdown() {
  std::unique_lock<std::mutex> control(control_mutex_);
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  // Close() lets shard threads drain everything already accepted (each
  // envelope still gets its reply) and then flush leftover batches on exit.
  Stop();
}

void OrchestratorService::ShardLoop(uint32_t shard) {
  MpmcQueue<Envelope>& queue = *queues_[shard];
  Envelope envelope;
  while (queue.Pop(envelope)) {
    // One shared-lock scope per burst: Bind/Unbind wait for burst boundaries,
    // and the endpoint vector cannot move underneath the handlers.
    std::shared_lock<std::shared_mutex> endpoints_lock(endpoints_mutex_);
    uint32_t burst = 0;
    while (true) {
      ProcessEnvelope(shard, envelope);
      burst += 1;
      if (burst >= config_.max_burst || !queue.TryPop(envelope)) {
        break;
      }
    }
    FlushAged(shard);
  }
  // Queue closed and drained: commit whatever is still deferred.
  std::shared_lock<std::shared_mutex> endpoints_lock(endpoints_mutex_);
  FlushShard(shard);
}

void OrchestratorService::ProcessEnvelope(uint32_t shard, Envelope& envelope) {
  if (envelope.gate != nullptr) {
    FlushShard(shard);
    std::unique_lock<std::mutex> lock(envelope.gate->mutex);
    envelope.gate->remaining -= 1;
    if (envelope.gate->remaining == 0) {
      envelope.gate->cv.notify_all();
    }
    return;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.requests", 1);
  }
  const ServiceResponse response = HandleRequest(envelope.request);
  Reply(envelope, response);
}

ServiceResponse OrchestratorService::HandleRequest(const ServiceRequest& request) {
  auto it = endpoints_.find(request.function);
  if (it == endpoints_.end()) {
    return ErrorResponse(
        NotFoundError("function '" + request.function + "' is not bound"));
  }
  Endpoint& endpoint = it->second;
  if (request.slot >= endpoint.slots.size() ||
      endpoint.slots[request.slot].orchestrator == nullptr) {
    return ErrorResponse(NotFoundError("slot " + std::to_string(request.slot) +
                                       " of '" + request.function +
                                       "' is not bound"));
  }
  SlotState& slot = endpoint.slots[request.slot];
  switch (request.type) {
    case WireType::kStartDecision:
      return HandleStartDecision(endpoint, slot);
    case WireType::kObservation:
      return HandleObservation(endpoint, slot, request);
    case WireType::kCheckpointPlan:
      return HandlePlan(slot, request);
    default:
      return ErrorResponse(InvalidArgumentError("response type in a request frame"));
  }
}

ServiceResponse OrchestratorService::HandleStartDecision(Endpoint& endpoint,
                                                         SlotState& slot) {
  stats_.start_decisions.fetch_add(1, std::memory_order_relaxed);
  // Barrier: the new lifetime's Database read must see every deferred
  // observation of this function. No-op in synchronous mode (nothing is ever
  // deferred), so the in-process Update sequence is preserved exactly.
  const Status flushed = FlushEndpoint(endpoint);
  if (!flushed.ok()) {
    return ErrorResponse(flushed);
  }
  if (slot.session.has_value()) {
    return ErrorResponse(
        FailedPreconditionError("slot already has a live worker session"));
  }
  auto started = slot.orchestrator->StartWorker();
  if (!started.ok()) {
    return ErrorResponse(started.status());
  }
  slot.session.emplace(*std::move(started));
  ServiceResponse response;
  response.type = WireType::kStartAck;
  response.view = MakeSessionView(*slot.session);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.start_decisions", 1);
    // Decision latency in simulated time: the Database read + policy
    // decision cost this start charged to orchestrator overhead.
    config_.obs->Observe("service.decision_latency_us", response.view.startup_overhead);
  }
  return response;
}

ServiceResponse OrchestratorService::HandleObservation(Endpoint& endpoint,
                                                       SlotState& slot,
                                                       const ServiceRequest& request) {
  stats_.observations.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.observations", 1);
  }
  if (!slot.session.has_value()) {
    return ErrorResponse(FailedPreconditionError("slot has no live worker session"));
  }
  ServiceResponse response;
  response.type = WireType::kObservationAck;
  if (!request.defer_commit) {
    // Synchronous mode: commit before replying — the exact in-process
    // ServeRequest sequence. This also group-commits any deferred backlog
    // the slot accumulated earlier (the orchestrator buffer holds it).
    auto outcome = slot.orchestrator->ServeRequest(*slot.session, request.request);
    if (!outcome.ok()) {
      return ErrorResponse(outcome.status());
    }
    if (slot.deferred > 0 && slot.orchestrator->pending_observation_count() == 0) {
      stats_.observations_committed.fetch_add(slot.deferred,
                                              std::memory_order_relaxed);
    }
    slot.deferred = slot.orchestrator->pending_observation_count();
    stats_.observations_committed.fetch_add(slot.deferred == 0 ? 1 : 0,
                                            std::memory_order_relaxed);
    response.outcome = *outcome;
    response.committed = slot.deferred == 0;
    return response;
  }

  // Pipelined mode: execute and acknowledge now; the knowledge write rides a
  // later group commit.
  response.outcome = slot.orchestrator->ExecuteBuffered(*slot.session, request.request);
  if (slot.deferred == 0) {
    slot.oldest_deferred = endpoint.clock->now();
  }
  slot.deferred = slot.orchestrator->pending_observation_count();
  stats_.observations_deferred.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.observations_deferred", 1);
  }
  const bool plan_due =
      slot.session->checkpoint_at.has_value() &&
      slot.session->process.requests_executed() >= *slot.session->checkpoint_at;
  if (slot.deferred >= config_.max_batch || plan_due) {
    const Status flushed = FlushSlot(slot);
    if (!flushed.ok()) {
      return ErrorResponse(flushed);
    }
    if (plan_due) {
      const Status checkpointed =
          slot.orchestrator->MaybeCheckpoint(*slot.session, response.outcome);
      if (!checkpointed.ok()) {
        return ErrorResponse(checkpointed);
      }
    }
  }
  response.committed = slot.deferred == 0;
  return response;
}

ServiceResponse OrchestratorService::HandlePlan(SlotState& slot,
                                                const ServiceRequest& request) {
  stats_.plan_requests.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.plan_requests", 1);
  }
  ServiceResponse response;
  response.type = WireType::kPlanAck;
  if (!slot.session.has_value()) {
    return response;  // Idempotent: retiring an empty slot reports live=false.
  }
  // A retiring worker's deferred knowledge must not die with it.
  const Status flushed = FlushSlot(slot);
  if (!flushed.ok()) {
    return ErrorResponse(flushed);
  }
  response.plan.live = true;
  response.plan.has_plan = slot.session->checkpoint_at.has_value();
  if (response.plan.has_plan) {
    response.plan.checkpoint_at = *slot.session->checkpoint_at;
  }
  response.plan.requests_executed = slot.session->process.requests_executed();
  response.plan.memory_mb = slot.session->process.MemoryFootprintMb();
  if (request.retire) {
    slot.session.reset();
    response.plan.retired = true;
  }
  return response;
}

Status OrchestratorService::FlushSlot(SlotState& slot) {
  if (slot.deferred == 0) {
    return OkStatus();
  }
  const uint64_t batch = slot.orchestrator->pending_observation_count();
  RequestOutcome scratch;
  PRONGHORN_RETURN_IF_ERROR(slot.orchestrator->CommitObservations(scratch));
  const uint64_t remaining = slot.orchestrator->pending_observation_count();
  if (remaining == 0) {
    stats_.batches_committed.fetch_add(1, std::memory_order_relaxed);
    stats_.observations_committed.fetch_add(batch, std::memory_order_relaxed);
    NoteMax(stats_.max_batch_committed, batch);
    if (config_.obs != nullptr) {
      config_.obs->Counter("service.batches_committed", 1);
    }
    slot.oldest_deferred = TimePoint();
  }
  // A commit that hit an outage keeps the batch buffered (kUnavailable was
  // absorbed); it rides the next flush trigger.
  slot.deferred = remaining;
  return OkStatus();
}

Status OrchestratorService::FlushEndpoint(Endpoint& endpoint) {
  Status first = OkStatus();
  for (SlotState& slot : endpoint.slots) {
    if (slot.orchestrator == nullptr) {
      continue;
    }
    const Status status = FlushSlot(slot);
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  return first;
}

void OrchestratorService::FlushShard(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    const Status status = FlushEndpoint(endpoint);
    if (!status.ok()) {
      stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
      PRONGHORN_LOG_WARNING("group-commit flush failed for '%s': %s", name.c_str(),
                            status.ToString().c_str());
    }
  }
}

void OrchestratorService::FlushAged(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    for (SlotState& slot : endpoint.slots) {
      if (slot.deferred == 0 ||
          endpoint.clock->now() - slot.oldest_deferred < config_.flush_interval) {
        continue;
      }
      const Status status = FlushSlot(slot);
      if (!status.ok()) {
        stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
        PRONGHORN_LOG_WARNING("aged flush failed for '%s': %s", name.c_str(),
                              status.ToString().c_str());
      }
    }
  }
}

void OrchestratorService::Reply(Envelope& envelope, const ServiceResponse& response) {
  if (envelope.reply == nullptr) {
    return;
  }
  std::vector<uint8_t> bytes = EncodeServiceResponse(response);
  // Notify while holding the mutex: the instant `ready` is observable the
  // waiter may return from Call() and destroy the stack-allocated mailbox, so
  // the condition variable must not be touched after the unlock.
  std::unique_lock<std::mutex> lock(envelope.reply->mutex);
  envelope.reply->bytes = std::move(bytes);
  envelope.reply->ready = true;
  envelope.reply->ready_cv.notify_one();
}

// --- ServiceClient -----------------------------------------------------------

ServiceClient::ServiceClient(OrchestratorService* service, std::string function,
                             uint32_t slot, bool defer_commit)
    : service_(service),
      function_(std::move(function)),
      slot_(slot),
      defer_commit_(defer_commit) {}

Result<ServiceResponse> ServiceClient::Roundtrip(const ServiceRequest& request,
                                                 WireType expected) {
  const std::vector<uint8_t> reply = service_->Call(EncodeServiceRequest(request));
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response, DecodeServiceResponse(reply));
  if (response.type == WireType::kError) {
    return Status(response.code, response.message);
  }
  if (response.type != expected) {
    return InternalError("unexpected service response type");
  }
  return response;
}

Result<SessionView> ServiceClient::StartWorker() {
  ServiceRequest request;
  request.type = WireType::kStartDecision;
  request.function = function_;
  request.slot = slot_;
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response,
                             Roundtrip(request, WireType::kStartAck));
  return response.view;
}

Result<RequestOutcome> ServiceClient::ServeRequest(const FunctionRequest& request) {
  ServiceRequest wire_request;
  wire_request.type = WireType::kObservation;
  wire_request.function = function_;
  wire_request.slot = slot_;
  wire_request.request = request;
  wire_request.defer_commit = defer_commit_;
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response,
                             Roundtrip(wire_request, WireType::kObservationAck));
  return response.outcome;
}

Result<WirePlan> ServiceClient::QueryPlan() {
  ServiceRequest request;
  request.type = WireType::kCheckpointPlan;
  request.function = function_;
  request.slot = slot_;
  request.retire = false;
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response,
                             Roundtrip(request, WireType::kPlanAck));
  return response.plan;
}

SessionEnd ServiceClient::EndSession() {
  ServiceRequest request;
  request.type = WireType::kCheckpointPlan;
  request.function = function_;
  request.slot = slot_;
  request.retire = true;
  auto response = Roundtrip(request, WireType::kPlanAck);
  SessionEnd end;
  if (!response.ok()) {
    // Eviction cannot be refused; a transport-level failure here means the
    // session is gone anyway. Zeroed accounting, loudly.
    PRONGHORN_LOG_WARNING("service retire failed for '%s' slot %u: %s",
                          function_.c_str(), slot_,
                          response.status().ToString().c_str());
    return end;
  }
  end.memory_mb = response->plan.memory_mb;
  end.requests_executed = response->plan.requests_executed;
  end.retired = response->plan.retired;
  return end;
}

}  // namespace pronghorn
