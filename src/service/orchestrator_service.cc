#include "src/service/orchestrator_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/sink.h"

namespace pronghorn {

namespace {

// Set by ShardLoop around the envelope a kPreTruncate crash targets: the
// group commit runs, but the truncate that should follow it is suppressed, so
// recovery replays records that already landed — the high-water-mark dedup's
// torture test. Thread-local because FlushSlot is reached from deep call
// chains that do not know which shard (if any) is executing them.
thread_local bool t_suppress_truncate = false;

// FNV-1a over the function name: the stable shard-routing hash (std::hash is
// not portable across standard libraries; the same function must land on the
// same shard everywhere).
uint64_t StableNameHash(std::string_view name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

ServiceResponse ErrorResponse(const Status& status) {
  ServiceResponse response;
  response.type = WireType::kError;
  response.code = status.code();
  response.message = status.message();
  return response;
}

void NoteMax(std::atomic<uint64_t>& slot, uint64_t candidate) {
  uint64_t prev = slot.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !slot.compare_exchange_weak(prev, candidate, std::memory_order_relaxed)) {
  }
}

}  // namespace

OrchestratorService::OrchestratorService(ServiceConfig config)
    : config_(std::move(config)) {
  config_.shards = std::max<uint32_t>(config_.shards, 1);
  config_.max_batch = std::max<uint32_t>(config_.max_batch, 1);
  config_.max_burst = std::max<uint32_t>(config_.max_burst, 1);
  crash_fired_.assign(config_.faults.crashes.size(), 0);
  stall_fired_.assign(config_.faults.stalls.size(), 0);
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  Start();
}

OrchestratorService::~OrchestratorService() { Shutdown(); }

void OrchestratorService::Start() {
  queues_.clear();
  shard_threads_.clear();
  for (uint32_t i = 0; i < config_.shards; ++i) {
    queues_.push_back(std::make_unique<MpmcQueue<Envelope>>(config_.queue_capacity));
  }
  // Op counters persist across Reconfigure (at_op counts a shard's whole
  // history); parked slots are per-shard scratch.
  if (shard_ops_.size() < config_.shards) {
    shard_ops_.resize(config_.shards, 0);
  }
  parked_.resize(std::max<size_t>(parked_.size(), config_.shards));
  dead_shards_.clear();
  running_.store(true, std::memory_order_release);
  shard_threads_.reserve(config_.shards);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    shard_threads_.emplace_back(&OrchestratorService::ShardLoop, this, i);
  }
  if (!config_.faults.crashes.empty()) {
    supervisor_stop_ = false;
    supervisor_thread_ = std::thread(&OrchestratorService::SupervisorLoop, this);
  }
}

void OrchestratorService::Stop() {
  // Stop the supervisor first: it may be mid-recovery (joining a dead shard,
  // replaying its journals, restarting its thread). Letting it finish before
  // the queues close keeps every parked envelope answerable, and joining it
  // before touching shard_threads_ below means thread-slot writes never race.
  {
    std::unique_lock<std::mutex> lock(supervisor_mutex_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  if (supervisor_thread_.joinable()) {
    supervisor_thread_.join();
  }
  running_.store(false, std::memory_order_release);
  for (const auto& queue : queues_) {
    queue->Close();
  }
  for (std::thread& thread : shard_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  shard_threads_.clear();
  // A shard that crashed after the supervisor stopped leaves parked or queued
  // envelopes no thread will ever answer: fail them instead of stranding
  // their callers. (Its journal keeps the unflushed records; the next Bind
  // against the same directory replays them.)
  for (uint32_t shard = 0; shard < queues_.size(); ++shard) {
    if (shard < parked_.size() && parked_[shard].has_value()) {
      Reply(*parked_[shard],
            ErrorResponse(UnavailableError("service shut down during crash recovery")));
      parked_[shard].reset();
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
    }
    Envelope leftover;
    while (queues_[shard]->TryPop(leftover)) {
      if (leftover.gate != nullptr) {
        std::unique_lock<std::mutex> lock(leftover.gate->mutex);
        leftover.gate->remaining -= 1;
        if (leftover.gate->remaining == 0) {
          leftover.gate->cv.notify_all();
        }
        continue;
      }
      Reply(leftover, ErrorResponse(UnavailableError("service shut down with a dead shard")));
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

uint32_t OrchestratorService::ShardOf(uint64_t name_hash) const {
  return static_cast<uint32_t>(name_hash % config_.shards);
}

uint32_t OrchestratorService::shard_count() const {
  std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  return config_.shards;
}

ServiceStatsSnapshot OrchestratorService::stats() const {
  ServiceStatsSnapshot out;
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.start_decisions = stats_.start_decisions.load(std::memory_order_relaxed);
  out.observations = stats_.observations.load(std::memory_order_relaxed);
  out.plan_requests = stats_.plan_requests.load(std::memory_order_relaxed);
  out.observations_deferred =
      stats_.observations_deferred.load(std::memory_order_relaxed);
  out.observations_committed =
      stats_.observations_committed.load(std::memory_order_relaxed);
  out.batches_committed = stats_.batches_committed.load(std::memory_order_relaxed);
  out.max_batch_committed = stats_.max_batch_committed.load(std::memory_order_relaxed);
  out.decode_errors = stats_.decode_errors.load(std::memory_order_relaxed);
  out.rejected_requests = stats_.rejected_requests.load(std::memory_order_relaxed);
  out.flush_errors = stats_.flush_errors.load(std::memory_order_relaxed);
  out.drains = stats_.drains.load(std::memory_order_relaxed);
  out.reconfigures = stats_.reconfigures.load(std::memory_order_relaxed);
  out.crashes_injected = stats_.crashes_injected.load(std::memory_order_relaxed);
  out.stalls_injected = stats_.stalls_injected.load(std::memory_order_relaxed);
  out.shards_recovered = stats_.shards_recovered.load(std::memory_order_relaxed);
  out.sheds = stats_.sheds.load(std::memory_order_relaxed);
  out.journal_appends = stats_.journal_appends.load(std::memory_order_relaxed);
  out.journal_truncations =
      stats_.journal_truncations.load(std::memory_order_relaxed);
  out.journal_replayed = stats_.journal_replayed.load(std::memory_order_relaxed);
  out.journal_deduped = stats_.journal_deduped.load(std::memory_order_relaxed);
  out.journal_torn_tails =
      stats_.journal_torn_tails.load(std::memory_order_relaxed);
  return out;
}

Status OrchestratorService::Bind(const std::string& function, uint32_t slot,
                                 Orchestrator* orchestrator, SimClock* clock) {
  if (function.empty()) {
    return InvalidArgumentError("function name must be non-empty");
  }
  if (orchestrator == nullptr || clock == nullptr) {
    return InvalidArgumentError("binding needs an orchestrator and a clock");
  }
  std::unique_lock<std::shared_mutex> lock(endpoints_mutex_);
  Endpoint& endpoint = endpoints_[function];
  endpoint.name_hash = StableNameHash(function);
  endpoint.clock = clock;
  if (slot >= endpoint.slots.size()) {
    endpoint.slots.resize(slot + 1);
  }
  if (endpoint.slots[slot].orchestrator != nullptr) {
    return AlreadyExistsError("slot " + std::to_string(slot) + " of '" + function +
                              "' is already bound");
  }
  SlotState& state = endpoint.slots[slot];
  state.orchestrator = orchestrator;
  // The slot index keys the per-slot commit high-water mark in the
  // policy-state blob; harmless (and unread) when journaling is off.
  orchestrator->set_commit_scope(slot);
  if (!config_.journal_dir.empty()) {
    auto journal = ObservationJournal::Open(config_.journal_dir, function, slot);
    if (!journal.ok()) {
      state.orchestrator = nullptr;
      return journal.status();
    }
    state.journal = *std::move(journal);
    // Leftover records from a previous service incarnation that died before
    // truncating: replay them through the deduping commit path now, before
    // any new traffic touches the slot. A fresh journal is empty and this is
    // a no-op (no extra Database traffic beyond the high-water Load below).
    RecoverSlotJournal(function, state);
    // Sequences must resume above both what the journal recorded and what
    // the blob already committed — a truncated journal says nothing about
    // committed sequences, and re-using one would be swallowed by the dedup.
    const auto mark = orchestrator->CommittedHighWater();
    if (!mark.ok()) {
      state.journal.reset();
      state.orchestrator = nullptr;
      return mark.status();
    }
    state.last_sequence = std::max(state.last_sequence, *mark);
  }
  return OkStatus();
}

Status OrchestratorService::Unbind(const std::string& function) {
  std::unique_lock<std::shared_mutex> lock(endpoints_mutex_);
  auto it = endpoints_.find(function);
  if (it == endpoints_.end()) {
    return NotFoundError("function '" + function + "' is not bound");
  }
  const Status flushed = FlushEndpoint(it->second);
  endpoints_.erase(it);
  return flushed;
}

std::vector<uint8_t> OrchestratorService::Call(
    const std::vector<uint8_t>& request_bytes) {
  auto decoded = DecodeServiceRequest(request_bytes);
  if (!decoded.ok()) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    return EncodeServiceResponse(ErrorResponse(decoded.status()));
  }
  Envelope envelope;
  envelope.request = *std::move(decoded);
  PendingReply reply;
  envelope.reply = &reply;

  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeServiceResponse(
          ErrorResponse(FailedPreconditionError("service is shut down")));
    }
    const uint32_t shard = ShardOf(StableNameHash(envelope.request.function));
    size_t depth = 0;
    // Backpressure policy: a start decision is latency-sensitive and carries
    // no knowledge, so past the shed deadline the service refuses it with an
    // explicit kShed instead of blocking the caller on a saturated shard.
    // Observations and checkpoint plans always block — shedding them would
    // lose knowledge the books must account for.
    const bool sheddable = config_.shed_deadline_ms > 0 &&
                           envelope.request.type == WireType::kStartDecision;
    if (sheddable) {
      const PushOutcome outcome = queues_[shard]->PushWithDeadline(
          std::move(envelope), std::chrono::milliseconds(config_.shed_deadline_ms),
          &depth);
      if (outcome == PushOutcome::kClosed) {
        stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
        return EncodeServiceResponse(
            ErrorResponse(FailedPreconditionError("service queue is closed")));
      }
      if (outcome == PushOutcome::kShed) {
        stats_.sheds.fetch_add(1, std::memory_order_relaxed);
        if (config_.obs != nullptr) {
          config_.obs->Counter("service.sheds", 1);
        }
        ServiceResponse shed;
        shed.type = WireType::kShed;
        shed.code = StatusCode::kResourceExhausted;
        shed.queue_depth = depth;
        shed.message = "start decision shed: shard " + std::to_string(shard) +
                       " still full after " +
                       std::to_string(config_.shed_deadline_ms) + "ms";
        return EncodeServiceResponse(shed);
      }
    } else if (!queues_[shard]->Push(std::move(envelope), &depth)) {
      stats_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeServiceResponse(
          ErrorResponse(FailedPreconditionError("service queue is closed")));
    }
    if (config_.obs != nullptr) {
      config_.obs->Gauge("service.queue_depth", static_cast<double>(depth));
    }
  }

  std::unique_lock<std::mutex> lock(reply.mutex);
  reply.ready_cv.wait(lock, [&] { return reply.ready; });
  return std::move(reply.bytes);
}

void OrchestratorService::DrainLocked() {
  // Threads are alive (shared lifecycle lock held by the caller): one token
  // per shard, processed after everything enqueued before it; each token
  // flushes its shard's deferred batches before acking.
  DrainGate gate;
  gate.remaining = static_cast<uint32_t>(queues_.size());
  for (const auto& queue : queues_) {
    Envelope token;
    token.gate = &gate;
    if (!queue->Push(std::move(token))) {
      std::unique_lock<std::mutex> lock(gate.mutex);
      gate.remaining -= 1;
    }
  }
  std::unique_lock<std::mutex> lock(gate.mutex);
  gate.cv.wait(lock, [&] { return gate.remaining == 0; });
}

Status OrchestratorService::Drain() {
  std::unique_lock<std::mutex> control(control_mutex_);
  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return OkStatus();  // Stopped service: shutdown already drained.
    }
    DrainLocked();
  }
  stats_.drains.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.drains", 1);
  }
  return OkStatus();
}

Status OrchestratorService::Reconfigure(uint32_t shards, uint32_t max_batch,
                                        Duration flush_interval) {
  if (shards == 0 || max_batch == 0) {
    return InvalidArgumentError("shards and max_batch must be positive");
  }
  if (flush_interval < Duration::Zero()) {
    return InvalidArgumentError("flush_interval must be non-negative");
  }
  std::unique_lock<std::mutex> control(control_mutex_);
  {
    std::shared_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load(std::memory_order_acquire)) {
      return FailedPreconditionError("service is shut down");
    }
    // Drain first while threads still run, so in-flight pushers finish and
    // release their shared lifecycle lock before we take it exclusively.
    DrainLocked();
  }
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  Stop();
  config_.shards = shards;
  config_.max_batch = max_batch;
  config_.flush_interval = flush_interval;
  Start();
  stats_.reconfigures.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.reconfigures", 1);
  }
  return OkStatus();
}

void OrchestratorService::Shutdown() {
  std::unique_lock<std::mutex> control(control_mutex_);
  std::unique_lock<std::shared_mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  // Close() lets shard threads drain everything already accepted (each
  // envelope still gets its reply) and then flush leftover batches on exit.
  Stop();
}

void OrchestratorService::ShardLoop(uint32_t shard) {
  MpmcQueue<Envelope>& queue = *queues_[shard];
  const bool chaos = config_.faults.Active();
  Envelope envelope;
  while (queue.Pop(envelope)) {
    // One shared-lock scope per burst: Bind/Unbind wait for burst boundaries,
    // and the endpoint vector cannot move underneath the handlers.
    std::shared_lock<std::shared_mutex> endpoints_lock(endpoints_mutex_);
    uint32_t burst = 0;
    while (true) {
      std::optional<ServiceCrashStage> crash;
      if (chaos && envelope.gate == nullptr) {
        // Gate tokens are control flow, not ops: crashing on one would
        // deadlock the Drain it belongs to.
        const uint64_t op = ++shard_ops_[shard];
        MaybeStall(shard, op);
        crash = TakeCrash(shard, op);
      }
      if (crash == ServiceCrashStage::kEnqueue) {
        // Die before touching any state: park the unprocessed envelope for
        // the supervisor, which re-queues it at the front after recovery.
        // The caller just sees a slow reply.
        parked_[shard].emplace(std::move(envelope));
        CrashShard(shard, *crash);
        return;  // No trailing FlushShard: a crash takes no farewell commit.
      }
      t_suppress_truncate = crash == ServiceCrashStage::kPreTruncate;
      ProcessEnvelope(shard, envelope);
      t_suppress_truncate = false;
      if (crash.has_value()) {
        if (*crash == ServiceCrashStage::kMidBatch) {
          // The reply is out but the batch is not: the crash takes the
          // in-memory buffers with it. Only the journal can restore them.
          DropShardBuffers(shard);
        }
        CrashShard(shard, *crash);
        return;
      }
      burst += 1;
      if (burst >= config_.max_burst || !queue.TryPop(envelope)) {
        break;
      }
    }
    FlushAged(shard);
  }
  // Queue closed and drained: commit whatever is still deferred.
  std::shared_lock<std::shared_mutex> endpoints_lock(endpoints_mutex_);
  FlushShard(shard);
}

std::optional<ServiceCrashStage> OrchestratorService::TakeCrash(uint32_t shard,
                                                                uint64_t op) {
  const auto& crashes = config_.faults.crashes;
  for (size_t i = 0; i < crashes.size(); ++i) {
    if (crash_fired_[i] == 0 && crashes[i].shard == shard && crashes[i].at_op == op) {
      crash_fired_[i] = 1;
      return crashes[i].stage;
    }
  }
  return std::nullopt;
}

void OrchestratorService::MaybeStall(uint32_t shard, uint64_t op) {
  const auto& stalls = config_.faults.stalls;
  for (size_t i = 0; i < stalls.size(); ++i) {
    if (stall_fired_[i] == 0 && stalls[i].shard == shard && stalls[i].at_op == op) {
      stall_fired_[i] = 1;
      stats_.stalls_injected.fetch_add(1, std::memory_order_relaxed);
      if (config_.obs != nullptr) {
        config_.obs->Counter("service.stalls_injected", 1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(stalls[i].wall_millis));
    }
  }
}

void OrchestratorService::CrashShard(uint32_t shard, ServiceCrashStage stage) {
  stats_.crashes_injected.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.crashes_injected", 1);
  }
  PRONGHORN_LOG_WARNING("injected crash: shard %u dies at op %llu (stage %d)",
                        shard, static_cast<unsigned long long>(shard_ops_[shard]),
                        static_cast<int>(stage));
  {
    std::unique_lock<std::mutex> lock(supervisor_mutex_);
    dead_shards_.push_back(shard);
  }
  supervisor_cv_.notify_all();
}

void OrchestratorService::DropShardBuffers(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    for (SlotState& slot : endpoint.slots) {
      if (slot.orchestrator != nullptr) {
        slot.orchestrator->DropPendingObservations();
      }
    }
  }
}

void OrchestratorService::SupervisorLoop() {
  while (true) {
    uint32_t shard = 0;
    {
      std::unique_lock<std::mutex> lock(supervisor_mutex_);
      supervisor_cv_.wait(lock,
                          [&] { return supervisor_stop_ || !dead_shards_.empty(); });
      if (dead_shards_.empty()) {
        return;  // Stop requested and every pending recovery is done.
      }
      shard = dead_shards_.front();
      dead_shards_.pop_front();
    }
    RecoverShard(shard);
  }
}

void OrchestratorService::RecoverShard(uint32_t shard) {
  if (shard >= shard_threads_.size()) {
    return;  // Topology changed underneath a stale death notice.
  }
  // Joining the corpse is the happens-before edge: everything the dead
  // thread wrote (op counters, dropped buffers, the parked envelope) is
  // visible from here on.
  if (shard_threads_[shard].joinable()) {
    shard_threads_[shard].join();
  }
  {
    // Shared is enough: only this shard's thread — dead — and control
    // operations touch this shard's endpoints, and Bind/Unbind (exclusive)
    // are correctly excluded.
    std::shared_lock<std::shared_mutex> endpoints_lock(endpoints_mutex_);
    ReplayShardJournals(shard);
  }
  if (parked_[shard].has_value()) {
    Envelope parked = std::move(*parked_[shard]);
    parked_[shard].reset();
    PendingReply* reply = parked.reply;
    // Front of the queue: the parked envelope was accepted before everything
    // now waiting behind it, and replaying in arrival order is what keeps
    // the simulation trajectory — and the report digest — intact.
    if (!queues_[shard]->PushFront(std::move(parked))) {
      // Only possible when the queue closed mid-recovery: answer the caller
      // rather than strand it (the push consumed the envelope body).
      Envelope failed;
      failed.reply = reply;
      Reply(failed,
            ErrorResponse(UnavailableError("service closed during crash recovery")));
    }
  }
  shard_threads_[shard] = std::thread(&OrchestratorService::ShardLoop, this, shard);
  stats_.shards_recovered.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.shards_recovered", 1);
  }
  PRONGHORN_LOG_INFO("shard %u recovered and restarted", shard);
}

void OrchestratorService::ReplayShardJournals(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    for (SlotState& slot : endpoint.slots) {
      if (slot.orchestrator != nullptr && slot.journal != nullptr) {
        RecoverSlotJournal(name, slot);
      }
    }
  }
}

void OrchestratorService::RecoverSlotJournal(const std::string& function,
                                             SlotState& slot) {
  const auto log = slot.journal->Recover();
  if (!log.ok()) {
    stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
    PRONGHORN_LOG_WARNING("journal recovery failed for '%s': %s", function.c_str(),
                          log.status().ToString().c_str());
    return;
  }
  if (log->torn_tail_bytes > 0) {
    stats_.journal_torn_tails.fetch_add(1, std::memory_order_relaxed);
    if (config_.obs != nullptr) {
      config_.obs->Counter("service.journal_torn_tails", 1);
    }
    PRONGHORN_LOG_WARNING("journal for '%s' dropped a torn tail of %llu bytes",
                          function.c_str(),
                          static_cast<unsigned long long>(log->torn_tail_bytes));
  }
  if (log->records.empty() && log->torn_tail_bytes == 0 && slot.deferred == 0) {
    return;  // Clean, empty journal (the common fresh-Bind case): nothing owed.
  }
  std::vector<Orchestrator::JournaledObservation> records;
  records.reserve(log->records.size());
  for (const ObservationJournal::Record& record : log->records) {
    records.push_back({record.sequence, record.request_number, record.latency});
    slot.last_sequence = std::max(slot.last_sequence, record.sequence);
  }
  const uint64_t deduped_before = slot.orchestrator->observations_deduped();
  const Status replayed = slot.orchestrator->ReplayJournaled(records);
  const uint64_t deduped =
      slot.orchestrator->observations_deduped() - deduped_before;
  stats_.journal_deduped.fetch_add(deduped, std::memory_order_relaxed);
  stats_.journal_replayed.fetch_add(records.size() - deduped,
                                    std::memory_order_relaxed);
  if (config_.obs != nullptr && !records.empty()) {
    config_.obs->Counter("service.journal_replayed", records.size() - deduped);
    config_.obs->Counter("service.journal_deduped", deduped);
  }
  if (!replayed.ok()) {
    stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
    PRONGHORN_LOG_WARNING("journal replay failed for '%s': %s", function.c_str(),
                          replayed.ToString().c_str());
    slot.deferred = slot.orchestrator->pending_observation_count();
    return;
  }
  if (slot.orchestrator->pending_observation_count() == 0) {
    // Everything this slot owed — replayed records plus any surviving
    // in-memory batch — is in the Database. slot.deferred is the count of
    // acked-but-uncommitted observations, i.e. exactly what just landed.
    if (slot.deferred > 0) {
      stats_.observations_committed.fetch_add(slot.deferred,
                                              std::memory_order_relaxed);
      stats_.batches_committed.fetch_add(1, std::memory_order_relaxed);
      NoteMax(stats_.max_batch_committed, slot.deferred);
    }
    slot.deferred = 0;
    slot.oldest_deferred = TimePoint();
    const Status truncated = slot.journal->Truncate();
    if (truncated.ok()) {
      stats_.journal_truncations.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
      PRONGHORN_LOG_WARNING("journal truncate failed for '%s': %s",
                            function.c_str(), truncated.ToString().c_str());
    }
  } else {
    // A Database outage absorbed the commit: the records stay buffered (and
    // journaled) and ride the next flush trigger.
    slot.deferred = slot.orchestrator->pending_observation_count();
  }
}

void OrchestratorService::ProcessEnvelope(uint32_t shard, Envelope& envelope) {
  if (envelope.gate != nullptr) {
    FlushShard(shard);
    std::unique_lock<std::mutex> lock(envelope.gate->mutex);
    envelope.gate->remaining -= 1;
    if (envelope.gate->remaining == 0) {
      envelope.gate->cv.notify_all();
    }
    return;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.requests", 1);
  }
  const ServiceResponse response = HandleRequest(envelope.request);
  Reply(envelope, response);
}

ServiceResponse OrchestratorService::HandleRequest(const ServiceRequest& request) {
  auto it = endpoints_.find(request.function);
  if (it == endpoints_.end()) {
    return ErrorResponse(
        NotFoundError("function '" + request.function + "' is not bound"));
  }
  Endpoint& endpoint = it->second;
  if (request.slot >= endpoint.slots.size() ||
      endpoint.slots[request.slot].orchestrator == nullptr) {
    return ErrorResponse(NotFoundError("slot " + std::to_string(request.slot) +
                                       " of '" + request.function +
                                       "' is not bound"));
  }
  SlotState& slot = endpoint.slots[request.slot];
  switch (request.type) {
    case WireType::kStartDecision:
      return HandleStartDecision(endpoint, slot);
    case WireType::kObservation:
      return HandleObservation(endpoint, slot, request);
    case WireType::kCheckpointPlan:
      return HandlePlan(slot, request);
    default:
      return ErrorResponse(InvalidArgumentError("response type in a request frame"));
  }
}

ServiceResponse OrchestratorService::HandleStartDecision(Endpoint& endpoint,
                                                         SlotState& slot) {
  stats_.start_decisions.fetch_add(1, std::memory_order_relaxed);
  // Barrier: the new lifetime's Database read must see every deferred
  // observation of this function. No-op in synchronous mode (nothing is ever
  // deferred), so the in-process Update sequence is preserved exactly.
  const Status flushed = FlushEndpoint(endpoint);
  if (!flushed.ok()) {
    return ErrorResponse(flushed);
  }
  if (slot.session.has_value()) {
    return ErrorResponse(
        FailedPreconditionError("slot already has a live worker session"));
  }
  auto started = slot.orchestrator->StartWorker();
  if (!started.ok()) {
    return ErrorResponse(started.status());
  }
  slot.session.emplace(*std::move(started));
  ServiceResponse response;
  response.type = WireType::kStartAck;
  response.view = MakeSessionView(*slot.session);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.start_decisions", 1);
    // Decision latency in simulated time: the Database read + policy
    // decision cost this start charged to orchestrator overhead.
    config_.obs->Observe("service.decision_latency_us", response.view.startup_overhead);
  }
  return response;
}

ServiceResponse OrchestratorService::HandleObservation(Endpoint& endpoint,
                                                       SlotState& slot,
                                                       const ServiceRequest& request) {
  stats_.observations.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.observations", 1);
  }
  if (!slot.session.has_value()) {
    return ErrorResponse(FailedPreconditionError("slot has no live worker session"));
  }
  ServiceResponse response;
  response.type = WireType::kObservationAck;
  if (!request.defer_commit) {
    // Synchronous mode: commit before replying — the exact in-process
    // ServeRequest sequence. This also group-commits any deferred backlog
    // the slot accumulated earlier (the orchestrator buffer holds it).
    auto outcome = slot.orchestrator->ServeRequest(*slot.session, request.request);
    if (!outcome.ok()) {
      return ErrorResponse(outcome.status());
    }
    if (slot.deferred > 0 && slot.orchestrator->pending_observation_count() == 0) {
      stats_.observations_committed.fetch_add(slot.deferred,
                                              std::memory_order_relaxed);
    }
    slot.deferred = slot.orchestrator->pending_observation_count();
    stats_.observations_committed.fetch_add(slot.deferred == 0 ? 1 : 0,
                                            std::memory_order_relaxed);
    response.outcome = *outcome;
    response.committed = slot.deferred == 0;
    return response;
  }

  // Pipelined mode: execute and acknowledge now; the knowledge write rides a
  // later group commit. With journaling on, the observation is sequenced and
  // made durable *before* the ack leaves, so the ack is a promise a shard
  // crash cannot break.
  uint64_t sequence = 0;
  if (slot.journal != nullptr) {
    sequence = slot.last_sequence + 1;
  }
  response.outcome =
      slot.orchestrator->ExecuteBuffered(*slot.session, request.request, sequence);
  if (slot.journal != nullptr) {
    slot.last_sequence = sequence;
    const Status appended = slot.journal->Append(
        {sequence, response.outcome.request_number, response.outcome.latency});
    if (appended.ok()) {
      stats_.journal_appends.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The observation is still buffered in memory; only its crash
      // durability is degraded. Count it loudly instead of failing the
      // request.
      stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
      PRONGHORN_LOG_WARNING("journal append failed for '%s': %s",
                            request.function.c_str(),
                            appended.ToString().c_str());
    }
  }
  if (slot.deferred == 0) {
    slot.oldest_deferred = endpoint.clock->now();
  }
  slot.deferred = slot.orchestrator->pending_observation_count();
  stats_.observations_deferred.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.observations_deferred", 1);
  }
  const bool plan_due =
      slot.session->checkpoint_at.has_value() &&
      slot.session->process.requests_executed() >= *slot.session->checkpoint_at;
  if (slot.deferred >= config_.max_batch || plan_due) {
    const Status flushed = FlushSlot(slot);
    if (!flushed.ok()) {
      return ErrorResponse(flushed);
    }
    if (plan_due) {
      const Status checkpointed =
          slot.orchestrator->MaybeCheckpoint(*slot.session, response.outcome);
      if (!checkpointed.ok()) {
        return ErrorResponse(checkpointed);
      }
    }
  }
  response.committed = slot.deferred == 0;
  return response;
}

ServiceResponse OrchestratorService::HandlePlan(SlotState& slot,
                                                const ServiceRequest& request) {
  stats_.plan_requests.fetch_add(1, std::memory_order_relaxed);
  if (config_.obs != nullptr) {
    config_.obs->Counter("service.plan_requests", 1);
  }
  ServiceResponse response;
  response.type = WireType::kPlanAck;
  if (!slot.session.has_value()) {
    return response;  // Idempotent: retiring an empty slot reports live=false.
  }
  // A retiring worker's deferred knowledge must not die with it.
  const Status flushed = FlushSlot(slot);
  if (!flushed.ok()) {
    return ErrorResponse(flushed);
  }
  response.plan.live = true;
  response.plan.has_plan = slot.session->checkpoint_at.has_value();
  if (response.plan.has_plan) {
    response.plan.checkpoint_at = *slot.session->checkpoint_at;
  }
  response.plan.requests_executed = slot.session->process.requests_executed();
  response.plan.memory_mb = slot.session->process.MemoryFootprintMb();
  if (request.retire) {
    slot.session.reset();
    response.plan.retired = true;
  }
  return response;
}

Status OrchestratorService::FlushSlot(SlotState& slot) {
  if (slot.deferred == 0) {
    return OkStatus();
  }
  const uint64_t batch = slot.orchestrator->pending_observation_count();
  RequestOutcome scratch;
  PRONGHORN_RETURN_IF_ERROR(slot.orchestrator->CommitObservations(scratch));
  const uint64_t remaining = slot.orchestrator->pending_observation_count();
  if (remaining == 0) {
    stats_.batches_committed.fetch_add(1, std::memory_order_relaxed);
    stats_.observations_committed.fetch_add(batch, std::memory_order_relaxed);
    NoteMax(stats_.max_batch_committed, batch);
    if (config_.obs != nullptr) {
      config_.obs->Counter("service.batches_committed", 1);
    }
    slot.oldest_deferred = TimePoint();
    // The commit covered the journal's entire content (the flush always
    // commits the whole pending buffer), so the journal can drop it — unless
    // an injected kPreTruncate crash is about to prove that a truncate which
    // never happens is merely redundant, not harmful.
    if (slot.journal != nullptr && !t_suppress_truncate) {
      const Status truncated = slot.journal->Truncate();
      if (truncated.ok()) {
        stats_.journal_truncations.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Stale records will be deduped by the high-water mark if ever
        // replayed; durability is unaffected.
        stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
        PRONGHORN_LOG_WARNING("journal truncate failed: %s",
                              truncated.ToString().c_str());
      }
    }
  }
  // A commit that hit an outage keeps the batch buffered (kUnavailable was
  // absorbed); it rides the next flush trigger.
  slot.deferred = remaining;
  return OkStatus();
}

Status OrchestratorService::FlushEndpoint(Endpoint& endpoint) {
  Status first = OkStatus();
  for (SlotState& slot : endpoint.slots) {
    if (slot.orchestrator == nullptr) {
      continue;
    }
    const Status status = FlushSlot(slot);
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  return first;
}

void OrchestratorService::FlushShard(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    const Status status = FlushEndpoint(endpoint);
    if (!status.ok()) {
      stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
      PRONGHORN_LOG_WARNING("group-commit flush failed for '%s': %s", name.c_str(),
                            status.ToString().c_str());
    }
  }
}

void OrchestratorService::FlushAged(uint32_t shard) {
  for (auto& [name, endpoint] : endpoints_) {
    if (ShardOf(endpoint.name_hash) != shard) {
      continue;
    }
    for (SlotState& slot : endpoint.slots) {
      if (slot.deferred == 0 ||
          endpoint.clock->now() - slot.oldest_deferred < config_.flush_interval) {
        continue;
      }
      const Status status = FlushSlot(slot);
      if (!status.ok()) {
        stats_.flush_errors.fetch_add(1, std::memory_order_relaxed);
        PRONGHORN_LOG_WARNING("aged flush failed for '%s': %s", name.c_str(),
                              status.ToString().c_str());
      }
    }
  }
}

void OrchestratorService::Reply(Envelope& envelope, const ServiceResponse& response) {
  if (envelope.reply == nullptr) {
    return;
  }
  std::vector<uint8_t> bytes = EncodeServiceResponse(response);
  // Notify while holding the mutex: the instant `ready` is observable the
  // waiter may return from Call() and destroy the stack-allocated mailbox, so
  // the condition variable must not be touched after the unlock.
  std::unique_lock<std::mutex> lock(envelope.reply->mutex);
  envelope.reply->bytes = std::move(bytes);
  envelope.reply->ready = true;
  envelope.reply->ready_cv.notify_one();
}

// --- ServiceClient -----------------------------------------------------------

ServiceClient::ServiceClient(OrchestratorService* service, std::string function,
                             uint32_t slot, bool defer_commit)
    : service_(service),
      function_(std::move(function)),
      slot_(slot),
      defer_commit_(defer_commit) {}

Result<ServiceResponse> ServiceClient::Roundtrip(const ServiceRequest& request,
                                                 WireType expected) {
  const std::vector<uint8_t> reply = service_->Call(EncodeServiceRequest(request));
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response, DecodeServiceResponse(reply));
  if (response.type == WireType::kError || response.type == WireType::kShed) {
    return Status(response.code, response.message);
  }
  if (response.type != expected) {
    return InternalError("unexpected service response type");
  }
  return response;
}

Result<SessionView> ServiceClient::StartWorker() {
  ServiceRequest request;
  request.type = WireType::kStartDecision;
  request.function = function_;
  request.slot = slot_;
  auto response = Roundtrip(request, WireType::kStartAck);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kResourceExhausted &&
        fallback_profile_ != nullptr) {
      // The service shed the start decision (control plane saturated past
      // the deadline). Degrade to a local, unorchestrated cold session: no
      // restore, no checkpoint plan, no knowledge writes — the explicit
      // trade the shed response exists to make possible.
      shed_process_.emplace(RuntimeProcess::ColdStart(
          *fallback_profile_, HashCombine(fallback_seed_, sheds_degraded_)));
      sheds_degraded_ += 1;
      SessionView view;
      view.degraded = true;
      view.startup_latency = fallback_profile_->cold_init;
      return view;
    }
    return response.status();
  }
  return (*response).view;
}

Result<RequestOutcome> ServiceClient::ServeRequest(const FunctionRequest& request) {
  if (shed_process_.has_value()) {
    // Degraded session: execute locally, off the orchestrator's books.
    RequestOutcome outcome;
    const ExecutionResult execution = shed_process_->Execute(request);
    outcome.latency = execution.latency;
    outcome.request_number = shed_process_->requests_executed();
    return outcome;
  }
  ServiceRequest wire_request;
  wire_request.type = WireType::kObservation;
  wire_request.function = function_;
  wire_request.slot = slot_;
  wire_request.request = request;
  wire_request.defer_commit = defer_commit_;
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response,
                             Roundtrip(wire_request, WireType::kObservationAck));
  return response.outcome;
}

Result<WirePlan> ServiceClient::QueryPlan() {
  ServiceRequest request;
  request.type = WireType::kCheckpointPlan;
  request.function = function_;
  request.slot = slot_;
  request.retire = false;
  PRONGHORN_ASSIGN_OR_RETURN(ServiceResponse response,
                             Roundtrip(request, WireType::kPlanAck));
  return response.plan;
}

SessionEnd ServiceClient::EndSession() {
  if (shed_process_.has_value()) {
    SessionEnd end;
    end.memory_mb = shed_process_->MemoryFootprintMb();
    end.requests_executed = shed_process_->requests_executed();
    end.retired = true;
    shed_process_.reset();
    return end;
  }
  ServiceRequest request;
  request.type = WireType::kCheckpointPlan;
  request.function = function_;
  request.slot = slot_;
  request.retire = true;
  auto response = Roundtrip(request, WireType::kPlanAck);
  SessionEnd end;
  if (!response.ok()) {
    // Eviction cannot be refused; a transport-level failure here means the
    // session is gone anyway. Zeroed accounting, loudly.
    PRONGHORN_LOG_WARNING("service retire failed for '%s' slot %u: %s",
                          function_.c_str(), slot_,
                          response.status().ToString().c_str());
    return end;
  }
  end.memory_mb = response->plan.memory_mb;
  end.requests_executed = response->plan.requests_executed;
  end.retired = response->plan.retired;
  return end;
}

}  // namespace pronghorn
