// Write-ahead observation journal for the orchestrator service.
//
// In deferred (group-commit) mode a shard buffers knowledge writes in memory
// until the batch flushes, so a shard crash would silently lose every
// observation since the last flush — exactly the lost-update corruption the
// off-policy learning literature warns about. The journal closes that window:
// each deferred observation is appended here, durably, before its reply is
// sent, and the file is truncated only after the group commit that covers it
// lands in the Database. Crash recovery replays the journal through the
// orchestrator's sequence-checked commit path, which dedups against the
// policy-state blob's per-slot high-water mark, giving exactly-once delivery.
//
// On-disk format — one file per bound (function, slot), named
// `<function>.<slot>.journal` under the configured directory. Each record is
// a length-prefixed wire frame (src/service/wire.h):
//
//   u32  payload length (bytes of the frame that follows)
//   ...  frame: magic "Phrn" | version | kJournalRecord | body | CRC32
//
// with a body of varint sequence, varint request_number, i64 latency_us.
// Records are self-delimiting, so recovery parses the file front to back and
// stops at the first torn or corrupt record: a crash mid-append leaves a
// partial tail that fails the length or CRC check and is dropped, never
// misparsed (torn-tail bytes are reported, not silently ignored).

#ifndef PRONGHORN_SRC_SERVICE_JOURNAL_H_
#define PRONGHORN_SRC_SERVICE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"

namespace pronghorn {

class ObservationJournal {
 public:
  struct Record {
    uint64_t sequence = 0;  // Per-slot monotonic journal sequence, 1-based.
    uint64_t request_number = 0;
    Duration latency;

    bool operator==(const Record&) const = default;
  };

  // What Recover() found: every intact record plus the size of the torn or
  // corrupt tail that was dropped (0 for a cleanly closed journal).
  struct RecoveredLog {
    std::vector<Record> records;
    uint64_t torn_tail_bytes = 0;
  };

  // Opens (creating if missing) the journal for one bound (function, slot).
  // Existing content is preserved — recovery reads it before the slot
  // resumes. The directory must already exist.
  static Result<std::unique_ptr<ObservationJournal>> Open(
      const std::string& dir, const std::string& function, uint32_t slot);

  ~ObservationJournal();

  ObservationJournal(const ObservationJournal&) = delete;
  ObservationJournal& operator=(const ObservationJournal&) = delete;

  // Appends one record and flushes it to the operating system before
  // returning, so a crashed shard thread cannot take buffered records with
  // it. Called before the observation's reply is sent.
  Status Append(const Record& record);

  // Drops every record: the group commit covering the journal's whole
  // content has landed in the Database (the flush path always commits the
  // slot's entire pending buffer, so truncate-to-zero never strands an
  // uncommitted record).
  Status Truncate();

  // Parses the file front to back, returning every intact record in append
  // order and dropping (but counting) a torn or corrupt tail.
  Result<RecoveredLog> Recover() const;

  // Highest sequence currently recorded (0 when empty / unreadable): the
  // floor for the slot's next sequence assignment after a restart.
  uint64_t MaxRecordedSequence() const;

  const std::string& path() const { return path_; }

  // `<dir>/<function>.<slot>.journal`, with '/' in the function name mapped
  // to '_' so the name cannot escape the journal directory.
  static std::string FilePath(const std::string& dir, const std::string& function,
                              uint32_t slot);

 private:
  ObservationJournal(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_ = nullptr;  // Open in append mode for the journal's life.
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_SERVICE_JOURNAL_H_
