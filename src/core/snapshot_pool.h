// Fixed-capacity snapshot pool with the paper's top-p% + random-gamma%
// retention policy (Algorithm 1, part 4).

#ifndef PRONGHORN_SRC_CORE_SNAPSHOT_POOL_H_
#define PRONGHORN_SRC_CORE_SNAPSHOT_POOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/checkpoint/snapshot.h"
#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace pronghorn {

// Pool-resident record of one snapshot: the metadata the policy reasons
// about plus the object-store key holding the image.
struct PoolEntry {
  SnapshotMetadata metadata;
  std::string object_key;

  bool operator==(const PoolEntry&) const = default;
};

class SnapshotPool {
 public:
  SnapshotPool() = default;

  // Adds an entry; rejects duplicate snapshot ids.
  Status Add(PoolEntry entry);

  Result<const PoolEntry*> Find(SnapshotId id) const;
  bool Contains(SnapshotId id) const;

  // Removes the entry with `id` if present; returns whether one was removed
  // (quarantine/GC path — unlike Prune, this may empty the pool).
  bool Remove(SnapshotId id);

  std::span<const PoolEntry> entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Retention pass (OnCapacityReached): keeps the ceil(p% * size) entries
  // with the highest `weights` plus gamma% chosen uniformly at random from
  // the remainder, removes the rest, and returns the removed entries so the
  // caller can delete their images from the object store. `weights` must be
  // parallel to entries(). Always retains at least one entry.
  std::vector<PoolEntry> Prune(std::span<const double> weights, double top_percent,
                               double random_percent, Rng& rng);

  void Serialize(ByteWriter& writer) const;
  static Result<SnapshotPool> Deserialize(ByteReader& reader);

  bool operator==(const SnapshotPool& other) const = default;

 private:
  std::vector<PoolEntry> entries_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_SNAPSHOT_POOL_H_
