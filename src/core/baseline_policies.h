// The two comparison policies of the paper's evaluation (§5.1):
//
//  * Cold-start: no checkpoint/restore at all; every worker boots cold.
//  * Checkpoint-after-1st: the state of the art (Catalyzer, Fireworks,
//    Prebaking, Groundhog, Lambda SnapStart) — snapshot once, right after
//    the first request completes, and restore every subsequent worker from
//    that single snapshot.

#ifndef PRONGHORN_SRC_CORE_BASELINE_POLICIES_H_
#define PRONGHORN_SRC_CORE_BASELINE_POLICIES_H_

#include "src/core/policy.h"

namespace pronghorn {

class ColdStartPolicy : public OrchestrationPolicy {
 public:
  explicit ColdStartPolicy(const PolicyConfig& config = PolicyConfig{})
      : config_(config) {}

  std::string_view name() const override { return "cold-start"; }
  const PolicyConfig& config() const override { return config_; }
  StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const override;
  void OnRequestComplete(PolicyState& state, uint64_t request_number,
                         Duration latency) const override;
  std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state, Rng& rng) const override;

 private:
  PolicyConfig config_;
};

class CheckpointAfterFirstPolicy : public OrchestrationPolicy {
 public:
  explicit CheckpointAfterFirstPolicy(const PolicyConfig& config) : config_(config) {}

  std::string_view name() const override { return "checkpoint-after-1st"; }
  const PolicyConfig& config() const override { return config_; }
  StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const override;
  void OnRequestComplete(PolicyState& state, uint64_t request_number,
                         Duration latency) const override;
  std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state, Rng& rng) const override;

 private:
  PolicyConfig config_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_BASELINE_POLICIES_H_
