// Per-worker Orchestrator (paper Figure 2, workflow §3.2).
//
// The Orchestrator mediates between the serverless platform and the policy:
// on worker launch it consults the Database-backed policy state, restores
// from the chosen snapshot (or cold-starts), and fixes the lifetime's
// checkpoint plan; on every request it records latency knowledge; when the
// plan fires it checkpoints the process, uploads the image to the Object
// Store, and records metadata in the Database, evicting pool overflow.
//
// Failure recovery (the control plane is distributed, so every hop can
// fail): transient object-store reads retry with exponential backoff in
// simulated time; a failed restore falls back to the policy's next-best
// candidate before cold-starting; snapshots that repeatedly fail to
// decode/restore are quarantined (evicted + blob deleted); when the
// Database is down at launch the worker degrades to a local cold start and
// buffers latency observations for replay once the Database recovers.

#ifndef PRONGHORN_SRC_CORE_ORCHESTRATOR_H_
#define PRONGHORN_SRC_CORE_ORCHESTRATOR_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>

#include "src/checkpoint/engine.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/policy.h"
#include "src/core/policy_state_store.h"
#include "src/obs/sink.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {

// Cost model for the orchestrator's own bookkeeping (Figure 7 accounting).
// These costs are tracked off the critical path of request processing, as in
// the paper ("they all occur off the critical path ... not directly observed
// by the user").
struct OrchestratorCostModel {
  // One Database round trip.
  Duration db_read_latency = Duration::Millis(3);
  Duration db_write_latency = Duration::Millis(4);
  // Fixed policy-decision CPU cost at worker startup...
  Duration decision_base_cost = Duration::Millis(8);
  // ...plus a per-pool-entry term (weight computation + softmax at startup,
  // pool re-scoring at checkpoint). Calibrated so a full C=12 pool lands in
  // the paper's Figure 7 envelope (startup < 2.5x baseline, checkpoint < 2x).
  Duration decision_per_snapshot_cost = Duration::Millis(1);
  // Object store transfer bandwidth for snapshot images.
  double object_store_mb_per_sec = 1000.0;
};

// Bounds of the orchestrator's failure-recovery machinery.
struct RecoveryOptions {
  // Transient (kUnavailable) object-store ops are retried this many times
  // per attempt, with exponential backoff in simulated time.
  int max_transient_retries = 3;
  Duration backoff_base = Duration::Millis(5);
  double backoff_multiplier = 2.0;
  Duration backoff_cap = Duration::Millis(200);
  // How many ranked pool candidates StartWorker tries before cold-starting.
  size_t max_restore_candidates = 3;
  // A snapshot whose image fails to decode/restore this many times is
  // quarantined: evicted from the pool, its failure ledger cleared, and its
  // blob deleted from the object store.
  uint32_t quarantine_threshold = 3;
  // Latency observations held locally while the Database is unavailable;
  // the oldest is dropped when the buffer is full.
  size_t max_buffered_observations = 1024;
};

// Counters for everything the recovery machinery did (report material).
struct RecoveryStats {
  uint64_t restore_transient_retries = 0;  // Backed-off object-store retries.
  uint64_t restore_attempt_failures = 0;   // Candidate attempts that failed.
  uint64_t restore_fallbacks = 0;          // Restores that used a non-first candidate.
  uint64_t snapshots_quarantined = 0;
  uint64_t stale_entries_pruned = 0;  // Pool entries whose object had vanished.
  uint64_t degraded_starts = 0;       // Database down at launch -> local cold start.
  uint64_t observations_buffered = 0;
  uint64_t observations_replayed = 0;
  uint64_t observations_dropped = 0;
  uint64_t checkpoints_skipped = 0;          // Checkpoint plans consumed by faults.
  uint64_t eviction_deletes_deferred = 0;    // Delete failed -> orphan until GC.
  uint64_t orphans_collected = 0;
  Duration total_retry_backoff;
};

// A live worker: the restored (or cold-started) process plus this lifetime's
// orchestration plan.
struct WorkerSession {
  WorkerSession(RuntimeProcess p, uint64_t id) : process(std::move(p)), worker_id(id) {}

  RuntimeProcess process;
  uint64_t worker_id = 0;
  // Absolute request number at which to checkpoint; nullopt = never.
  std::optional<uint64_t> checkpoint_at;
  bool restored = false;
  SnapshotId restored_from;  // value 0 when cold.
  // Launched while the Database was unreachable: cold start under the local
  // degraded policy, no checkpoint plan, observations buffered for replay.
  bool degraded = false;
  // Time to make the worker ready: cold init, or image download + restore.
  Duration startup_latency;
  // Orchestrator bookkeeping at startup (DB read + decision).
  Duration startup_overhead;
};

// What happened while serving one request.
struct RequestOutcome {
  // End-to-end execution latency of the function (the quantity the paper's
  // CDFs plot; worker startup is off the critical path, see platform docs).
  Duration latency;
  // Maturity index of the request just served (1 = first request ever).
  uint64_t request_number = 0;
  bool checkpoint_taken = false;
  // Worker downtime caused by the checkpoint (not user-visible).
  Duration checkpoint_downtime;
  // Orchestrator bookkeeping for this request (knowledge write).
  Duration request_overhead;
  // Bookkeeping for the checkpoint, when one was taken (uploads, metadata).
  Duration checkpoint_overhead;
};

// Cumulative per-operation overhead totals (Figure 7 rows).
struct OrchestratorOverheads {
  uint64_t worker_starts = 0;
  uint64_t requests_served = 0;
  uint64_t checkpoints_taken = 0;
  Duration total_startup_overhead;
  Duration total_request_overhead;
  Duration total_checkpoint_overhead;
};

class Orchestrator {
 public:
  // All dependencies are borrowed and must outlive the Orchestrator. `seed`
  // drives policy randomness and process seeds.
  Orchestrator(const WorkloadProfile& profile, const WorkloadRegistry& registry,
               const OrchestrationPolicy& policy, CheckpointEngine& engine,
               SnapshotStore& snapshot_store, PolicyStateStore& state_store,
               SimClock& clock, uint64_t seed,
               OrchestratorCostModel costs = OrchestratorCostModel{},
               RecoveryOptions recovery = RecoveryOptions{});

  // Launches a new worker according to the policy (workflow steps: query
  // Database, select snapshot, restore or cold start, plan checkpoint).
  // Failed restore attempts walk the policy's ranked candidates before
  // falling back to a cold start; a Database outage yields a degraded cold
  // session rather than an error.
  Result<WorkerSession> StartWorker();

  // Serves one request: executes it, updates latency knowledge in the
  // Database (steps 2-4), and checkpoints if this lifetime's plan fires
  // (steps 5-8). Knowledge writes that hit a Database outage are buffered
  // and replayed with a later request; checkpoint plans that hit faults are
  // consumed and counted, not surfaced as errors.
  Result<RequestOutcome> ServeRequest(WorkerSession& session,
                                      const FunctionRequest& request);

  // One observation handed back by the service's write-ahead journal during
  // crash recovery. `sequence` is the slot's monotonic journal sequence
  // (1-based); it keys the exactly-once dedup against the policy-state
  // blob's commit high-water mark.
  struct JournaledObservation {
    uint64_t sequence = 0;
    uint64_t request_number = 0;
    Duration latency;
  };

  // The three phases of ServeRequest, exposed separately so the service front
  // end (src/service) can group-commit knowledge writes: ServeRequest is
  // exactly ExecuteBuffered + CommitObservations + MaybeCheckpoint.
  //
  // Executes the request and appends its latency observation to the local
  // buffer (dropping the oldest past max_buffered_observations) without
  // touching the Database. A nonzero `sequence` tags the observation with the
  // service's journal sequence number, enabling exactly-once dedup at commit;
  // 0 (the default, and the only value sim-mode paths ever pass) means
  // unsequenced — committed unconditionally, bit-identical to the pre-journal
  // behavior.
  RequestOutcome ExecuteBuffered(WorkerSession& session, const FunctionRequest& request,
                                 uint64_t sequence = 0);
  // Commits every buffered observation in one Database write (steps 2-4). A
  // write that hits an outage leaves the buffer intact for a later attempt
  // (kUnavailable is absorbed, not returned); only hard faults surface. No-op
  // when nothing is buffered. Sequenced observations at or below the commit
  // scope's high-water mark are duplicates from a journal replay: they are
  // skipped, and the mark advances in the same CAS as the writes it covers.
  Status CommitObservations(RequestOutcome& outcome);

  // Rebuffers journal records recovered after a crash (oldest first) and
  // commits them through the deduping path above. Safe to call with records
  // that were already committed — the high-water mark filters them. When the
  // Database is unavailable the records stay buffered for a later flush and
  // the call still succeeds, mirroring CommitObservations.
  Status ReplayJournaled(std::span<const JournaledObservation> records);

  // Simulates the memory loss of a shard crash: discards every buffered
  // observation. The write-ahead journal is the only copy afterwards.
  void DropPendingObservations() { pending_observations_.clear(); }

  // The slot index this orchestrator commits under; keys the per-slot commit
  // high-water mark in the policy-state blob. Set once at service bind time.
  void set_commit_scope(uint32_t scope) { commit_scope_ = scope; }

  // Sequenced observations skipped as journal-replay duplicates (cumulative).
  // Service-level accounting only; never serialized into report digests.
  uint64_t observations_deduped() const { return observations_deduped_; }

  // Reads the commit scope's high-water mark from the Database (0 when the
  // scope has never committed a sequenced observation). The floor for
  // sequence assignment after a restart whose journal was already truncated.
  Result<uint64_t> CommittedHighWater() const;
  // Checkpoints when this lifetime's plan has fired (steps 5-8); plans
  // consumed by transient faults are counted, not surfaced.
  Status MaybeCheckpoint(WorkerSession& session, RequestOutcome& outcome);

  // Observations executed but not yet committed (outage-buffered or held for
  // a service-side group commit).
  size_t pending_observation_count() const { return pending_observations_.size(); }

  // Garbage-collects object-store blobs under this deployment's snapshot
  // prefix that no pool entry references (left by torn writes, failed
  // metadata commits, or deferred eviction deletes). Returns how many blobs
  // were deleted.
  Result<uint64_t> CollectOrphanedObjects();

  const OrchestratorOverheads& overheads() const { return overheads_; }
  const RecoveryStats& recovery_stats() const { return recovery_; }
  const WorkloadProfile& profile() const { return profile_; }

  // Borrowed observability sink; null disables all emission. Decision and
  // retry/backoff events land on `track` (the owning slot's lifecycle lane).
  void set_obs(ObsSink* obs, ObsTrack track) {
    obs_ = obs;
    obs_track_ = track;
  }

 private:
  struct PendingObservation {
    uint64_t request_number = 0;
    Duration latency;
    // Journal sequence, 0 when unsequenced (sim mode, degraded-start buffer).
    uint64_t sequence = 0;
  };

  // Takes a snapshot of the session's process, uploads it, and records it in
  // the policy state; returns the worker downtime.
  Result<Duration> TakeCheckpoint(WorkerSession& session, RequestOutcome& outcome);

  // Snapshot-store ops with bounded retry + backoff for transient failures.
  // Fetch opens the snapshot and materializes it through the store's (eager
  // or lazy) reader; the result is byte-identical either way.
  Result<ObjectBlob> FetchWithRetry(const std::string& key);
  Status PutWithRetry(const std::string& key, ObjectBlob blob);

  // Advances simulated time for the nth backoff of one operation.
  void Backoff(int retry_index);

  // Records one decode/restore failure for `id` in the shared ledger and
  // quarantines the snapshot at the threshold (best-effort; Database faults
  // only defer the bookkeeping).
  void RecordRestoreFailure(SnapshotId id, const std::string& object_key);

  // Drops a pool entry whose object has vanished (concurrent eviction).
  void PruneStaleEntry(SnapshotId id);

  Duration TransferTime(uint64_t logical_bytes) const;

  const WorkloadProfile& profile_;
  const WorkloadRegistry& registry_;
  const OrchestrationPolicy& policy_;
  CheckpointEngine& engine_;
  SnapshotStore& snapshot_store_;
  PolicyStateStore& state_store_;
  SimClock& clock_;
  Rng rng_;
  OrchestratorCostModel costs_;
  RecoveryOptions recovery_options_;
  OrchestratorOverheads overheads_;
  RecoveryStats recovery_;
  std::deque<PendingObservation> pending_observations_;
  uint32_t commit_scope_ = 0;
  uint64_t observations_deduped_ = 0;
  uint64_t next_worker_id_ = 1;
  ObsSink* obs_ = nullptr;
  ObsTrack obs_track_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_ORCHESTRATOR_H_
