// Per-worker Orchestrator (paper Figure 2, workflow §3.2).
//
// The Orchestrator mediates between the serverless platform and the policy:
// on worker launch it consults the Database-backed policy state, restores
// from the chosen snapshot (or cold-starts), and fixes the lifetime's
// checkpoint plan; on every request it records latency knowledge; when the
// plan fires it checkpoints the process, uploads the image to the Object
// Store, and records metadata in the Database, evicting pool overflow.

#ifndef PRONGHORN_SRC_CORE_ORCHESTRATOR_H_
#define PRONGHORN_SRC_CORE_ORCHESTRATOR_H_

#include <cstdint>
#include <optional>

#include "src/checkpoint/engine.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/policy.h"
#include "src/core/policy_state_store.h"
#include "src/store/object_store.h"

namespace pronghorn {

// Cost model for the orchestrator's own bookkeeping (Figure 7 accounting).
// These costs are tracked off the critical path of request processing, as in
// the paper ("they all occur off the critical path ... not directly observed
// by the user").
struct OrchestratorCostModel {
  // One Database round trip.
  Duration db_read_latency = Duration::Millis(3);
  Duration db_write_latency = Duration::Millis(4);
  // Fixed policy-decision CPU cost at worker startup...
  Duration decision_base_cost = Duration::Millis(8);
  // ...plus a per-pool-entry term (weight computation + softmax at startup,
  // pool re-scoring at checkpoint). Calibrated so a full C=12 pool lands in
  // the paper's Figure 7 envelope (startup < 2.5x baseline, checkpoint < 2x).
  Duration decision_per_snapshot_cost = Duration::Millis(1);
  // Object store transfer bandwidth for snapshot images.
  double object_store_mb_per_sec = 1000.0;
};

// A live worker: the restored (or cold-started) process plus this lifetime's
// orchestration plan.
struct WorkerSession {
  WorkerSession(RuntimeProcess p, uint64_t id) : process(std::move(p)), worker_id(id) {}

  RuntimeProcess process;
  uint64_t worker_id = 0;
  // Absolute request number at which to checkpoint; nullopt = never.
  std::optional<uint64_t> checkpoint_at;
  bool restored = false;
  SnapshotId restored_from;  // value 0 when cold.
  // Time to make the worker ready: cold init, or image download + restore.
  Duration startup_latency;
  // Orchestrator bookkeeping at startup (DB read + decision).
  Duration startup_overhead;
};

// What happened while serving one request.
struct RequestOutcome {
  // End-to-end execution latency of the function (the quantity the paper's
  // CDFs plot; worker startup is off the critical path, see platform docs).
  Duration latency;
  // Maturity index of the request just served (1 = first request ever).
  uint64_t request_number = 0;
  bool checkpoint_taken = false;
  // Worker downtime caused by the checkpoint (not user-visible).
  Duration checkpoint_downtime;
  // Orchestrator bookkeeping for this request (knowledge write).
  Duration request_overhead;
  // Bookkeeping for the checkpoint, when one was taken (uploads, metadata).
  Duration checkpoint_overhead;
};

// Cumulative per-operation overhead totals (Figure 7 rows).
struct OrchestratorOverheads {
  uint64_t worker_starts = 0;
  uint64_t requests_served = 0;
  uint64_t checkpoints_taken = 0;
  Duration total_startup_overhead;
  Duration total_request_overhead;
  Duration total_checkpoint_overhead;
};

class Orchestrator {
 public:
  // All dependencies are borrowed and must outlive the Orchestrator. `seed`
  // drives policy randomness and process seeds.
  Orchestrator(const WorkloadProfile& profile, const WorkloadRegistry& registry,
               const OrchestrationPolicy& policy, CheckpointEngine& engine,
               ObjectStore& object_store, PolicyStateStore& state_store,
               SimClock& clock, uint64_t seed,
               OrchestratorCostModel costs = OrchestratorCostModel{});

  // Launches a new worker according to the policy (workflow steps: query
  // Database, select snapshot, restore or cold start, plan checkpoint).
  // If the selected snapshot has vanished (concurrent eviction), falls back
  // to a cold start rather than failing the launch.
  Result<WorkerSession> StartWorker();

  // Serves one request: executes it, updates latency knowledge in the
  // Database (steps 2-4), and checkpoints if this lifetime's plan fires
  // (steps 5-8).
  Result<RequestOutcome> ServeRequest(WorkerSession& session,
                                      const FunctionRequest& request);

  const OrchestratorOverheads& overheads() const { return overheads_; }
  const WorkloadProfile& profile() const { return profile_; }

 private:
  // Takes a snapshot of the session's process, uploads it, and records it in
  // the policy state; returns the worker downtime.
  Result<Duration> TakeCheckpoint(WorkerSession& session, RequestOutcome& outcome);

  Duration TransferTime(uint64_t logical_bytes) const;

  const WorkloadProfile& profile_;
  const WorkloadRegistry& registry_;
  const OrchestrationPolicy& policy_;
  CheckpointEngine& engine_;
  ObjectStore& object_store_;
  PolicyStateStore& state_store_;
  SimClock& clock_;
  Rng rng_;
  OrchestratorCostModel costs_;
  OrchestratorOverheads overheads_;
  uint64_t next_worker_id_ = 1;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_ORCHESTRATOR_H_
