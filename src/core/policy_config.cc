#include "src/core/policy_config.h"

namespace pronghorn {

Status PolicyConfig::Validate() const {
  if (beta == 0) {
    return InvalidArgumentError("beta (expected worker lifetime) must be >= 1");
  }
  if (pool_capacity == 0) {
    return InvalidArgumentError("pool capacity C must be >= 1");
  }
  if (max_checkpoint_request == 0) {
    return InvalidArgumentError("W (max checkpoint request) must be >= 1");
  }
  if (alpha <= 0.0 || alpha > 1.0) {
    return InvalidArgumentError("alpha must be in (0, 1]");
  }
  if (retain_top_percent < 0.0 || retain_top_percent > 100.0) {
    return InvalidArgumentError("p (retain top percent) must be in [0, 100]");
  }
  if (retain_random_percent < 0.0 || retain_random_percent > 100.0) {
    return InvalidArgumentError("gamma (retain random percent) must be in [0, 100]");
  }
  if (retain_top_percent + retain_random_percent > 100.0) {
    return InvalidArgumentError("p + gamma must not exceed 100");
  }
  if (mu <= 0.0) {
    return InvalidArgumentError("mu must be a tiny positive constant");
  }
  if (softmax_temperature <= 0.0) {
    return InvalidArgumentError("softmax temperature must be positive");
  }
  return OkStatus();
}

}  // namespace pronghorn
