#include "src/core/stop_condition_policy.h"

namespace pronghorn {

StartDecision StopConditionPolicy::OnWorkerStart(const PolicyState& state,
                                                 Rng& rng) const {
  if (!frozen()) {
    return inner_.OnWorkerStart(state, rng);
  }
  // Frozen: deterministically exploit the best-known snapshot, never plan a
  // checkpoint. "Best" is the lowest learned lifetime latency, i.e. the
  // highest average inverse lifetime weight — ties broken by recency.
  StartDecision decision;
  const PolicyConfig& config = inner_.config();
  const PoolEntry* best = nullptr;
  double best_weight = -1.0;
  for (const PoolEntry& entry : state.pool.entries()) {
    const double weight =
        state.theta.LifetimeWeight(entry.metadata.request_number, config.beta,
                                   config.mu);
    if (weight > best_weight ||
        (weight == best_weight && best != nullptr &&
         entry.metadata.id.value > best->metadata.id.value)) {
      best = &entry;
      best_weight = weight;
    }
  }
  if (best != nullptr) {
    decision.restore_from = best->metadata.id;
  }
  return decision;
}

void StopConditionPolicy::OnRequestComplete(PolicyState& state, uint64_t request_number,
                                            Duration latency) const {
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  // Knowledge keeps flowing either way; it is cheap and keeps the frozen
  // best-snapshot choice honest if the provider later resumes exploration.
  inner_.OnRequestComplete(state, request_number, latency);
}

std::vector<PoolEntry> StopConditionPolicy::OnSnapshotAdded(PolicyState& state,
                                                            Rng& rng) const {
  return inner_.OnSnapshotAdded(state, rng);
}

}  // namespace pronghorn
