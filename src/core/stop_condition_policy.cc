#include "src/core/stop_condition_policy.h"

#include <algorithm>
#include <numeric>

namespace pronghorn {

StartDecision StopConditionPolicy::OnWorkerStart(const PolicyState& state,
                                                 Rng& rng) const {
  if (!frozen()) {
    return inner_.OnWorkerStart(state, rng);
  }
  // Frozen: deterministically exploit the best-known snapshot, never plan a
  // checkpoint. "Best" is the lowest learned lifetime latency, i.e. the
  // highest average inverse lifetime weight — ties broken by recency.
  StartDecision decision;
  const PolicyConfig& config = inner_.config();
  const auto entries = state.pool.entries();
  if (entries.empty()) {
    return decision;
  }
  // Rank the full pool by learned lifetime weight (descending), ties broken
  // by recency, so restore failures fall back to the second-best snapshot
  // rather than straight to a cold start.
  std::vector<double> weights;
  weights.reserve(entries.size());
  for (const PoolEntry& entry : entries) {
    weights.push_back(state.theta.LifetimeWeight(entry.metadata.request_number,
                                                 config.beta, config.mu));
  }
  std::vector<size_t> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) {
      return weights[a] > weights[b];
    }
    return entries[a].metadata.id.value > entries[b].metadata.id.value;
  });
  decision.restore_candidates.reserve(order.size());
  for (const size_t index : order) {
    decision.restore_candidates.push_back(entries[index].metadata.id);
  }
  decision.restore_from = decision.restore_candidates.front();
  return decision;
}

void StopConditionPolicy::OnRequestComplete(PolicyState& state, uint64_t request_number,
                                            Duration latency) const {
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  // Knowledge keeps flowing either way; it is cheap and keeps the frozen
  // best-snapshot choice honest if the provider later resumes exploration.
  inner_.OnRequestComplete(state, request_number, latency);
}

std::vector<PoolEntry> StopConditionPolicy::OnSnapshotAdded(PolicyState& state,
                                                            Rng& rng) const {
  return inner_.OnSnapshotAdded(state, rng);
}

}  // namespace pronghorn
