#include "src/core/baseline_policies.h"

namespace pronghorn {

// --- ColdStartPolicy ---------------------------------------------------------

StartDecision ColdStartPolicy::OnWorkerStart(const PolicyState& state, Rng& rng) const {
  (void)state;
  (void)rng;
  return StartDecision{};  // Always cold, never checkpoint.
}

void ColdStartPolicy::OnRequestComplete(PolicyState& state, uint64_t request_number,
                                        Duration latency) const {
  (void)state;
  (void)request_number;
  (void)latency;
}

std::vector<PoolEntry> ColdStartPolicy::OnSnapshotAdded(PolicyState& state,
                                                        Rng& rng) const {
  (void)state;
  (void)rng;
  return {};
}

// --- CheckpointAfterFirstPolicy ----------------------------------------------

StartDecision CheckpointAfterFirstPolicy::OnWorkerStart(const PolicyState& state,
                                                        Rng& rng) const {
  (void)rng;
  StartDecision decision;
  if (state.pool.empty()) {
    // First worker ever: run cold and snapshot right after request #1.
    decision.checkpoint_at_request = 1;
  } else {
    // Always resume from the one-and-only snapshot.
    decision.restore_from = state.pool.entries().front().metadata.id;
    decision.restore_candidates = {*decision.restore_from};
  }
  return decision;
}

void CheckpointAfterFirstPolicy::OnRequestComplete(PolicyState& state,
                                                   uint64_t request_number,
                                                   Duration latency) const {
  // The baseline still records latencies (the platform uses the same update
  // path), but its decisions never read them.
  state.theta.Update(request_number, latency.ToSeconds(), config_.alpha);
}

std::vector<PoolEntry> CheckpointAfterFirstPolicy::OnSnapshotAdded(PolicyState& state,
                                                                   Rng& rng) const {
  (void)state;
  (void)rng;
  return {};  // Exactly one snapshot is ever taken; no eviction needed.
}

}  // namespace pronghorn
