#include "src/core/snapshot_pool.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pronghorn {

Status SnapshotPool::Add(PoolEntry entry) {
  if (Contains(entry.metadata.id)) {
    return AlreadyExistsError("snapshot " + std::to_string(entry.metadata.id.value) +
                              " already in pool");
  }
  entries_.push_back(std::move(entry));
  return OkStatus();
}

Result<const PoolEntry*> SnapshotPool::Find(SnapshotId id) const {
  for (const PoolEntry& entry : entries_) {
    if (entry.metadata.id == id) {
      return &entry;
    }
  }
  return NotFoundError("snapshot " + std::to_string(id.value) + " not in pool");
}

bool SnapshotPool::Contains(SnapshotId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const PoolEntry& e) { return e.metadata.id == id; });
}

bool SnapshotPool::Remove(SnapshotId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const PoolEntry& e) { return e.metadata.id == id; });
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  return true;
}

std::vector<PoolEntry> SnapshotPool::Prune(std::span<const double> weights,
                                           double top_percent, double random_percent,
                                           Rng& rng) {
  std::vector<PoolEntry> removed;
  if (entries_.empty() || weights.size() != entries_.size()) {
    return removed;
  }
  const size_t n = entries_.size();
  size_t keep_top = static_cast<size_t>(
      std::ceil(static_cast<double>(n) * top_percent / 100.0));
  keep_top = std::max<size_t>(keep_top, 1);  // Never empty the pool.
  keep_top = std::min(keep_top, n);
  const size_t keep_random = std::min(
      n - keep_top,
      static_cast<size_t>(std::floor(static_cast<double>(n) * random_percent / 100.0)));

  // Rank indices by weight, descending; ties broken by recency (higher id)
  // to keep the pruning deterministic.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) {
      return weights[a] > weights[b];
    }
    return entries_[a].metadata.id.value > entries_[b].metadata.id.value;
  });

  std::vector<bool> keep(n, false);
  for (size_t i = 0; i < keep_top; ++i) {
    keep[order[i]] = true;
  }
  // Random survivors drawn uniformly from the non-top remainder
  // (hill-climbing escape hatch, §3.4 "Snapshot pool management").
  std::vector<size_t> remainder(order.begin() + static_cast<ptrdiff_t>(keep_top),
                                order.end());
  rng.Shuffle(remainder);
  for (size_t i = 0; i < keep_random; ++i) {
    keep[remainder[i]] = true;
  }

  std::vector<PoolEntry> survivors;
  survivors.reserve(keep_top + keep_random);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) {
      survivors.push_back(std::move(entries_[i]));
    } else {
      removed.push_back(std::move(entries_[i]));
    }
  }
  entries_ = std::move(survivors);
  return removed;
}

void SnapshotPool::Serialize(ByteWriter& writer) const {
  writer.WriteVarint(entries_.size());
  for (const PoolEntry& entry : entries_) {
    writer.WriteUint64(entry.metadata.id.value);
    writer.WriteString(entry.metadata.function);
    writer.WriteVarint(entry.metadata.request_number);
    writer.WriteVarint(entry.metadata.logical_size_bytes);
    writer.WriteInt64(entry.metadata.created_at.ToMicros());
    writer.WriteString(entry.object_key);
  }
}

Result<SnapshotPool> SnapshotPool::Deserialize(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > (1u << 20)) {
    return DataLossError("implausible snapshot pool size");
  }
  SnapshotPool pool;
  pool.entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PoolEntry entry;
    PRONGHORN_ASSIGN_OR_RETURN(entry.metadata.id.value, reader.ReadUint64());
    PRONGHORN_ASSIGN_OR_RETURN(entry.metadata.function, reader.ReadString());
    PRONGHORN_ASSIGN_OR_RETURN(entry.metadata.request_number, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(entry.metadata.logical_size_bytes, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(int64_t created_us, reader.ReadInt64());
    entry.metadata.created_at = TimePoint::FromMicros(created_us);
    PRONGHORN_ASSIGN_OR_RETURN(entry.object_key, reader.ReadString());
    PRONGHORN_RETURN_IF_ERROR(pool.Add(std::move(entry)));
  }
  return pool;
}

}  // namespace pronghorn
