// The learned per-request-number latency vector theta (Algorithm 1, line 2).

#ifndef PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_
#define PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace pronghorn {

// theta[i] is the EWMA of end-to-end latencies (in seconds) observed for the
// i-th request since cold start, across all worker lifetimes of a function.
// Zero means "never observed" — the policy's inverse weighting turns that
// into an enormous exploration bonus.
class WeightVector {
 public:
  explicit WeightVector(uint32_t length) : values_(length, 0.0) {}

  uint32_t length() const { return static_cast<uint32_t>(values_.size()); }

  // EWMA update (Algorithm 1, part 3): a first observation initializes the
  // entry; later observations blend with proportion alpha. Out-of-range
  // request numbers are ignored (observed beyond the learning window).
  void Update(uint64_t request_number, double latency_seconds, double alpha);

  // Latency estimate for a request number; 0 when unexplored or out of range.
  double At(uint64_t request_number) const;

  bool IsExplored(uint64_t request_number) const { return At(request_number) > 0.0; }

  // Number of explored entries in [0, length).
  uint32_t ExploredCount() const;

  // Inverse weights 1/(theta[i]+mu) for i in [lo, hi] inclusive, clamped to
  // the vector range (the probability map D of Algorithm 1, recomputed).
  std::vector<double> InverseWeights(uint64_t lo, uint64_t hi, double mu) const;

  // Average inverse weight over a worker lifetime starting at request
  // `start`: (1/beta) * sum_{i=start}^{start+beta} 1/(theta[i]+mu)
  // (Algorithm 1, GetSnapshotWeights line 15).
  double LifetimeWeight(uint64_t start, uint32_t beta, double mu) const;

  // Sum of learned latencies over a lifetime window, for reporting.
  double LifetimeLatencySum(uint64_t start, uint32_t beta) const;

  void Serialize(ByteWriter& writer) const;
  static Result<WeightVector> Deserialize(ByteReader& reader);

  bool operator==(const WeightVector& other) const = default;

 private:
  std::vector<double> values_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_
