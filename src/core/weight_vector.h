// The learned per-request-number latency vector theta (Algorithm 1, line 2).

#ifndef PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_
#define PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace pronghorn {

// theta[i] is the EWMA of end-to-end latencies (in seconds) observed for the
// i-th request since cold start, across all worker lifetimes of a function.
// Zero means "never observed" — the policy's inverse weighting turns that
// into an enormous exploration bonus.
//
// Derived quantities (inverse weights, lifetime weights, explored count) are
// maintained incrementally behind mutable caches so per-decision cost is
// O(changed state) instead of O(W). Every cached value is produced by the
// exact same arithmetic as the naive recompute (same expressions, same
// summation order), so cached and uncached evaluation are bit-for-bit
// identical — the invariant tests/hot_path_equivalence_test.cc pins.
class WeightVector {
 public:
  explicit WeightVector(uint32_t length) : values_(length, 0.0) {}

  uint32_t length() const { return static_cast<uint32_t>(values_.size()); }

  // EWMA update (Algorithm 1, part 3): a first observation initializes the
  // entry; later observations blend with proportion alpha. Out-of-range
  // request numbers are ignored (observed beyond the learning window).
  // Refreshes the derived caches in O(beta) (point update of the inverse
  // weight, invalidation of the lifetime windows covering the entry).
  void Update(uint64_t request_number, double latency_seconds, double alpha);

  // Latency estimate for a request number; 0 when unexplored or out of range.
  double At(uint64_t request_number) const;

  bool IsExplored(uint64_t request_number) const { return At(request_number) > 0.0; }

  // Number of explored entries in [0, length). O(1): the count is maintained
  // by Update (an explored entry can never become unexplored again) and
  // cross-checked against the full scan in debug builds.
  uint32_t ExploredCount() const;

  // Inverse weights 1/(theta[i]+mu) for i in [lo, hi] inclusive, clamped to
  // the vector range (the probability map D of Algorithm 1, recomputed).
  std::vector<double> InverseWeights(uint64_t lo, uint64_t hi, double mu) const;

  // Allocation-free variant: a view into the maintained inverse-weight cache.
  // The span is invalidated by the next Update or by a call with a different
  // mu; callers must consume it before further mutation (the policy's draw
  // path does). Values are bitwise identical to InverseWeights().
  std::span<const double> InverseWeightsSpan(uint64_t lo, uint64_t hi, double mu) const;

  // Average inverse weight over a worker lifetime starting at request
  // `start`: (1/beta) * sum_{i=start}^{start+beta} 1/(theta[i]+mu)
  // (Algorithm 1, GetSnapshotWeights line 15). Memoized per start; a warm
  // entry is two array reads, a cold one is the naive O(beta) fold.
  double LifetimeWeight(uint64_t start, uint32_t beta, double mu) const;

  // Sum of learned latencies over a lifetime window, for reporting.
  double LifetimeLatencySum(uint64_t start, uint32_t beta) const;

  void Serialize(ByteWriter& writer) const;
  static Result<WeightVector> Deserialize(ByteReader& reader);

  // Identity is the learned values only; the derived caches are
  // recomputable and never serialized.
  bool operator==(const WeightVector& other) const {
    return values_ == other.values_;
  }

 private:
  // The naive folds the caches must reproduce bit-for-bit.
  double NaiveLifetimeWeight(uint64_t start, uint32_t beta, double mu) const;
  uint32_t ScanExploredCount() const;

  // (Re)builds inv_ for `mu` when absent or keyed to a different mu.
  void EnsureInverseCache(double mu) const;
  // Resets the lifetime memo when (beta, mu) differ from the cached key.
  void EnsureLifetimeCache(uint32_t beta, double mu) const;

  std::vector<double> values_;
  uint32_t explored_count_ = 0;

  // Inverse-weight cache: inv_[i] == InverseWeight(values_[i], inv_mu_).
  mutable bool inv_valid_ = false;
  mutable double inv_mu_ = 0.0;
  mutable std::vector<double> inv_;

  // Lifetime-weight memo keyed by (lw_beta_, lw_mu_): lw_memo_[start] holds
  // the naive fold's result when lw_fresh_[start] is set.
  mutable bool lw_valid_ = false;
  mutable uint32_t lw_beta_ = 0;
  mutable double lw_mu_ = 0.0;
  mutable std::vector<double> lw_memo_;
  mutable std::vector<uint8_t> lw_fresh_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_WEIGHT_VECTOR_H_
