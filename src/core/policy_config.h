// Configuration of the request-centric orchestration policy (paper Table 2).

#ifndef PRONGHORN_SRC_CORE_POLICY_CONFIG_H_
#define PRONGHORN_SRC_CORE_POLICY_CONFIG_H_

#include <cstdint>

#include "src/common/status.h"

namespace pronghorn {

struct PolicyConfig {
  // --- Precomputed by the cloud provider ---------------------------------
  // beta: average number of requests a worker handles before eviction.
  uint32_t beta = 20;

  // --- Overhead bounding ---------------------------------------------------
  // C: maximum snapshot pool capacity.
  uint32_t pool_capacity = 12;
  // W: largest request number at which checkpointing is permitted. The
  // paper uses 100 for PyPy and 200 for JVM benchmarks.
  uint32_t max_checkpoint_request = 100;

  // --- Learning ------------------------------------------------------------
  // alpha: EWMA proportion for knowledge updates.
  double alpha = 0.3;
  // p: percentage of top-performing snapshots retained at pool eviction.
  double retain_top_percent = 40.0;
  // gamma: percentage of random snapshots additionally retained.
  double retain_random_percent = 10.0;
  // mu: tiny positive constant in the inverse-latency weighting 1/(theta+mu);
  // theta is stored in seconds, so unexplored entries get weight 1/mu.
  double mu = 1e-6;
  // Softmax temperature for snapshot selection; 1.0 is the paper's
  // formulation (latencies in seconds).
  double softmax_temperature = 1.0;

  // Length of the learned weight vector: checkpoints are bounded by W but a
  // worker restored at W still reports latencies for its whole lifetime.
  uint32_t WeightVectorLength() const { return max_checkpoint_request + beta + 1; }

  // Validates ranges; kInvalidArgument with a precise message otherwise.
  Status Validate() const;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_POLICY_CONFIG_H_
