#include "src/core/orchestrator.h"

#include <string>
#include <vector>

#include "src/common/logging.h"

namespace pronghorn {

Orchestrator::Orchestrator(const WorkloadProfile& profile,
                           const WorkloadRegistry& registry,
                           const OrchestrationPolicy& policy, CheckpointEngine& engine,
                           ObjectStore& object_store, PolicyStateStore& state_store,
                           SimClock& clock, uint64_t seed, OrchestratorCostModel costs)
    : profile_(profile),
      registry_(registry),
      policy_(policy),
      engine_(engine),
      object_store_(object_store),
      state_store_(state_store),
      clock_(clock),
      rng_(HashCombine(seed, 0x0c4e57ULL)),
      costs_(costs) {}

Duration Orchestrator::TransferTime(uint64_t logical_bytes) const {
  const double mb = static_cast<double>(logical_bytes) / (1024.0 * 1024.0);
  return Duration::Seconds(mb / costs_.object_store_mb_per_sec);
}

Result<WorkerSession> Orchestrator::StartWorker() {
  // Workflow step: the Orchestrator queries the Database for the freshest
  // view of snapshots and their performance before deciding.
  PRONGHORN_ASSIGN_OR_RETURN(PolicyState state, state_store_.Load());
  const StartDecision decision = policy_.OnWorkerStart(state, rng_);

  const Duration decision_overhead =
      costs_.db_read_latency + costs_.decision_base_cost +
      costs_.decision_per_snapshot_cost * static_cast<double>(state.pool.size());

  WorkerSession session =
      [&]() -> WorkerSession {
    if (decision.restore_from.has_value()) {
      auto entry = state.pool.Find(*decision.restore_from);
      if (entry.ok()) {
        auto blob = object_store_.Get((*entry)->object_key);
        if (blob.ok()) {
          auto image = SnapshotImage::Decode(blob->bytes);
          if (image.ok()) {
            auto restored = engine_.Restore(*image, registry_);
            if (restored.ok()) {
              WorkerSession s(std::move(restored->process), next_worker_id_++);
              s.restored = true;
              s.restored_from = *decision.restore_from;
              s.startup_latency =
                  TransferTime(blob->logical_size) + restored->restore_time;
              return s;
            }
            PRONGHORN_LOG_WARNING("restore of snapshot %llu failed: %s",
                                  static_cast<unsigned long long>(
                                      decision.restore_from->value),
                                  restored.status().ToString().c_str());
          } else {
            PRONGHORN_LOG_WARNING("snapshot %llu image corrupt: %s",
                                  static_cast<unsigned long long>(
                                      decision.restore_from->value),
                                  image.status().ToString().c_str());
          }
        } else {
          // Concurrent eviction between our Load and the Get; cold start.
          PRONGHORN_LOG_DEBUG("snapshot object missing for id %llu; cold start",
                              static_cast<unsigned long long>(
                                  decision.restore_from->value));
        }
      }
    }
    WorkerSession s(RuntimeProcess::ColdStart(profile_, rng_.NextUint64()),
                    next_worker_id_++);
    s.startup_latency = profile_.cold_init;
    return s;
  }();

  session.checkpoint_at = decision.checkpoint_at_request;
  session.startup_overhead = decision_overhead;

  overheads_.worker_starts += 1;
  overheads_.total_startup_overhead += decision_overhead;
  return session;
}

Result<RequestOutcome> Orchestrator::ServeRequest(WorkerSession& session,
                                                  const FunctionRequest& request) {
  RequestOutcome outcome;

  const ExecutionResult execution = session.process.Execute(request);
  outcome.latency = execution.latency;
  outcome.request_number = session.process.requests_executed();

  // Workflow step 3: pass the end-to-end latency to the policy, which
  // updates the Database (one knowledge write per request).
  const uint64_t request_number = outcome.request_number;
  const Duration latency = outcome.latency;
  PRONGHORN_RETURN_IF_ERROR(state_store_.Update([&](PolicyState& state) {
    policy_.OnRequestComplete(state, request_number, latency);
  }));
  outcome.request_overhead = costs_.db_write_latency;
  overheads_.requests_served += 1;
  overheads_.total_request_overhead += outcome.request_overhead;

  // Workflow steps 5-8: checkpoint when this lifetime's plan fires.
  if (session.checkpoint_at.has_value() &&
      session.process.requests_executed() >= *session.checkpoint_at) {
    PRONGHORN_ASSIGN_OR_RETURN(Duration downtime, TakeCheckpoint(session, outcome));
    outcome.checkpoint_taken = true;
    outcome.checkpoint_downtime = downtime;
    session.checkpoint_at.reset();  // One checkpoint per lifetime plan.
  }
  return outcome;
}

Result<Duration> Orchestrator::TakeCheckpoint(WorkerSession& session,
                                              RequestOutcome& outcome) {
  PRONGHORN_ASSIGN_OR_RETURN(SnapshotId id, state_store_.AllocateSnapshotId());
  PRONGHORN_ASSIGN_OR_RETURN(CheckpointOutcome checkpoint,
                             engine_.Checkpoint(session.process, id, clock_.now()));

  const SnapshotImage& image = checkpoint.image;
  // Scope the object key by the deployment (the state store's function
  // scope), not the workload name: two deployments of one workload — e.g.
  // input-class-specialized orchestrators — must never collide in a shared
  // object store.
  const std::string key = "snapshots/" + state_store_.function() + "/" +
                          std::to_string(image.metadata().id.value);
  ObjectBlob blob;
  blob.bytes = image.Encode();
  blob.logical_size = image.metadata().logical_size_bytes;
  PRONGHORN_RETURN_IF_ERROR(object_store_.Put(key, std::move(blob)));

  // Record the snapshot and apply the capacity rule atomically. External
  // deletions happen only after the state update commits; `evicted` is
  // rebuilt on every CAS retry so the mutator stays idempotent.
  std::vector<PoolEntry> evicted;
  size_t pool_size_after = 0;
  PRONGHORN_RETURN_IF_ERROR(state_store_.Update([&](PolicyState& state) {
    evicted.clear();
    if (!state.pool.Contains(image.metadata().id)) {
      // Add cannot fail after the Contains check.
      (void)state.pool.Add(PoolEntry{image.metadata(), key});
    }
    evicted = policy_.OnSnapshotAdded(state, rng_);
    pool_size_after = state.pool.size();
  }));
  for (const PoolEntry& entry : evicted) {
    const Status status = object_store_.Delete(entry.object_key);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }

  // Orchestrator bookkeeping (Figure 7's per-checkpoint component): the
  // metadata write, the pool update (which re-scores every pooled snapshot),
  // and the eviction deletes. The image upload itself is network transfer,
  // accounted by the object store, not orchestrator overhead.
  const Duration overhead =
      costs_.db_write_latency * 2.0 + costs_.decision_base_cost * 0.5 +
      costs_.decision_per_snapshot_cost *
          static_cast<double>(pool_size_after + evicted.size());
  outcome.checkpoint_overhead = overhead;
  overheads_.checkpoints_taken += 1;
  overheads_.total_checkpoint_overhead += overhead;
  return checkpoint.downtime;
}

}  // namespace pronghorn
