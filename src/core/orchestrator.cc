#include "src/core/orchestrator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/mathutil.h"

namespace pronghorn {

Orchestrator::Orchestrator(const WorkloadProfile& profile,
                           const WorkloadRegistry& registry,
                           const OrchestrationPolicy& policy, CheckpointEngine& engine,
                           SnapshotStore& snapshot_store, PolicyStateStore& state_store,
                           SimClock& clock, uint64_t seed, OrchestratorCostModel costs,
                           RecoveryOptions recovery)
    : profile_(profile),
      registry_(registry),
      policy_(policy),
      engine_(engine),
      snapshot_store_(snapshot_store),
      state_store_(state_store),
      clock_(clock),
      rng_(HashCombine(seed, 0x0c4e57ULL)),
      costs_(costs),
      recovery_options_(recovery) {}

Duration Orchestrator::TransferTime(uint64_t logical_bytes) const {
  const double mb = static_cast<double>(logical_bytes) / (1024.0 * 1024.0);
  return Duration::Seconds(mb / costs_.object_store_mb_per_sec);
}

void Orchestrator::Backoff(int retry_index) {
  Duration delay = CappedExponentialBackoff(
      recovery_options_.backoff_base, recovery_options_.backoff_multiplier,
      retry_index, recovery_options_.backoff_cap);
  // Deterministic jitter in [50%, 100%]. The draw only happens on a fault, so
  // fault-free trajectories consume exactly the same RNG stream as before.
  delay = delay * (0.5 + 0.5 * rng_.UniformDouble());
  recovery_.total_retry_backoff += delay;
  if (obs_ != nullptr) {
    obs_->Counter("recovery.backoffs", 1);
    obs_->Observe("recovery.backoff_us", delay);
    obs_->Instant(obs_track_, "backoff", "recovery", clock_.now());
  }
  clock_.Advance(delay);
}

Result<ObjectBlob> Orchestrator::FetchWithRetry(const std::string& key) {
  for (int attempt = 0;; ++attempt) {
    auto reader = snapshot_store_.OpenSnapshot(key);
    if (reader.ok()) {
      // Materialize through the (possibly lazy) reader. Any error here is a
      // hard integrity failure, never transient, so it is not retried.
      return (*reader)->ReadAll();
    }
    if (reader.status().code() != StatusCode::kUnavailable ||
        attempt >= recovery_options_.max_transient_retries) {
      return reader.status();
    }
    recovery_.restore_transient_retries += 1;
    if (obs_ != nullptr) {
      obs_->Counter("recovery.transient_retries", 1);
      obs_->Instant(obs_track_, "retry", "recovery", clock_.now());
    }
    Backoff(attempt);
  }
}

Status Orchestrator::PutWithRetry(const std::string& key, ObjectBlob blob) {
  for (int attempt = 0;; ++attempt) {
    // Put consumes its argument; keeping one for retries is cheap now that
    // the payload is a shared immutable buffer (refcount bump, no deep copy).
    ObjectBlob copy = blob;
    const auto put = snapshot_store_.PutSnapshot(key, std::move(copy));
    const Status status = put.ok() ? OkStatus() : put.status();
    if (status.ok() || status.code() != StatusCode::kUnavailable ||
        attempt >= recovery_options_.max_transient_retries) {
      return status;
    }
    recovery_.restore_transient_retries += 1;
    if (obs_ != nullptr) {
      obs_->Counter("recovery.transient_retries", 1);
      obs_->Instant(obs_track_, "retry", "recovery", clock_.now());
    }
    Backoff(attempt);
  }
}

void Orchestrator::RecordRestoreFailure(SnapshotId id, const std::string& object_key) {
  // Best effort: if the Database is unreachable the ledger write is simply
  // lost — the snapshot gets another chance next lifetime.
  bool quarantined = false;
  const Status status = state_store_.Update([&](PolicyState& state) {
    quarantined = false;  // Mutator may re-run on CAS conflict.
    const uint32_t count = ++state.restore_failures[id.value];
    if (count >= recovery_options_.quarantine_threshold) {
      state.pool.Remove(id);
      state.restore_failures.erase(id.value);
      quarantined = true;
    }
  });
  if (!status.ok()) {
    PRONGHORN_LOG_DEBUG("restore-failure ledger write lost for snapshot %llu: %s",
                        static_cast<unsigned long long>(id.value),
                        status.ToString().c_str());
    return;
  }
  if (quarantined) {
    recovery_.snapshots_quarantined += 1;
    if (obs_ != nullptr) {
      obs_->Counter("recovery.quarantines", 1);
      obs_->Instant(obs_track_, "quarantine", "recovery", clock_.now());
    }
    PRONGHORN_LOG_WARNING("snapshot %llu quarantined after repeated restore failures",
                          static_cast<unsigned long long>(id.value));
    const Status deleted = snapshot_store_.DeleteSnapshot(object_key);
    if (!deleted.ok() && deleted.code() != StatusCode::kNotFound) {
      recovery_.eviction_deletes_deferred += 1;
    }
  }
}

void Orchestrator::PruneStaleEntry(SnapshotId id) {
  const Status status = state_store_.Update([&](PolicyState& state) {
    state.pool.Remove(id);
    state.restore_failures.erase(id.value);
  });
  if (status.ok()) {
    recovery_.stale_entries_pruned += 1;
  }
}

Result<WorkerSession> Orchestrator::StartWorker() {
  // Workflow step: the Orchestrator queries the Database for the freshest
  // view of snapshots and their performance before deciding.
  auto loaded = state_store_.Load();
  if (!loaded.ok()) {
    if (loaded.status().code() == StatusCode::kUnavailable) {
      // Database outage at launch: the worker must still come up, so degrade
      // to a local cold start with no checkpoint plan. Latency observations
      // are buffered and replayed once the Database recovers.
      WorkerSession session(RuntimeProcess::ColdStart(profile_, rng_.NextUint64()),
                            next_worker_id_++);
      session.degraded = true;
      session.startup_latency = profile_.cold_init;
      session.startup_overhead = costs_.db_read_latency;
      recovery_.degraded_starts += 1;
      overheads_.worker_starts += 1;
      overheads_.total_startup_overhead += session.startup_overhead;
      if (obs_ != nullptr) {
        obs_->Counter("orchestrator.degraded_starts", 1);
        obs_->Instant(obs_track_, "decision:degraded_start", "orchestrator",
                      clock_.now());
      }
      PRONGHORN_LOG_WARNING("database unavailable at worker launch for '%s'; "
                            "degraded cold start",
                            state_store_.function().c_str());
      return session;
    }
    return loaded.status();
  }
  PolicyState state = *std::move(loaded);
  const StartDecision decision = policy_.OnWorkerStart(state, rng_);

  const Duration decision_overhead =
      costs_.db_read_latency + costs_.decision_base_cost +
      costs_.decision_per_snapshot_cost * static_cast<double>(state.pool.size());

  // Walk the policy's ranked candidates (best first) until one restores.
  StartDecision::CandidateList candidates = decision.restore_candidates;
  if (candidates.empty() && decision.restore_from.has_value()) {
    candidates.push_back(*decision.restore_from);
  }
  if (candidates.size() > recovery_options_.max_restore_candidates) {
    candidates.resize(recovery_options_.max_restore_candidates);
  }

  std::optional<WorkerSession> session;
  for (size_t rank = 0; rank < candidates.size() && !session.has_value(); ++rank) {
    const SnapshotId id = candidates[rank];
    auto entry = state.pool.Find(id);
    if (!entry.ok()) {
      continue;
    }
    const std::string key = (*entry)->object_key;
    auto blob = FetchWithRetry(key);
    if (!blob.ok()) {
      if (blob.status().code() == StatusCode::kNotFound) {
        // Concurrent eviction between our Load and the fetch: the pool entry
        // points at a blob that no longer exists. Drop it so later lifetimes
        // stop drawing it.
        PRONGHORN_LOG_DEBUG("snapshot object missing for id %llu; pruning entry",
                            static_cast<unsigned long long>(id.value));
        PruneStaleEntry(id);
      } else if (blob.status().code() == StatusCode::kDataLoss) {
        // The store itself detected at-rest damage (corrupt chunk manifest
        // or a chunk missing from the index) before an image ever decoded.
        // Flat stores never return kDataLoss here — their corruption is only
        // caught by the image CRC below — so flat trajectories are unchanged.
        PRONGHORN_LOG_WARNING("snapshot %llu store-level data loss: %s",
                              static_cast<unsigned long long>(id.value),
                              blob.status().ToString().c_str());
        recovery_.restore_attempt_failures += 1;
        RecordRestoreFailure(id, key);
      } else {
        recovery_.restore_attempt_failures += 1;
      }
      continue;
    }
    auto image = SnapshotImage::Decode(blob->bytes());
    if (!image.ok()) {
      PRONGHORN_LOG_WARNING("snapshot %llu image corrupt: %s",
                            static_cast<unsigned long long>(id.value),
                            image.status().ToString().c_str());
      recovery_.restore_attempt_failures += 1;
      RecordRestoreFailure(id, key);
      continue;
    }
    auto restored = engine_.Restore(*image, registry_);
    if (!restored.ok()) {
      PRONGHORN_LOG_WARNING("restore of snapshot %llu failed: %s",
                            static_cast<unsigned long long>(id.value),
                            restored.status().ToString().c_str());
      recovery_.restore_attempt_failures += 1;
      RecordRestoreFailure(id, key);
      continue;
    }
    WorkerSession s(std::move(restored->process), next_worker_id_++);
    s.restored = true;
    s.restored_from = id;
    s.startup_latency = TransferTime(blob->logical_size) + restored->restore_time;
    if (rank > 0) {
      recovery_.restore_fallbacks += 1;
      if (obs_ != nullptr) {
        obs_->Counter("recovery.restore_fallbacks", 1);
        obs_->Instant(obs_track_, "restore_fallback", "recovery", clock_.now());
      }
    }
    if (state.restore_failures.count(id.value) > 0) {
      // The snapshot proved healthy after all; clear its strikes (best
      // effort — a lost write just leaves stale strikes to age out).
      (void)state_store_.Update(
          [&](PolicyState& st) { st.restore_failures.erase(id.value); });
    }
    session.emplace(std::move(s));
  }
  if (!session.has_value()) {
    session.emplace(RuntimeProcess::ColdStart(profile_, rng_.NextUint64()),
                    next_worker_id_++);
    session->startup_latency = profile_.cold_init;
  }

  session->checkpoint_at = decision.checkpoint_at_request;
  session->startup_overhead = decision_overhead;

  overheads_.worker_starts += 1;
  overheads_.total_startup_overhead += decision_overhead;
  if (obs_ != nullptr) {
    obs_->Counter(session->restored ? "orchestrator.restore_decisions"
                                    : "orchestrator.cold_start_decisions",
                  1);
    obs_->Instant(obs_track_,
                  session->restored ? "decision:restore" : "decision:cold_start",
                  "orchestrator", clock_.now());
  }
  return *std::move(session);
}

RequestOutcome Orchestrator::ExecuteBuffered(WorkerSession& session,
                                             const FunctionRequest& request,
                                             uint64_t sequence) {
  RequestOutcome outcome;
  const ExecutionResult execution = session.process.Execute(request);
  outcome.latency = execution.latency;
  outcome.request_number = session.process.requests_executed();

  pending_observations_.push_back({outcome.request_number, outcome.latency, sequence});
  if (pending_observations_.size() > recovery_options_.max_buffered_observations) {
    pending_observations_.pop_front();
    recovery_.observations_dropped += 1;
  }
  overheads_.requests_served += 1;
  return outcome;
}

Status Orchestrator::CommitObservations(RequestOutcome& outcome) {
  if (pending_observations_.empty()) {
    return OkStatus();
  }
  // Journal-replay dedup, stage 1 of 2: when the buffer holds sequenced
  // observations (only ever true in journaled service mode — sim paths pass
  // sequence 0 and skip this Load entirely), drop the ones the blob's
  // high-water mark already covers so a pure-duplicate replay performs no
  // write at all. The mutator below re-checks under the CAS, which is the
  // authoritative exactly-once guarantee; this pass is the fast path.
  bool sequenced = false;
  for (const PendingObservation& observation : pending_observations_) {
    sequenced = sequenced || observation.sequence != 0;
  }
  if (sequenced) {
    const auto current = state_store_.Load();
    if (current.ok()) {
      uint64_t mark = 0;
      if (const auto it = current->commit_marks.find(commit_scope_);
          it != current->commit_marks.end()) {
        mark = it->second;
      }
      const size_t before = pending_observations_.size();
      std::erase_if(pending_observations_,
                    [&](const PendingObservation& observation) {
                      return observation.sequence != 0 && observation.sequence <= mark;
                    });
      observations_deduped_ += before - pending_observations_.size();
      if (pending_observations_.empty()) {
        return OkStatus();
      }
    }
    // A Load failure falls through: the mutator dedups under the CAS anyway.
  }
  // Workflow step 3: pass the end-to-end latency to the policy, which
  // updates the Database (one knowledge write per batch). Writes that hit
  // a Database outage are buffered locally and replayed with a later
  // commit; the mutator flushes the whole buffer, which is safe to re-run
  // because a failed Update never commits — and sequenced observations are
  // additionally guarded by the high-water mark, which advances in the same
  // CAS as the knowledge writes it covers.
  const uint64_t backlog = pending_observations_.size() - 1;
  const Status update = state_store_.Update([&](PolicyState& state) {
    for (const PendingObservation& observation : pending_observations_) {
      if (observation.sequence != 0) {
        uint64_t& mark = state.commit_marks[commit_scope_];
        if (observation.sequence <= mark) {
          continue;  // Already applied by a commit that beat the crash.
        }
        mark = observation.sequence;
      }
      policy_.OnRequestComplete(state, observation.request_number,
                                observation.latency);
    }
  });
  if (update.ok()) {
    recovery_.observations_replayed += backlog;
    pending_observations_.clear();
    outcome.request_overhead = costs_.db_write_latency;
    overheads_.total_request_overhead += outcome.request_overhead;
  } else if (update.code() == StatusCode::kUnavailable) {
    recovery_.observations_buffered += 1;
  } else {
    return update;
  }
  return OkStatus();
}

Status Orchestrator::ReplayJournaled(std::span<const JournaledObservation> records) {
  for (const JournaledObservation& record : records) {
    pending_observations_.push_back(
        {record.request_number, record.latency, record.sequence});
    if (pending_observations_.size() > recovery_options_.max_buffered_observations) {
      pending_observations_.pop_front();
      recovery_.observations_dropped += 1;
    }
  }
  if (pending_observations_.empty()) {
    return OkStatus();
  }
  RequestOutcome scratch;
  return CommitObservations(scratch);
}

Result<uint64_t> Orchestrator::CommittedHighWater() const {
  PRONGHORN_ASSIGN_OR_RETURN(const PolicyState state, state_store_.Load());
  const auto it = state.commit_marks.find(commit_scope_);
  return it == state.commit_marks.end() ? 0 : it->second;
}

Status Orchestrator::MaybeCheckpoint(WorkerSession& session, RequestOutcome& outcome) {
  // Workflow steps 5-8: checkpoint when this lifetime's plan fires. A plan
  // that hits a transient fault is consumed (counted, not retried): the next
  // lifetime will draw a fresh plan.
  if (!session.checkpoint_at.has_value() ||
      session.process.requests_executed() < *session.checkpoint_at) {
    return OkStatus();
  }
  session.checkpoint_at.reset();  // One checkpoint per lifetime plan.
  auto downtime = TakeCheckpoint(session, outcome);
  if (downtime.ok()) {
    outcome.checkpoint_taken = true;
    outcome.checkpoint_downtime = *downtime;
  } else if (downtime.status().code() == StatusCode::kUnavailable) {
    recovery_.checkpoints_skipped += 1;
    PRONGHORN_LOG_DEBUG("checkpoint skipped for '%s': %s",
                        state_store_.function().c_str(),
                        downtime.status().ToString().c_str());
  } else {
    return downtime.status();
  }
  return OkStatus();
}

Result<RequestOutcome> Orchestrator::ServeRequest(WorkerSession& session,
                                                  const FunctionRequest& request) {
  RequestOutcome outcome = ExecuteBuffered(session, request);
  PRONGHORN_RETURN_IF_ERROR(CommitObservations(outcome));
  PRONGHORN_RETURN_IF_ERROR(MaybeCheckpoint(session, outcome));
  return outcome;
}

Result<Duration> Orchestrator::TakeCheckpoint(WorkerSession& session,
                                              RequestOutcome& outcome) {
  PRONGHORN_ASSIGN_OR_RETURN(SnapshotId id, state_store_.AllocateSnapshotId());
  PRONGHORN_ASSIGN_OR_RETURN(CheckpointOutcome checkpoint,
                             engine_.Checkpoint(session.process, id, clock_.now()));

  const SnapshotImage& image = checkpoint.image;
  // Scope the object key by the deployment (the state store's function
  // scope), not the workload name: two deployments of one workload — e.g.
  // input-class-specialized orchestrators — must never collide in a shared
  // object store.
  const std::string key = "snapshots/" + state_store_.function() + "/" +
                          std::to_string(image.metadata().id.value);
  // The engine sealed the encoding at checkpoint time; every downstream
  // hand-off (retries, store, readers) shares that one immutable buffer.
  PRONGHORN_RETURN_IF_ERROR(PutWithRetry(key, std::move(checkpoint.blob)));

  // Record the snapshot and apply the capacity rule atomically. External
  // deletions happen only after the state update commits; `evicted` is
  // rebuilt on every CAS retry so the mutator stays idempotent.
  std::vector<PoolEntry> evicted;
  size_t pool_size_after = 0;
  const Status update = state_store_.Update([&](PolicyState& state) {
    evicted.clear();
    if (!state.pool.Contains(image.metadata().id)) {
      // Add cannot fail after the Contains check.
      (void)state.pool.Add(PoolEntry{image.metadata(), key});
    }
    evicted = policy_.OnSnapshotAdded(state, rng_);
    pool_size_after = state.pool.size();
  });
  if (!update.ok()) {
    // The blob landed but its metadata never committed: delete it so it does
    // not linger as an orphan (best effort; GC sweeps whatever remains).
    (void)snapshot_store_.DeleteSnapshot(key);
    return update;
  }
  for (const PoolEntry& entry : evicted) {
    const Status status = snapshot_store_.DeleteSnapshot(entry.object_key);
    if (status.ok() || status.code() == StatusCode::kNotFound) {
      continue;
    }
    if (status.code() == StatusCode::kUnavailable) {
      // The pool entry is already gone; the blob becomes an orphan that
      // CollectOrphanedObjects reclaims.
      recovery_.eviction_deletes_deferred += 1;
      continue;
    }
    return status;
  }

  // Orchestrator bookkeeping (Figure 7's per-checkpoint component): the
  // metadata write, the pool update (which re-scores every pooled snapshot),
  // and the eviction deletes. The image upload itself is network transfer,
  // accounted by the object store, not orchestrator overhead.
  const Duration overhead =
      costs_.db_write_latency * 2.0 + costs_.decision_base_cost * 0.5 +
      costs_.decision_per_snapshot_cost *
          static_cast<double>(pool_size_after + evicted.size());
  outcome.checkpoint_overhead = overhead;
  overheads_.checkpoints_taken += 1;
  overheads_.total_checkpoint_overhead += overhead;
  return checkpoint.downtime;
}

Result<uint64_t> Orchestrator::CollectOrphanedObjects() {
  PRONGHORN_ASSIGN_OR_RETURN(PolicyState state, state_store_.Load());
  const std::string prefix = "snapshots/" + state_store_.function() + "/";
  const std::vector<std::string> keys = snapshot_store_.ListSnapshots(prefix);
  uint64_t collected = 0;
  for (const std::string& key : keys) {
    bool referenced = false;
    for (const PoolEntry& entry : state.pool.entries()) {
      if (entry.object_key == key) {
        referenced = true;
        break;
      }
    }
    if (referenced) {
      continue;
    }
    const Status status = snapshot_store_.DeleteSnapshot(key);
    if (status.ok() || status.code() == StatusCode::kNotFound) {
      collected += 1;
    }
  }
  recovery_.orphans_collected += collected;
  // Dropped manifests release chunk references; reclaim the unreferenced
  // chunks in the same sweep (no-op, returning 0, on flat stores).
  (void)snapshot_store_.CollectGarbage();
  return collected;
}

}  // namespace pronghorn
