#include "src/core/request_centric_policy.h"

#include <algorithm>
#include <numeric>
#include <span>

#include "src/common/arena.h"
#include "src/common/mathutil.h"

namespace pronghorn {

namespace {

// Per-thread decision scratch. One policy instance is shared across every
// shard thread (it holds no per-call state), and each worker slot's decision
// runs on exactly one thread, so a thread-local bump arena gives every slot
// private scratch without locks. Reset() at the top of each decision rewinds
// the cursor; after the first decision warms the retained block, the steady
// state performs zero heap allocations (tests/alloc_hook_test.cc).
Arena& DecisionArena() {
  thread_local Arena arena(4 * 1024);
  return arena;
}

}  // namespace

Result<RequestCentricPolicy> RequestCentricPolicy::Create(const PolicyConfig& config) {
  PRONGHORN_RETURN_IF_ERROR(config.Validate());
  return RequestCentricPolicy(config);
}

std::vector<double> RequestCentricPolicy::SnapshotWeights(const PolicyState& state) const {
  // GetSnapshotWeights (Algorithm 1, lines 11-18): w[i] is the average
  // inverse learned latency over the lifetime that would follow a restore
  // from snapshot i.
  std::vector<double> weights;
  weights.reserve(state.pool.size());
  for (const PoolEntry& entry : state.pool.entries()) {
    weights.push_back(state.theta.LifetimeWeight(entry.metadata.request_number,
                                                 config_.beta, config_.mu));
  }
  return weights;
}

std::optional<uint64_t> RequestCentricPolicy::DrawCheckpointRequest(
    const PolicyState& state, uint64_t start, Rng& rng) const {
  // OnContainerStart (Algorithm 1, lines 4-10). The paper draws from
  // [R, R+beta]; we draw from (R, min(R+beta, W)]: checkpointing at R itself
  // would duplicate the snapshot we just restored (no new JIT progress), and
  // W bounds the request numbers at which checkpointing is permitted
  // (Table 2).
  const uint64_t lo = start + 1;
  const uint64_t hi =
      std::min<uint64_t>(start + config_.beta, config_.max_checkpoint_request);
  if (lo > hi) {
    return std::nullopt;
  }
  const std::span<const double> weights =
      state.theta.InverseWeightsSpan(lo, hi, config_.mu);
  if (weights.empty()) {
    return std::nullopt;
  }
  const size_t index = rng.WeightedIndex(weights);
  return lo + index;
}

StartDecision RequestCentricPolicy::OnWorkerStart(const PolicyState& state,
                                                  Rng& rng) const {
  StartDecision decision;
  uint64_t start_request = 0;
  if (!state.pool.empty()) {
    // OnContainerInit (lines 19-23): softmax over snapshot weights, then a
    // weighted draw. Low-lifetime-latency snapshots dominate, but every
    // snapshot keeps nonzero probability. The single draw is the paper's
    // restore choice; the remaining entries are ranked by probability
    // (descending, ties by recency) to give the orchestrator a deterministic
    // fallback order when a restore attempt fails (missing or corrupt
    // image). Ranking consumes no randomness, so fault-free trajectories are
    // identical to a policy without fallback candidates.
    //
    // All scratch lives in the per-thread arena as parallel (SoA) arrays —
    // weights, probabilities, ids, sort order — so the whole decision is
    // allocation-free and the scoring scans run over contiguous doubles.
    Arena& arena = DecisionArena();
    arena.Reset();
    const auto entries = state.pool.entries();
    const size_t count = entries.size();
    const std::span<double> weights = arena.AllocateSpan<double>(count);
    for (size_t i = 0; i < count; ++i) {
      weights[i] = state.theta.LifetimeWeight(entries[i].metadata.request_number,
                                              config_.beta, config_.mu);
    }
    const std::span<double> probabilities = arena.AllocateSpan<double>(count);
    SoftmaxInto(weights, config_.softmax_temperature, probabilities);
    const size_t first_index = rng.WeightedIndex(probabilities);
    const std::span<uint64_t> ids = arena.AllocateSpan<uint64_t>(count);
    for (size_t i = 0; i < count; ++i) {
      ids[i] = entries[i].metadata.id.value;
    }
    const std::span<size_t> order = arena.AllocateSpan<size_t>(count);
    std::iota(order.begin(), order.end(), size_t{0});
    // The drawn snapshot always ranks first; the rest sort by probability
    // (descending, ties by recency). Swapping it to the front and sorting
    // only the tail yields the same order as the old comparator that
    // special-cased first_index — (probability, id) is a strict total order
    // because pool ids are unique — without the per-element branch.
    std::swap(order[0], order[first_index]);
    std::sort(order.begin() + 1, order.end(), [&](size_t a, size_t b) {
      if (probabilities[a] != probabilities[b]) {
        return probabilities[a] > probabilities[b];
      }
      return ids[a] > ids[b];
    });
    decision.restore_candidates.reserve(count);
    for (const size_t index : order) {
      decision.restore_candidates.push_back(entries[index].metadata.id);
    }
    const PoolEntry& chosen = entries[first_index];
    decision.restore_from = chosen.metadata.id;
    start_request = chosen.metadata.request_number;
  }
  decision.checkpoint_at_request = DrawCheckpointRequest(state, start_request, rng);
  return decision;
}

void RequestCentricPolicy::OnRequestComplete(PolicyState& state, uint64_t request_number,
                                             Duration latency) const {
  // OnRequest (lines 24-30): first observation initializes, later ones blend
  // with proportion alpha (handled inside WeightVector::Update).
  state.theta.Update(request_number, latency.ToSeconds(), config_.alpha);
}

std::vector<PoolEntry> RequestCentricPolicy::OnSnapshotAdded(PolicyState& state,
                                                             Rng& rng) const {
  // OnCapacityReached (lines 31-36).
  if (state.pool.size() <= config_.pool_capacity) {
    return {};
  }
  const std::vector<double> weights = SnapshotWeights(state);
  return state.pool.Prune(weights, config_.retain_top_percent,
                          config_.retain_random_percent, rng);
}

}  // namespace pronghorn
