// Pronghorn's request-centric orchestration policy (§3.4, Algorithm 1).

#ifndef PRONGHORN_SRC_CORE_REQUEST_CENTRIC_POLICY_H_
#define PRONGHORN_SRC_CORE_REQUEST_CENTRIC_POLICY_H_

#include "src/core/policy.h"

namespace pronghorn {

// The paper's contribution. Maintains an EWMA weight vector theta of
// per-request-number latencies and drives four decisions:
//
//  1. When to checkpoint (OnWorkerStart): the target request number is drawn
//     from the worker's expected lifetime interval with probability inversely
//     proportional to learned latency — unexplored request numbers (theta=0)
//     receive enormous weight, so the policy explores the request range
//     before exploiting low-latency regions. Checkpoints are never planned
//     beyond W.
//  2. Which snapshot to restore (OnWorkerStart): each pooled snapshot is
//     scored by its average inverse lifetime latency, and the restore source
//     is drawn from softmax(scores) — low-latency snapshots dominate, but
//     high-latency regions keep nonzero probability (local-optima escape).
//  3. How to update knowledge (OnRequestComplete): EWMA per request number.
//  4. What to evict at capacity (OnSnapshotAdded): keep the top-p% by score
//     plus a random gamma% (hill-climbing), drop the rest.
class RequestCentricPolicy : public OrchestrationPolicy {
 public:
  // `config` must validate; construction with an invalid config is a
  // programming error checked by the factory below.
  static Result<RequestCentricPolicy> Create(const PolicyConfig& config);

  std::string_view name() const override { return "request-centric"; }

  StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const override;
  void OnRequestComplete(PolicyState& state, uint64_t request_number,
                         Duration latency) const override;
  std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state, Rng& rng) const override;

  // Scores all pool entries (GetSnapshotWeights of Algorithm 1): average
  // inverse lifetime latency per entry, parallel to state.pool.entries().
  std::vector<double> SnapshotWeights(const PolicyState& state) const;

  const PolicyConfig& config() const override { return config_; }

 private:
  explicit RequestCentricPolicy(const PolicyConfig& config) : config_(config) {}

  // Draws the checkpoint target for a worker starting at request `start`,
  // i.e. from the interval (start, min(start + beta, W)]; nullopt when the
  // interval is empty (worker already at/beyond W).
  std::optional<uint64_t> DrawCheckpointRequest(const PolicyState& state,
                                                uint64_t start, Rng& rng) const;

  PolicyConfig config_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_REQUEST_CENTRIC_POLICY_H_
