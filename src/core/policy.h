// Orchestration policy abstraction.
//
// The paper's Orchestrator "executes policies through a minimal abstract
// interface" (§4): a policy decides which snapshot a new worker restores
// from, when a running worker is checkpointed, how the learned state updates
// on every request, and which snapshots survive when the pool fills up.

#ifndef PRONGHORN_SRC_CORE_POLICY_H_
#define PRONGHORN_SRC_CORE_POLICY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "src/checkpoint/snapshot.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/common/small_vector.h"
#include "src/core/policy_config.h"
#include "src/core/snapshot_pool.h"
#include "src/core/weight_vector.h"

namespace pronghorn {

// The global, per-function learned state shared by all workers through the
// Database: the weight vector theta and the snapshot pool P.
struct PolicyState {
  explicit PolicyState(const PolicyConfig& config)
      : theta(config.WeightVectorLength()) {}
  PolicyState(WeightVector theta_in, SnapshotPool pool_in)
      : theta(std::move(theta_in)), pool(std::move(pool_in)) {}

  WeightVector theta;
  SnapshotPool pool;
  // Restore-failure counts per snapshot id — the poisoned-snapshot ledger.
  // Incremented when a pooled snapshot fails to decode/restore, cleared on a
  // later success; a snapshot reaching the orchestrator's quarantine
  // threshold is evicted from the pool and its blob deleted.
  std::map<uint64_t, uint32_t> restore_failures;
  // Exactly-once ledger for journaled group commits: the highest journal
  // sequence number committed per commit scope (a service slot index). The
  // mark advances atomically with the knowledge writes it covers — in the
  // same CAS — so a crash-recovery replay of the write-ahead journal can
  // dedup records already applied (sequence <= mark) without double-counting
  // a single observation. Empty for functions never served in journaled mode.
  std::map<uint32_t, uint64_t> commit_marks;

  bool operator==(const PolicyState&) const = default;
};

// Decisions made when a new worker launches (Algorithm 1, parts 1 and 2).
struct StartDecision {
  // Inline capacity covering the paper's pool (C = 12, plus one in-flight):
  // decisions in the steady state never touch the heap.
  using CandidateList = SmallVector<SnapshotId, 16>;

  // Snapshot to restore from; nullopt means cold start.
  std::optional<SnapshotId> restore_from;
  // Ranked fallback candidates, best first; when non-empty the front entry
  // equals restore_from. The orchestrator walks this list when a restore
  // attempt fails (missing object, corrupt image) before cold-starting.
  CandidateList restore_candidates;
  // Absolute request number (JIT maturity) at which to checkpoint this
  // worker; nullopt means never.
  std::optional<uint64_t> checkpoint_at_request;
};

class OrchestrationPolicy {
 public:
  virtual ~OrchestrationPolicy() = default;

  virtual std::string_view name() const = 0;

  // The parameters this policy runs with. Baselines report defaults; the
  // platform uses this to size fresh weight vectors consistently.
  virtual const PolicyConfig& config() const = 0;

  // Called when the platform launches a new worker. `rng` provides the
  // policy's randomness (softmax draw, checkpoint-request draw).
  virtual StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const = 0;

  // Called after every request completes with the worker's absolute request
  // number (maturity index of the request just served) and its end-to-end
  // latency; updates the learned state (Algorithm 1, part 3).
  virtual void OnRequestComplete(PolicyState& state, uint64_t request_number,
                                 Duration latency) const = 0;

  // Called after a new snapshot enters the pool; returns the entries to
  // evict (and delete from the object store) if the capacity rule fires
  // (Algorithm 1, part 4).
  virtual std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state,
                                                 Rng& rng) const = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_POLICY_H_
