#include "src/core/policy_state_store.h"

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace pronghorn {

namespace {

constexpr uint32_t kStateFormatVersion = 1;
// A CAS loop that spins this long indicates a livelock bug, not contention.
constexpr int kMaxCasAttempts = 1000;
// Transient (kUnavailable) database failures are retried this many times
// before surfacing; production stores expose the same retry discipline.
constexpr int kMaxTransientRetries = 8;

}  // namespace

std::vector<uint8_t> EncodePolicyState(const PolicyState& state) {
  ByteWriter writer;
  writer.WriteUint32(kStateFormatVersion);
  state.theta.Serialize(writer);
  state.pool.Serialize(writer);
  return writer.TakeData();
}

Result<PolicyState> DecodePolicyState(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  PRONGHORN_ASSIGN_OR_RETURN(uint32_t version, reader.ReadUint32());
  if (version != kStateFormatVersion) {
    return DataLossError("unsupported policy state version " + std::to_string(version));
  }
  PRONGHORN_ASSIGN_OR_RETURN(WeightVector theta, WeightVector::Deserialize(reader));
  PRONGHORN_ASSIGN_OR_RETURN(SnapshotPool pool, SnapshotPool::Deserialize(reader));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after policy state");
  }
  return PolicyState(std::move(theta), std::move(pool));
}

PolicyStateStore::PolicyStateStore(KvDatabase& db, std::string function,
                                   const PolicyConfig& config)
    : db_(db), function_(std::move(function)), config_(config) {}

Result<PolicyState> PolicyStateStore::Load() const {
  for (int attempt = 0;; ++attempt) {
    auto blob = db_.Get(StateKey());
    if (blob.ok()) {
      return DecodePolicyState(*blob);
    }
    if (blob.status().code() == StatusCode::kNotFound) {
      return PolicyState(config_);
    }
    if (blob.status().code() != StatusCode::kUnavailable ||
        attempt >= kMaxTransientRetries) {
      return blob.status();
    }
    PRONGHORN_LOG_DEBUG("transient load failure for '%s' (attempt %d): %s",
                        function_.c_str(), attempt + 1,
                        blob.status().ToString().c_str());
  }
}

Status PolicyStateStore::Update(const std::function<void(PolicyState&)>& mutate) {
  int transient_failures = 0;
  for (int attempt = 0; attempt < kMaxCasAttempts; ++attempt) {
    uint64_t version = 0;
    PolicyState state(config_);
    auto versioned = db_.GetVersioned(StateKey());
    if (versioned.ok()) {
      version = versioned->version;
      PRONGHORN_ASSIGN_OR_RETURN(state, DecodePolicyState(versioned->value));
    } else if (versioned.status().code() == StatusCode::kUnavailable) {
      if (++transient_failures > kMaxTransientRetries) {
        return versioned.status();
      }
      continue;
    } else if (versioned.status().code() != StatusCode::kNotFound) {
      return versioned.status();
    }

    mutate(state);

    Status cas = db_.CompareAndSwap(StateKey(), version, EncodePolicyState(state));
    if (cas.ok()) {
      return OkStatus();
    }
    if (cas.code() == StatusCode::kUnavailable) {
      if (++transient_failures > kMaxTransientRetries) {
        return cas;
      }
      continue;
    }
    if (cas.code() != StatusCode::kAborted) {
      return cas;
    }
    PRONGHORN_LOG_DEBUG("CAS conflict updating state for '%s' (attempt %d)",
                        function_.c_str(), attempt + 1);
  }
  return InternalError("policy state CAS loop exceeded " +
                       std::to_string(kMaxCasAttempts) + " attempts for " + function_);
}

Result<SnapshotId> PolicyStateStore::AllocateSnapshotId() {
  for (int attempt = 0;; ++attempt) {
    auto next = db_.Increment(SequenceKey());
    if (next.ok()) {
      return SnapshotId{static_cast<uint64_t>(*next)};
    }
    if (next.status().code() != StatusCode::kUnavailable ||
        attempt >= kMaxTransientRetries) {
      return next.status();
    }
  }
}

}  // namespace pronghorn
