#include "src/core/policy_state_store.h"

#include <algorithm>
#include <cmath>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/common/mathutil.h"

namespace pronghorn {

namespace {

// Version 2 appended the restore-failure ledger to the v1 theta+pool layout;
// version 3 appends the per-slot commit high-water marks that make journaled
// group commits exactly-once across service crashes.
constexpr uint32_t kStateFormatVersion = 3;

// FNV-1a over the function name: a stable seed for the per-store jitter
// stream (std::hash is not portable across standard libraries).
uint64_t StableNameHash(std::string_view name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

void EncodePolicyStateInto(const PolicyState& state, ByteWriter& writer) {
  writer.WriteUint32(kStateFormatVersion);
  state.theta.Serialize(writer);
  state.pool.Serialize(writer);
  writer.WriteVarint(state.restore_failures.size());
  for (const auto& [id, count] : state.restore_failures) {
    writer.WriteVarint(id);
    writer.WriteVarint(count);
  }
  writer.WriteVarint(state.commit_marks.size());
  for (const auto& [scope, mark] : state.commit_marks) {
    writer.WriteVarint(scope);
    writer.WriteVarint(mark);
  }
}

std::vector<uint8_t> EncodePolicyState(const PolicyState& state) {
  ByteWriter writer;
  EncodePolicyStateInto(state, writer);
  return writer.TakeData();
}

Result<PolicyState> DecodePolicyState(std::span<const uint8_t> bytes) {
  ByteReader reader(bytes);
  PRONGHORN_ASSIGN_OR_RETURN(uint32_t version, reader.ReadUint32());
  if (version != kStateFormatVersion) {
    return DataLossError("unsupported policy state version " + std::to_string(version));
  }
  PRONGHORN_ASSIGN_OR_RETURN(WeightVector theta, WeightVector::Deserialize(reader));
  PRONGHORN_ASSIGN_OR_RETURN(SnapshotPool pool, SnapshotPool::Deserialize(reader));
  PolicyState state(std::move(theta), std::move(pool));
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t failures, reader.ReadVarint());
  for (uint64_t i = 0; i < failures; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    state.restore_failures[id] = static_cast<uint32_t>(count);
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t marks, reader.ReadVarint());
  for (uint64_t i = 0; i < marks; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t scope, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t mark, reader.ReadVarint());
    state.commit_marks[static_cast<uint32_t>(scope)] = mark;
  }
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after policy state");
  }
  return state;
}

PolicyStateStore::PolicyStateStore(KvDatabase& db, std::string function,
                                   const PolicyConfig& config, SimClock* clock,
                                   StateStoreRetryPolicy retry, bool enable_cache)
    : db_(db),
      function_(std::move(function)),
      state_key_("policy/" + function_ + "/state"),
      sequence_key_("policy/" + function_ + "/next-snapshot-id"),
      config_(config),
      clock_(clock),
      retry_(retry),
      cache_enabled_(enable_cache),
      jitter_rng_(HashCombine(0xbac0ffULL, StableNameHash(function_))) {}

void PolicyStateStore::InvalidateCache() const {
  if (cached_state_.has_value()) {
    cache_stats_.invalidations += 1;
    cached_state_.reset();
  }
}

void PolicyStateStore::RememberState(const PolicyState& state, uint64_t version) const {
  if (!cache_enabled_) {
    return;
  }
  cached_state_ = state;
  cached_version_ = version;
}

std::vector<uint8_t> PolicyStateStore::EncodeForCas(const PolicyState& state) const {
  encode_buffer_.Clear();
  EncodePolicyStateInto(state, encode_buffer_);
  return encode_buffer_.data();
}

void PolicyStateStore::Backoff(int retry_index) const {
  Duration delay = CappedExponentialBackoff(retry_.backoff_base,
                                            retry_.backoff_multiplier,
                                            retry_index, retry_.backoff_cap);
  // Deterministic jitter in [50%, 100%] de-synchronizes contending workers
  // without sacrificing reproducibility.
  delay = delay * (0.5 + 0.5 * jitter_rng_.UniformDouble());
  stats_.total_backoff += delay;
  if (clock_ != nullptr) {
    clock_->Advance(delay);
  }
}

Result<PolicyState> PolicyStateStore::Load() const {
  // GetVersioned instead of Get so the blob's version can key the decoded
  // cache; the two read paths share one fault draw and one accounting bump,
  // so this is trajectory-neutral.
  stats_.loads += 1;
  for (int attempt = 0;; ++attempt) {
    auto versioned = db_.GetVersioned(StateKey());
    if (versioned.ok()) {
      if (cache_enabled_ && cached_state_.has_value() &&
          cached_version_ == versioned->version) {
        cache_stats_.hits += 1;
        return *cached_state_;
      }
      auto decoded = DecodePolicyState(versioned->value);
      if (!decoded.ok()) {
        InvalidateCache();
        return decoded.status();
      }
      if (cache_enabled_) {
        cache_stats_.misses += 1;
        RememberState(*decoded, versioned->version);
      }
      return decoded;
    }
    if (versioned.status().code() == StatusCode::kNotFound) {
      // A fresh function has no blob; a (hypothetical) deleted-and-recreated
      // key would restart its version sequence, so drop any stale cache.
      InvalidateCache();
      return PolicyState(config_);
    }
    if (versioned.status().code() != StatusCode::kUnavailable ||
        attempt >= retry_.max_transient_retries) {
      return versioned.status();
    }
    stats_.transient_retries += 1;
    InvalidateCache();  // Injected fault: distrust everything held locally.
    Backoff(attempt);
    PRONGHORN_LOG_DEBUG("transient load failure for '%s' (attempt %d): %s",
                        function_.c_str(), attempt + 1,
                        versioned.status().ToString().c_str());
  }
}

Status PolicyStateStore::Update(const std::function<void(PolicyState&)>& mutate) {
  stats_.updates += 1;
  int transient_failures = 0;
  int conflicts = 0;
  for (int attempt = 0; attempt < retry_.max_cas_attempts; ++attempt) {
    uint64_t version = 0;
    PolicyState state(config_);
    auto versioned = db_.GetVersioned(StateKey());
    if (versioned.ok()) {
      version = versioned->version;
      if (cache_enabled_ && cached_state_.has_value() && cached_version_ == version) {
        // Cache hit: the blob at this version is the one we decoded (or
        // wrote) last time, so skip DecodePolicyState. Move the state out —
        // the CAS below either re-installs the mutated successor or
        // invalidates, so the pristine copy is never needed again.
        cache_stats_.hits += 1;
        state = *std::move(cached_state_);
        cached_state_.reset();
      } else {
        auto decoded = DecodePolicyState(versioned->value);
        if (!decoded.ok()) {
          InvalidateCache();
          return decoded.status();
        }
        if (cache_enabled_) {
          cache_stats_.misses += 1;
        }
        state = *std::move(decoded);
      }
    } else if (versioned.status().code() == StatusCode::kUnavailable) {
      if (++transient_failures > retry_.max_transient_retries) {
        return versioned.status();
      }
      stats_.transient_retries += 1;
      InvalidateCache();
      Backoff(transient_failures - 1);
      continue;
    } else if (versioned.status().code() != StatusCode::kNotFound) {
      return versioned.status();
    } else {
      InvalidateCache();  // Fresh key: any cached version tag is meaningless.
    }

    mutate(state);

    stats_.cas_attempts += 1;
    Status cas = db_.CompareAndSwap(StateKey(), version, EncodeForCas(state));
    if (cas.ok()) {
      if (cache_enabled_) {
        // A successful CAS at `version` installs the blob at version + 1;
        // the mutated state is exactly what that blob decodes to.
        cached_state_ = std::move(state);
        cached_version_ = version + 1;
      }
      return OkStatus();
    }
    InvalidateCache();
    if (cas.code() == StatusCode::kUnavailable) {
      if (++transient_failures > retry_.max_transient_retries) {
        return cas;
      }
      stats_.transient_retries += 1;
      Backoff(transient_failures - 1);
      continue;
    }
    if (cas.code() != StatusCode::kAborted) {
      return cas;
    }
    stats_.cas_conflicts += 1;
    Backoff(conflicts++);
    PRONGHORN_LOG_DEBUG("CAS conflict updating state for '%s' (attempt %d)",
                        function_.c_str(), attempt + 1);
  }
  return InternalError("policy state CAS loop exceeded " +
                       std::to_string(retry_.max_cas_attempts) + " attempts for " +
                       function_);
}

Result<SnapshotId> PolicyStateStore::AllocateSnapshotId() {
  for (int attempt = 0;; ++attempt) {
    auto next = db_.Increment(SequenceKey());
    if (next.ok()) {
      return SnapshotId{static_cast<uint64_t>(*next)};
    }
    if (next.status().code() != StatusCode::kUnavailable ||
        attempt >= retry_.max_transient_retries) {
      return next.status();
    }
    stats_.transient_retries += 1;
    Backoff(attempt);
  }
}

}  // namespace pronghorn
