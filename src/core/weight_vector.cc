#include "src/core/weight_vector.h"

#include <algorithm>

#include "src/common/mathutil.h"

namespace pronghorn {

void WeightVector::Update(uint64_t request_number, double latency_seconds, double alpha) {
  if (request_number >= values_.size() || latency_seconds <= 0.0) {
    return;
  }
  double& entry = values_[request_number];
  if (entry == 0.0) {
    entry = latency_seconds;  // First observation initializes (line 26).
  } else {
    entry = EwmaUpdate(entry, latency_seconds, alpha);  // Line 28.
  }
}

double WeightVector::At(uint64_t request_number) const {
  if (request_number >= values_.size()) {
    return 0.0;
  }
  return values_[request_number];
}

uint32_t WeightVector::ExploredCount() const {
  uint32_t count = 0;
  for (double v : values_) {
    if (v > 0.0) {
      ++count;
    }
  }
  return count;
}

std::vector<double> WeightVector::InverseWeights(uint64_t lo, uint64_t hi,
                                                 double mu) const {
  std::vector<double> weights;
  if (lo > hi) {
    return weights;
  }
  const uint64_t clamped_hi = std::min<uint64_t>(hi, values_.size() - 1);
  if (lo > clamped_hi) {
    return weights;
  }
  weights.reserve(clamped_hi - lo + 1);
  for (uint64_t i = lo; i <= clamped_hi; ++i) {
    weights.push_back(InverseWeight(values_[i], mu));
  }
  return weights;
}

double WeightVector::LifetimeWeight(uint64_t start, uint32_t beta, double mu) const {
  // Entries beyond the learned window contribute as unexplored (theta = 0),
  // keeping the exploration bonus for snapshots near the window's edge.
  double sum = 0.0;
  for (uint64_t i = start; i <= start + beta; ++i) {
    sum += InverseWeight(At(i), mu);
  }
  return sum / static_cast<double>(beta);
}

double WeightVector::LifetimeLatencySum(uint64_t start, uint32_t beta) const {
  double sum = 0.0;
  for (uint64_t i = start; i <= start + beta; ++i) {
    sum += At(i);
  }
  return sum;
}

void WeightVector::Serialize(ByteWriter& writer) const {
  writer.WriteVarint(values_.size());
  for (double v : values_) {
    writer.WriteDouble(v);
  }
}

Result<WeightVector> WeightVector::Deserialize(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t length, reader.ReadVarint());
  if (length == 0 || length > (1u << 24)) {
    return DataLossError("implausible weight vector length");
  }
  WeightVector vector(static_cast<uint32_t>(length));
  for (uint64_t i = 0; i < length; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(double v, reader.ReadDouble());
    if (v < 0.0) {
      return DataLossError("negative latency in weight vector");
    }
    vector.values_[i] = v;
  }
  return vector;
}

}  // namespace pronghorn
