#include "src/core/weight_vector.h"

#include <algorithm>
#include <cassert>

#include "src/common/mathutil.h"

namespace pronghorn {

void WeightVector::Update(uint64_t request_number, double latency_seconds, double alpha) {
  if (request_number >= values_.size() || latency_seconds <= 0.0) {
    return;
  }
  double& entry = values_[request_number];
  if (entry == 0.0) {
    entry = latency_seconds;  // First observation initializes (line 26).
    // First observations are positive and EWMA blends of positives stay
    // positive, so "explored" is monotone: the count only ever grows.
    explored_count_ += 1;
  } else {
    entry = EwmaUpdate(entry, latency_seconds, alpha);  // Line 28.
  }
  if (inv_valid_) {
    inv_[request_number] = InverseWeight(entry, inv_mu_);
  }
  if (lw_valid_) {
    // Lifetime windows [start, start+beta] containing request_number are now
    // stale; everything else keeps its memoized fold.
    const uint64_t first =
        request_number > lw_beta_ ? request_number - lw_beta_ : 0;
    const uint64_t last = std::min<uint64_t>(request_number, lw_fresh_.size() - 1);
    for (uint64_t s = first; s <= last; ++s) {
      lw_fresh_[s] = 0;
    }
  }
}

double WeightVector::At(uint64_t request_number) const {
  if (request_number >= values_.size()) {
    return 0.0;
  }
  return values_[request_number];
}

uint32_t WeightVector::ScanExploredCount() const {
  uint32_t count = 0;
  for (double v : values_) {
    if (v > 0.0) {
      ++count;
    }
  }
  return count;
}

uint32_t WeightVector::ExploredCount() const {
  assert(explored_count_ == ScanExploredCount());
  return explored_count_;
}

void WeightVector::EnsureInverseCache(double mu) const {
  if (inv_valid_ && inv_mu_ == mu) {
    return;
  }
  inv_.resize(values_.size());
  // Bulk element-wise rebuild (SIMD where available; bit-identical to the
  // scalar InverseWeight loop — see mathutil.h).
  InverseWeightsInto(values_, mu, inv_);
  inv_mu_ = mu;
  inv_valid_ = true;
}

std::span<const double> WeightVector::InverseWeightsSpan(uint64_t lo, uint64_t hi,
                                                         double mu) const {
  if (lo > hi || values_.empty()) {
    return {};
  }
  const uint64_t clamped_hi = std::min<uint64_t>(hi, values_.size() - 1);
  if (lo > clamped_hi) {
    return {};
  }
  EnsureInverseCache(mu);
  return std::span<const double>(inv_.data() + lo, clamped_hi - lo + 1);
}

std::vector<double> WeightVector::InverseWeights(uint64_t lo, uint64_t hi,
                                                 double mu) const {
  const std::span<const double> view = InverseWeightsSpan(lo, hi, mu);
  return std::vector<double>(view.begin(), view.end());
}

double WeightVector::NaiveLifetimeWeight(uint64_t start, uint32_t beta,
                                         double mu) const {
  // Entries beyond the learned window contribute as unexplored (theta = 0),
  // keeping the exploration bonus for snapshots near the window's edge.
  //
  // The fold is restructured for the vector units without changing a bit:
  // the divisions 1/(theta[i]+mu) are independent element-wise operations
  // (computed in SIMD chunks through a stack buffer), while the additions
  // stay scalar in the original left-to-right order — so the result is
  // bit-for-bit the naive loop's (tests/vector_math_test.cc pins this).
  constexpr size_t kChunk = 128;
  double buffer[kChunk];
  const uint64_t end = start + beta;  // Inclusive.
  double sum = 0.0;
  uint64_t i = start;
  if (start < values_.size()) {
    const uint64_t in_range_hi = std::min<uint64_t>(end, values_.size() - 1);
    while (i <= in_range_hi) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(in_range_hi - i + 1, kChunk));
      InverseWeightsInto(std::span<const double>(values_.data() + i, n), mu,
                         std::span<double>(buffer, n));
      for (size_t j = 0; j < n; ++j) {
        sum += buffer[j];
      }
      i += n;
    }
  }
  const double unexplored = InverseWeight(0.0, mu);
  for (; i <= end; ++i) {
    sum += unexplored;
  }
  return sum / static_cast<double>(beta);
}

void WeightVector::EnsureLifetimeCache(uint32_t beta, double mu) const {
  if (lw_valid_ && lw_beta_ == beta && lw_mu_ == mu) {
    return;
  }
  lw_memo_.assign(values_.size(), 0.0);
  lw_fresh_.assign(values_.size(), 0);
  lw_beta_ = beta;
  lw_mu_ = mu;
  lw_valid_ = true;
}

double WeightVector::LifetimeWeight(uint64_t start, uint32_t beta, double mu) const {
  if (beta == 0 || start >= values_.size()) {
    // Degenerate or off-the-end windows are rare and constant-cost; keep
    // them out of the memo.
    return NaiveLifetimeWeight(start, beta, mu);
  }
  EnsureLifetimeCache(beta, mu);
  if (lw_fresh_[start] == 0) {
    lw_memo_[start] = NaiveLifetimeWeight(start, beta, mu);
    lw_fresh_[start] = 1;
  }
  return lw_memo_[start];
}

double WeightVector::LifetimeLatencySum(uint64_t start, uint32_t beta) const {
  double sum = 0.0;
  for (uint64_t i = start; i <= start + beta; ++i) {
    sum += At(i);
  }
  return sum;
}

void WeightVector::Serialize(ByteWriter& writer) const {
  writer.WriteVarint(values_.size());
  for (double v : values_) {
    writer.WriteDouble(v);
  }
}

Result<WeightVector> WeightVector::Deserialize(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t length, reader.ReadVarint());
  if (length == 0 || length > (1u << 24)) {
    return DataLossError("implausible weight vector length");
  }
  WeightVector vector(static_cast<uint32_t>(length));
  for (uint64_t i = 0; i < length; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(double v, reader.ReadDouble());
    if (v < 0.0) {
      return DataLossError("negative latency in weight vector");
    }
    vector.values_[i] = v;
  }
  vector.explored_count_ = vector.ScanExploredCount();
  return vector;
}

}  // namespace pronghorn
