// Database-backed persistence of the per-function PolicyState.
//
// Workflow steps 3, 4, and 8 of §3.2: after every request the orchestrator
// writes latency knowledge to the Database; before decisions it refreshes its
// view (other workers may have updated it concurrently); after a checkpoint
// it records the snapshot's location and metadata. Concurrent updates are
// serialized with versioned compare-and-swap over the state blob.

#ifndef PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_
#define PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_

#include <functional>
#include <string>

#include "src/core/policy.h"
#include "src/store/kv_database.h"

namespace pronghorn {

// Serializes a PolicyState to the Database blob format (versioned, CRC-free:
// the Database is trusted storage, unlike snapshot images in flight).
std::vector<uint8_t> EncodePolicyState(const PolicyState& state);
Result<PolicyState> DecodePolicyState(std::span<const uint8_t> bytes);

class PolicyStateStore {
 public:
  // `function` scopes all keys; `config` sizes fresh weight vectors.
  PolicyStateStore(KvDatabase& db, std::string function, const PolicyConfig& config);

  // Loads the current state; a function never seen before gets a fresh
  // zero-initialized state.
  Result<PolicyState> Load() const;

  // Applies `mutate` atomically via a CAS retry loop. The mutator may be
  // invoked multiple times (on conflict it re-runs against the fresh state),
  // so it must be idempotent with respect to external effects.
  Status Update(const std::function<void(PolicyState&)>& mutate);

  // Allocates a globally unique snapshot id from the Database sequence.
  Result<SnapshotId> AllocateSnapshotId();

  const std::string& function() const { return function_; }

 private:
  std::string StateKey() const { return "policy/" + function_ + "/state"; }
  std::string SequenceKey() const { return "policy/" + function_ + "/next-snapshot-id"; }

  KvDatabase& db_;
  std::string function_;
  PolicyConfig config_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_
