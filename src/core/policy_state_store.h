// Database-backed persistence of the per-function PolicyState.
//
// Workflow steps 3, 4, and 8 of §3.2: after every request the orchestrator
// writes latency knowledge to the Database; before decisions it refreshes its
// view (other workers may have updated it concurrently); after a checkpoint
// it records the snapshot's location and metadata. Concurrent updates are
// serialized with versioned compare-and-swap over the state blob.
//
// Retry discipline: CAS conflicts and transient (kUnavailable) failures are
// retried with capped exponential backoff plus deterministic jitter, paid in
// *simulated* time when the store holds a clock. The jitter stream is seeded
// from the function name, so retry schedules are bit-reproducible and
// independent of thread scheduling.

#ifndef PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_
#define PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_

#include <functional>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/policy.h"
#include "src/store/kv_database.h"

namespace pronghorn {

// Serializes a PolicyState to the Database blob format (versioned, CRC-free:
// the Database is trusted storage, unlike snapshot images in flight).
std::vector<uint8_t> EncodePolicyState(const PolicyState& state);
// Appends the same encoding to a caller-owned writer, so a long-lived buffer
// can be reused across encodes without re-growing (call writer.Clear() first).
void EncodePolicyStateInto(const PolicyState& state, ByteWriter& writer);
Result<PolicyState> DecodePolicyState(std::span<const uint8_t> bytes);

// Bounds and shape of the store's retry loops.
struct StateStoreRetryPolicy {
  // A CAS loop this long under backoff indicates a livelock bug, not
  // contention.
  int max_cas_attempts = 64;
  // Transient (kUnavailable) failures retried per operation before
  // surfacing.
  int max_transient_retries = 8;
  // Exponential backoff: base * multiplier^n, capped, jittered to
  // [50%, 100%] of the nominal delay.
  Duration backoff_base = Duration::Millis(2);
  double backoff_multiplier = 2.0;
  Duration backoff_cap = Duration::Millis(250);
};

// Cumulative operation accounting (attempt/conflict/retry counts surface in
// the platform's fault-recovery reports).
struct StateStoreStats {
  uint64_t loads = 0;
  uint64_t updates = 0;
  uint64_t cas_attempts = 0;
  uint64_t cas_conflicts = 0;
  uint64_t transient_retries = 0;
  Duration total_backoff;
};

// Decoded-state cache accounting. Kept separate from StateStoreStats on
// purpose: those counters fold into digest-covered fault reports, and cache
// effectiveness must never influence a digest (the cache is a pure
// optimization — trajectories are identical with it on or off).
struct StateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
};

class PolicyStateStore {
 public:
  // `function` scopes all keys; `config` sizes fresh weight vectors. `clock`
  // (borrowed, may be null) receives backoff delays in simulated time.
  // `enable_cache` keeps the last decoded state plus its DB version so the
  // common CAS-success path skips DecodePolicyState; disabling it is
  // digest-neutral (the knob exists for the equivalence tests and the
  // --no-state-cache flag).
  PolicyStateStore(KvDatabase& db, std::string function, const PolicyConfig& config,
                   SimClock* clock = nullptr,
                   StateStoreRetryPolicy retry = StateStoreRetryPolicy{},
                   bool enable_cache = true);

  // Loads the current state; a function never seen before gets a fresh
  // zero-initialized state.
  Result<PolicyState> Load() const;

  // Applies `mutate` atomically via a CAS retry loop. The mutator may be
  // invoked multiple times (on conflict it re-runs against the fresh state),
  // so it must be idempotent with respect to external effects.
  Status Update(const std::function<void(PolicyState&)>& mutate);

  // Allocates a globally unique snapshot id from the Database sequence.
  Result<SnapshotId> AllocateSnapshotId();

  const std::string& function() const { return function_; }
  const StateStoreStats& stats() const { return stats_; }
  const StateCacheStats& cache_stats() const { return cache_stats_; }
  bool cache_enabled() const { return cache_enabled_; }

 private:
  // Both keys are fixed at construction; materializing them once keeps the
  // per-request Get/CAS pair free of string concatenation.
  const std::string& StateKey() const { return state_key_; }
  const std::string& SequenceKey() const { return sequence_key_; }

  // Sleeps the simulated clock for the nth backoff of one operation and
  // accounts it. Safe without a clock (still counts, no time passes).
  void Backoff(int retry_index) const;

  // Cache maintenance. Invalidate drops the cached state (CAS failure,
  // injected fault, decode error); Remember installs a fresh (state,
  // version) pair. Both are no-ops with the cache disabled.
  void InvalidateCache() const;
  void RememberState(const PolicyState& state, uint64_t version) const;

  // Encodes through the reusable buffer: no buffer growth after warm-up,
  // one exact-size allocation for the CAS-owned copy.
  std::vector<uint8_t> EncodeForCas(const PolicyState& state) const;

  KvDatabase& db_;
  std::string function_;
  std::string state_key_;
  std::string sequence_key_;
  PolicyConfig config_;
  SimClock* clock_;
  StateStoreRetryPolicy retry_;
  bool cache_enabled_;
  mutable Rng jitter_rng_;
  mutable StateStoreStats stats_;

  // Last decoded state and the DB version it decodes from. Decode(Encode(s))
  // reproduces s exactly (doubles travel as bit patterns), so serving the
  // cached copy is indistinguishable from re-decoding the stored blob.
  mutable std::optional<PolicyState> cached_state_;
  mutable uint64_t cached_version_ = 0;
  mutable StateCacheStats cache_stats_;
  mutable ByteWriter encode_buffer_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_POLICY_STATE_STORE_H_
