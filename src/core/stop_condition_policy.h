// Provider stop-condition wrapper (paper §5.1 "Stopping condition" and §5.3
// "Bounding system costs").
//
// "The cloud provider can always choose to stop checkpointing and use the
// best snapshot available in the pool thereafter" — empirically safe after
// W + 100 requests, at which point all further checkpoint/network overhead
// ceases while the performance benefit persists indefinitely.

#ifndef PRONGHORN_SRC_CORE_STOP_CONDITION_POLICY_H_
#define PRONGHORN_SRC_CORE_STOP_CONDITION_POLICY_H_

#include <atomic>
#include <cstdint>

#include "src/core/policy.h"

namespace pronghorn {

// Wraps any inner policy. Until `explore_requests` total requests have been
// observed, all decisions delegate to the inner policy. Afterwards the
// wrapper freezes: new workers restore from the snapshot with the best
// learned lifetime latency (deterministically — no more exploration) and no
// further checkpoints are planned.
class StopConditionPolicy : public OrchestrationPolicy {
 public:
  // `inner` is borrowed and must outlive this policy. `explore_requests` of
  // 0 freezes immediately (pure exploit of whatever the pool holds).
  StopConditionPolicy(const OrchestrationPolicy& inner, uint64_t explore_requests)
      : inner_(inner), explore_requests_(explore_requests) {}

  std::string_view name() const override { return "stop-condition"; }
  const PolicyConfig& config() const override { return inner_.config(); }

  StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const override;
  void OnRequestComplete(PolicyState& state, uint64_t request_number,
                         Duration latency) const override;
  std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state, Rng& rng) const override;

  // True once the exploration budget has been spent.
  bool frozen() const { return requests_seen_.load(std::memory_order_relaxed) >=
                               explore_requests_; }
  uint64_t requests_seen() const {
    return requests_seen_.load(std::memory_order_relaxed);
  }

 private:
  const OrchestrationPolicy& inner_;
  uint64_t explore_requests_;
  // Counts observed requests. Mutable because the policy interface is
  // logically stateless per call; this is bookkeeping, not decision state.
  mutable std::atomic<uint64_t> requests_seen_{0};
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_CORE_STOP_CONDITION_POLICY_H_
