#include "src/platform/metrics.h"

namespace pronghorn {

DistributionSummary SimulationReport::LatencySummary() const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    summary.Add(static_cast<double>(record.latency.ToMicros()));
  }
  return summary;
}

DistributionSummary SimulationReport::LatencySummaryForMaturity(uint64_t lo,
                                                                uint64_t hi) const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    if (record.request_number >= lo && record.request_number <= hi) {
      summary.Add(static_cast<double>(record.latency.ToMicros()));
    }
  }
  return summary;
}

double SimulationReport::MedianLatencyUs() const { return LatencySummary().Median(); }

void MergeAccounting(StoreAccounting& into, const StoreAccounting& from) {
  into.logical_bytes_stored += from.logical_bytes_stored;
  into.peak_logical_bytes += from.peak_logical_bytes;
  into.network_bytes_uploaded += from.network_bytes_uploaded;
  into.network_bytes_downloaded += from.network_bytes_downloaded;
  into.put_count += from.put_count;
  into.get_count += from.get_count;
  into.delete_count += from.delete_count;
  // Digest-excluded physical view: sums like the logical fields above (peaks
  // sum because shard-local stores coexist in time).
  into.physical.bytes_stored += from.physical.bytes_stored;
  into.physical.peak_bytes += from.physical.peak_bytes;
  into.physical.flat_bytes_stored += from.physical.flat_bytes_stored;
  into.physical.peak_flat_bytes += from.physical.peak_flat_bytes;
  into.physical.chunks_stored += from.physical.chunks_stored;
  into.physical.chunk_refs += from.physical.chunk_refs;
  into.physical.dedup_hits += from.physical.dedup_hits;
  into.physical.dedup_bytes_saved += from.physical.dedup_bytes_saved;
  into.physical.delta_bytes_shared += from.physical.delta_bytes_shared;
  into.physical.chunks_fetched += from.physical.chunks_fetched;
  into.physical.bytes_fetched += from.physical.bytes_fetched;
  into.physical.chunks_prefetched += from.physical.chunks_prefetched;
  into.physical.demand_faults += from.physical.demand_faults;
  into.physical.cache_hits += from.physical.cache_hits;
  into.physical.chunks_collected += from.physical.chunks_collected;
  into.physical.bytes_collected += from.physical.bytes_collected;
}

void MergeAccounting(KvAccounting& into, const KvAccounting& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.cas_attempts += from.cas_attempts;
  into.cas_conflicts += from.cas_conflicts;
}

void MergeOverheads(OrchestratorOverheads& into, const OrchestratorOverheads& from) {
  into.worker_starts += from.worker_starts;
  into.requests_served += from.requests_served;
  into.checkpoints_taken += from.checkpoints_taken;
  into.total_startup_overhead += from.total_startup_overhead;
  into.total_request_overhead += from.total_request_overhead;
  into.total_checkpoint_overhead += from.total_checkpoint_overhead;
}

void MergeFaultRecoveryStats(FaultRecoveryStats& into, const FaultRecoveryStats& from) {
  into.store_faults += from.store_faults;
  into.db_faults += from.db_faults;
  into.corrupted_puts += from.corrupted_puts;
  into.torn_puts += from.torn_puts;
  into.latency_injections += from.latency_injections;
  into.restore_retries += from.restore_retries;
  into.restore_failures += from.restore_failures;
  into.restore_fallbacks += from.restore_fallbacks;
  into.snapshots_quarantined += from.snapshots_quarantined;
  into.stale_entries_pruned += from.stale_entries_pruned;
  into.degraded_starts += from.degraded_starts;
  into.observations_buffered += from.observations_buffered;
  into.observations_replayed += from.observations_replayed;
  into.observations_dropped += from.observations_dropped;
  into.checkpoints_skipped += from.checkpoints_skipped;
  into.eviction_deletes_deferred += from.eviction_deletes_deferred;
  into.orphans_collected += from.orphans_collected;
  into.cas_attempts += from.cas_attempts;
  into.cas_conflicts += from.cas_conflicts;
  into.db_transient_retries += from.db_transient_retries;
}

void AccumulateStoreFaults(FaultRecoveryStats& into, const FaultInjectionStats& from) {
  into.store_faults += from.faults_injected;
  into.corrupted_puts += from.corrupted_puts;
  into.torn_puts += from.torn_puts;
  into.latency_injections += from.latency_injections;
}

void AccumulateDatabaseFaults(FaultRecoveryStats& into, const FaultInjectionStats& from) {
  into.db_faults += from.faults_injected;
  into.latency_injections += from.latency_injections;
}

void AccumulateRecovery(FaultRecoveryStats& into, const RecoveryStats& from) {
  into.restore_retries += from.restore_transient_retries;
  into.restore_failures += from.restore_attempt_failures;
  into.restore_fallbacks += from.restore_fallbacks;
  into.snapshots_quarantined += from.snapshots_quarantined;
  into.stale_entries_pruned += from.stale_entries_pruned;
  into.degraded_starts += from.degraded_starts;
  into.observations_buffered += from.observations_buffered;
  into.observations_replayed += from.observations_replayed;
  into.observations_dropped += from.observations_dropped;
  into.checkpoints_skipped += from.checkpoints_skipped;
  into.eviction_deletes_deferred += from.eviction_deletes_deferred;
  into.orphans_collected += from.orphans_collected;
}

void AccumulateStateStore(FaultRecoveryStats& into, const StateStoreStats& from) {
  into.cas_attempts += from.cas_attempts;
  into.cas_conflicts += from.cas_conflicts;
  into.db_transient_retries += from.transient_retries;
}

}  // namespace pronghorn
