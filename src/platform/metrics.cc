#include "src/platform/metrics.h"

namespace pronghorn {

DistributionSummary SimulationReport::LatencySummary() const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    summary.Add(static_cast<double>(record.latency.ToMicros()));
  }
  return summary;
}

DistributionSummary SimulationReport::LatencySummaryForMaturity(uint64_t lo,
                                                                uint64_t hi) const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    if (record.request_number >= lo && record.request_number <= hi) {
      summary.Add(static_cast<double>(record.latency.ToMicros()));
    }
  }
  return summary;
}

double SimulationReport::MedianLatencyUs() const { return LatencySummary().Median(); }

}  // namespace pronghorn
