#include "src/platform/metrics.h"

namespace pronghorn {

DistributionSummary SimulationReport::LatencySummary() const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    summary.Add(static_cast<double>(record.latency.ToMicros()));
  }
  return summary;
}

DistributionSummary SimulationReport::LatencySummaryForMaturity(uint64_t lo,
                                                                uint64_t hi) const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    if (record.request_number >= lo && record.request_number <= hi) {
      summary.Add(static_cast<double>(record.latency.ToMicros()));
    }
  }
  return summary;
}

double SimulationReport::MedianLatencyUs() const { return LatencySummary().Median(); }

void MergeAccounting(StoreAccounting& into, const StoreAccounting& from) {
  into.logical_bytes_stored += from.logical_bytes_stored;
  into.peak_logical_bytes += from.peak_logical_bytes;
  into.network_bytes_uploaded += from.network_bytes_uploaded;
  into.network_bytes_downloaded += from.network_bytes_downloaded;
  into.put_count += from.put_count;
  into.get_count += from.get_count;
  into.delete_count += from.delete_count;
}

void MergeAccounting(KvAccounting& into, const KvAccounting& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.cas_attempts += from.cas_attempts;
  into.cas_conflicts += from.cas_conflicts;
}

}  // namespace pronghorn
