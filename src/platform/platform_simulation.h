// Whole-platform simulation: many functions, one control plane.
//
// Mirrors the paper's deployment (Figure 2 at platform scale): a single
// global Database and Object Store serve every function's orchestrators,
// while each function gets its own worker, policy scope, and snapshot pool.
// The platform replays a multi-function invocation trace (arrival-ordered),
// applying a shared eviction regime (idle timeout + max lifetime).

#ifndef PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/orchestrator.h"
#include "src/platform/eviction.h"
#include "src/platform/metrics.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/trace/trace_file.h"
#include "src/workloads/input_model.h"

namespace pronghorn {

struct PlatformOptions {
  uint64_t seed = 1;
  bool input_noise = true;
  OrchestratorCostModel costs;
};

// Per-function results plus platform-wide accounting.
struct PlatformReport {
  std::map<std::string, SimulationReport> per_function;
  StoreAccounting object_store;
  KvAccounting database;

  // All functions' latencies merged.
  DistributionSummary GlobalLatencySummary() const;
  uint64_t TotalCheckpoints() const;
  uint64_t TotalLifetimes() const;
};

class PlatformSimulation {
 public:
  // `eviction` applies to every function's worker; borrowed.
  PlatformSimulation(const WorkloadRegistry& registry, const EvictionModel& eviction,
                     PlatformOptions options);
  ~PlatformSimulation();

  PlatformSimulation(const PlatformSimulation&) = delete;
  PlatformSimulation& operator=(const PlatformSimulation&) = delete;

  // Registers a function deployment under `profile.name`. The policy is
  // borrowed and must outlive the simulation. Fails on duplicate names.
  Status DeployFunction(const WorkloadProfile& profile,
                        const OrchestrationPolicy& policy);

  // Replays the trace in arrival order. Every record's function must have
  // been deployed. May be called repeatedly; state persists across calls.
  Result<PlatformReport> Replay(const InvocationTrace& trace);

  // Current learned state of one function.
  Result<PolicyState> LoadPolicyState(const std::string& function) const;

 private:
  struct Deployment {
    const WorkloadProfile* profile = nullptr;
    std::unique_ptr<PolicyStateStore> state_store;
    std::unique_ptr<Orchestrator> orchestrator;
    std::unique_ptr<InputModel> input_model;
    std::optional<WorkerSession> session;
    uint64_t requests_in_lifetime = 0;
    TimePoint worker_started_at;
    TimePoint free_at;
  };

  const WorkloadRegistry& registry_;
  const EvictionModel& eviction_;
  PlatformOptions options_;

  SimClock clock_;
  InMemoryKvDatabase db_;
  InMemoryObjectStore object_store_;
  CriuLikeEngine engine_;
  Rng client_rng_;
  std::map<std::string, Deployment> deployments_;
  uint64_t next_request_id_ = 1;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_
