// Whole-platform simulation: many functions, one control plane.
//
// Mirrors the paper's deployment (Figure 2 at platform scale): a single
// global Database and Object Store serve every function's orchestrators,
// while each function gets its own worker, policy scope, checkpoint engine,
// and snapshot pool. The platform replays a multi-function invocation trace
// (arrival-ordered), applying a shared eviction regime (idle timeout + max
// lifetime), or drives a closed loop across all deployments.
//
// This driver is the multi-deployment configuration of the shared kernel:
// one SimEnvironment, one single-slot deployment per function, everything
// sharing the stores and the clock. Each deployment's RNG substreams key off
// SimEnvironment::DeploymentSeed(seed, name), so results depend only on the
// experiment seed and the function names — not registration order.

#ifndef PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_

#include <map>
#include <string>

#include "src/platform/sim_environment.h"
#include "src/trace/trace_file.h"

namespace pronghorn {

// Per-function results plus platform-wide accounting. Per-function `faults`
// cover that function's orchestrator and state store; the platform-level
// `faults` additionally fold in the shared store/database decorators.
struct PlatformReport : ReportCore {
  std::map<std::string, SimulationReport> per_function;

  // All functions' latencies merged.
  DistributionSummary GlobalLatencySummary() const;
  uint64_t TotalCheckpoints() const;
  uint64_t TotalLifetimes() const;

  // CRC32 over the canonical serialization: per-function reports in name
  // order (report_io's SerializeFunctionReport) followed by the shared-store
  // accountings and fault stats. Comparable with FleetReport::Digest(): a
  // one-function fleet and a one-function platform produce identical bytes.
  uint32_t Digest() const;
};

class PlatformSimulation {
 public:
  // `eviction` applies to every function's worker; borrowed.
  PlatformSimulation(const WorkloadRegistry& registry, const EvictionModel& eviction,
                     SimOptions options);
  ~PlatformSimulation();

  PlatformSimulation(const PlatformSimulation&) = delete;
  PlatformSimulation& operator=(const PlatformSimulation&) = delete;

  // Registers a function deployment under `profile.name`. The policy is
  // borrowed and must outlive the simulation. Fails on duplicate names.
  Status DeployFunction(const WorkloadProfile& profile,
                        const OrchestrationPolicy& policy);

  // Replays the trace in arrival order. Every record's function must have
  // been deployed. May be called repeatedly; state persists across calls
  // (still-warm workers stay warm between replays).
  Result<PlatformReport> Replay(const InvocationTrace& trace);

  // Closed loop across all deployments: each request goes to the function
  // whose worker frees earliest (deployment order breaks ties). Still-warm
  // workers are retired at the end of the run.
  Result<PlatformReport> RunClosedLoop(uint64_t request_count);

  // Current learned state of one function.
  Result<PolicyState> LoadPolicyState(const std::string& function) const;

 private:
  const EvictionModel& eviction_;
  uint64_t seed_;
  SimEnvironment env_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_PLATFORM_SIMULATION_H_
