// CSV persistence of simulation results, mirroring the artifact's results/
// directory layout: one row per request plus a summary block, so downstream
// plotting (the paper's Evaluation.ipynb equivalent) can consume the data.

#ifndef PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
#define PRONGHORN_SRC_PLATFORM_REPORT_IO_H_

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"
#include "src/platform/cluster_simulation.h"
#include "src/platform/metrics.h"
#include "src/platform/sim_options.h"

namespace pronghorn {

// Per-request records as CSV:
//   global_index,request_number,latency_us,first_of_lifetime,cold_start,checkpoint_after
std::string RecordsToCsv(std::span<const RequestRecord> records);
Status WriteRecordsCsv(const SimulationReport& report, const std::string& path);
// Parses the format back (round trip for pipelines and tests).
Result<std::vector<RequestRecord>> RecordsFromCsv(std::string_view csv);
Result<std::vector<RequestRecord>> ReadRecordsCsv(const std::string& path);

// One-line key=value summary of a report (counters + medians) for logs.
// When fault/recovery counters are nonzero, a `faults=... recovered=...`
// block is appended.
std::string SummarizeReport(const SimulationReport& report);

// Key,value CSV of a report's scalar summary: latency percentiles, platform
// counters, store accountings, and every fault/recovery counter. The rows a
// results/ directory wants next to the per-request records.
std::string SummaryToCsv(const SimulationReport& report);
Status WriteSummaryCsv(const SimulationReport& report, const std::string& path);

// Canonical binary serialization of one deployment's SimulationReport: every
// record field, both role-split latency distributions (samples in recorded
// order), all lifecycle counters and durations, the control-plane overheads,
// and the fault/recovery stats. Deliberately excludes the store/database
// accountings, which belong to the environment (shared across functions in a
// platform run); digests serialize those once at the top level, which is what
// makes a one-function fleet digest comparable to a one-function platform
// digest. Two reports serialize to the same bytes iff the simulations behind
// them took identical decisions.
void SerializeFunctionReport(const SimulationReport& report, ByteWriter& writer);

// Building blocks for environment-level digests.
void SerializeStoreAccounting(const StoreAccounting& accounting, ByteWriter& writer);
void SerializeKvAccounting(const KvAccounting& accounting, ByteWriter& writer);
void SerializeFaultRecoveryStats(const FaultRecoveryStats& stats, ByteWriter& writer);

// The shared environment-level core, in the canonical digest order
// (object store, database, faults).
void SerializeReportCore(const ReportCore& core, ByteWriter& writer);

// Field-wise fold of one core into another (store/database accountings sum,
// fault counters sum). The one merge every multi-deployment driver uses.
void MergeReportCore(ReportCore& into, const ReportCore& from);

// One named per-function row of a multi-deployment digest.
struct NamedReportRef {
  std::string_view name;
  const SimulationReport* report = nullptr;
};

// CRC32 over the canonical multi-deployment serialization: every per-function
// report (name + SerializeFunctionReport) in the order given — callers pass
// name-sorted rows — followed by the shared core. PlatformReport::Digest(),
// FleetReport::Digest(), and SimReport::Digest() are all this function, which
// is what makes their digests directly comparable.
uint32_t ReportDigest(std::span<const NamedReportRef> per_function,
                      const ReportCore& core);

// Full flattened serialization of a single-environment report (a cluster or
// function run): SerializeFunctionReport plus the store accountings folded
// into the flat report. What the fleet determinism guarantee (and its test)
// hashes per function.
void SerializeClusterReport(const ClusterReport& report, ByteWriter& writer);

// CRC32 over SerializeClusterReport's bytes.
uint32_t ClusterReportCrc32(const ClusterReport& report);

// Exact inverses of the canonical serializers above, used by the simulation
// checkpoint (src/platform/sim_checkpoint.h) to restore folded reports after
// a crash. Round-trip contract: re-serializing a deserialized report yields
// byte-identical output (doubles travel as raw bits, samples in recorded
// order).
Status DeserializeStoreAccounting(ByteReader& reader, StoreAccounting& out);
Status DeserializeKvAccounting(ByteReader& reader, KvAccounting& out);
Status DeserializeFaultRecoveryStats(ByteReader& reader, FaultRecoveryStats& out);
Status DeserializeReportCore(ByteReader& reader, ReportCore& out);
Result<SimulationReport> DeserializeFunctionReport(ByteReader& reader);
Result<ClusterReport> DeserializeClusterReport(ByteReader& reader);

// Streaming, memory-bounded fold of per-function reports — the fleet-scale
// replacement for collect-then-merge. Shards call Fold() the moment their
// deployment finishes, in any order and from any thread; the accumulator
// keeps:
//   - the merged ReportCore + lifecycle counters (order-insensitive sums),
//   - an exact-merge LatencyHistogram over every request latency,
//   - one small digest row (name, CRC32, length) per folded function, and
//   - per-function report bodies only as the retention policy allows.
//
// Digest contract: Digest() equals ReportDigest() over ALL folded functions
// in canonical name order — in every retention mode — because each row's
// CRC covers exactly the bytes ReportDigest would have hashed for that
// function, and Crc32Combine stitches the rows (sorted by name) and the
// merged core back into the one-shot CRC without the bytes ever coexisting
// in memory. Keep-all mode additionally retains every report body, making
// the assembled FleetReport bit-identical to the historical path.
//
// Both bounded modes pick the retained subset as a pure function of the
// folded SET (never of fold order), so retained output is bit-stable across
// thread counts and shard completion orders.
class StreamingAccumulator {
 public:
  // One folded function's contribution to the canonical digest: the CRC32
  // and byte length of (WriteString(name) + SerializeFunctionReport(report)).
  struct DigestRow {
    std::string name;
    uint32_t crc = 0;
    uint64_t length = 0;
  };

  // Everything Take() hands back to the driver assembling the final report.
  struct Merged {
    ReportRetention retention = ReportRetention::kAll;
    ReportCore core;
    uint64_t worker_lifetimes = 0;
    uint64_t checkpoints = 0;
    uint64_t restores = 0;
    uint64_t cold_starts = 0;
    uint64_t functions_total = 0;
    uint64_t invocations_total = 0;
    LatencyHistogram latency_hist;
    // Retained report bodies in canonical (name) order; every folded
    // function under kAll, at most `k` under the bounded modes.
    std::map<std::string, ClusterReport> retained;
    // The canonical digest over all folded functions (see class comment).
    uint32_t digest = 0;
  };

  explicit StreamingAccumulator(RetentionOptions retention = RetentionOptions{});

  // Folds one finished deployment. Thread-safe; names must be unique.
  void Fold(std::string name, ClusterReport report);

  // True when `name` was already folded (the resume skip set).
  bool Contains(std::string_view name) const;

  uint64_t folded_count() const;
  uint64_t invocations_total() const;

  // The canonical digest over everything folded so far.
  uint32_t Digest() const;

  // Finalizes and moves the merged state out; the accumulator is empty after.
  Merged Take();

  // Checkpoint support: the full accumulator state as bytes, and its exact
  // restoration into a freshly constructed accumulator. Serialized state
  // embeds the retention options; RestoreState fails if they disagree with
  // this accumulator's (a resumed run must not silently change what the
  // report means), or if anything was already folded.
  void SerializeState(ByteWriter& writer) const;
  Status RestoreState(ByteReader& reader);

 private:
  void FoldLocked(std::string name, ClusterReport report);
  // Applies the retention bound after an insert (evicts the worst-ranked
  // retained entry when over budget).
  void EnforceRetentionLocked();

  RetentionOptions retention_;

  mutable std::mutex mutex_;
  ReportCore core_;
  uint64_t worker_lifetimes_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t restores_ = 0;
  uint64_t cold_starts_ = 0;
  uint64_t invocations_total_ = 0;
  LatencyHistogram latency_hist_;
  std::vector<DigestRow> rows_;
  std::set<std::string, std::less<>> folded_names_;
  std::map<std::string, ClusterReport> retained_;
  // Eviction ranks for the bounded modes: kTopLatency evicts the smallest
  // (median latency, name); kReservoir evicts the largest (hash, name).
  std::set<std::pair<double, std::string>> latency_rank_;
  std::set<std::pair<uint64_t, std::string>> hash_rank_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
