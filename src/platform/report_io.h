// CSV persistence of simulation results, mirroring the artifact's results/
// directory layout: one row per request plus a summary block, so downstream
// plotting (the paper's Evaluation.ipynb equivalent) can consume the data.

#ifndef PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
#define PRONGHORN_SRC_PLATFORM_REPORT_IO_H_

#include <string>

#include "src/common/bytes.h"
#include "src/platform/cluster_simulation.h"
#include "src/platform/metrics.h"

namespace pronghorn {

// Per-request records as CSV:
//   global_index,request_number,latency_us,first_of_lifetime,cold_start,checkpoint_after
std::string RecordsToCsv(std::span<const RequestRecord> records);
Status WriteRecordsCsv(const SimulationReport& report, const std::string& path);
// Parses the format back (round trip for pipelines and tests).
Result<std::vector<RequestRecord>> RecordsFromCsv(std::string_view csv);
Result<std::vector<RequestRecord>> ReadRecordsCsv(const std::string& path);

// One-line key=value summary of a report (counters + medians) for logs.
// When fault/recovery counters are nonzero, a `faults=... recovered=...`
// block is appended.
std::string SummarizeReport(const SimulationReport& report);

// Key,value CSV of a report's scalar summary: latency percentiles, platform
// counters, store accountings, and every fault/recovery counter. The rows a
// results/ directory wants next to the per-request records.
std::string SummaryToCsv(const SimulationReport& report);
Status WriteSummaryCsv(const SimulationReport& report, const std::string& path);

// Canonical binary serialization of a ClusterReport: every record field,
// both role-split latency distributions (samples in recorded order), all
// counters, and both accountings. Two reports serialize to the same bytes
// iff the simulations behind them took identical decisions, which is what
// the fleet determinism guarantee (and its test) hashes.
void SerializeClusterReport(const ClusterReport& report, ByteWriter& writer);

// CRC32 over SerializeClusterReport's bytes.
uint32_t ClusterReportCrc32(const ClusterReport& report);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
