// CSV persistence of simulation results, mirroring the artifact's results/
// directory layout: one row per request plus a summary block, so downstream
// plotting (the paper's Evaluation.ipynb equivalent) can consume the data.

#ifndef PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
#define PRONGHORN_SRC_PLATFORM_REPORT_IO_H_

#include <span>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/platform/cluster_simulation.h"
#include "src/platform/metrics.h"

namespace pronghorn {

// Per-request records as CSV:
//   global_index,request_number,latency_us,first_of_lifetime,cold_start,checkpoint_after
std::string RecordsToCsv(std::span<const RequestRecord> records);
Status WriteRecordsCsv(const SimulationReport& report, const std::string& path);
// Parses the format back (round trip for pipelines and tests).
Result<std::vector<RequestRecord>> RecordsFromCsv(std::string_view csv);
Result<std::vector<RequestRecord>> ReadRecordsCsv(const std::string& path);

// One-line key=value summary of a report (counters + medians) for logs.
// When fault/recovery counters are nonzero, a `faults=... recovered=...`
// block is appended.
std::string SummarizeReport(const SimulationReport& report);

// Key,value CSV of a report's scalar summary: latency percentiles, platform
// counters, store accountings, and every fault/recovery counter. The rows a
// results/ directory wants next to the per-request records.
std::string SummaryToCsv(const SimulationReport& report);
Status WriteSummaryCsv(const SimulationReport& report, const std::string& path);

// Canonical binary serialization of one deployment's SimulationReport: every
// record field, both role-split latency distributions (samples in recorded
// order), all lifecycle counters and durations, the control-plane overheads,
// and the fault/recovery stats. Deliberately excludes the store/database
// accountings, which belong to the environment (shared across functions in a
// platform run); digests serialize those once at the top level, which is what
// makes a one-function fleet digest comparable to a one-function platform
// digest. Two reports serialize to the same bytes iff the simulations behind
// them took identical decisions.
void SerializeFunctionReport(const SimulationReport& report, ByteWriter& writer);

// Building blocks for environment-level digests.
void SerializeStoreAccounting(const StoreAccounting& accounting, ByteWriter& writer);
void SerializeKvAccounting(const KvAccounting& accounting, ByteWriter& writer);
void SerializeFaultRecoveryStats(const FaultRecoveryStats& stats, ByteWriter& writer);

// The shared environment-level core, in the canonical digest order
// (object store, database, faults).
void SerializeReportCore(const ReportCore& core, ByteWriter& writer);

// Field-wise fold of one core into another (store/database accountings sum,
// fault counters sum). The one merge every multi-deployment driver uses.
void MergeReportCore(ReportCore& into, const ReportCore& from);

// One named per-function row of a multi-deployment digest.
struct NamedReportRef {
  std::string_view name;
  const SimulationReport* report = nullptr;
};

// CRC32 over the canonical multi-deployment serialization: every per-function
// report (name + SerializeFunctionReport) in the order given — callers pass
// name-sorted rows — followed by the shared core. PlatformReport::Digest(),
// FleetReport::Digest(), and SimReport::Digest() are all this function, which
// is what makes their digests directly comparable.
uint32_t ReportDigest(std::span<const NamedReportRef> per_function,
                      const ReportCore& core);

// Full flattened serialization of a single-environment report (a cluster or
// function run): SerializeFunctionReport plus the store accountings folded
// into the flat report. What the fleet determinism guarantee (and its test)
// hashes per function.
void SerializeClusterReport(const ClusterReport& report, ByteWriter& writer);

// CRC32 over SerializeClusterReport's bytes.
uint32_t ClusterReportCrc32(const ClusterReport& report);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_REPORT_IO_H_
