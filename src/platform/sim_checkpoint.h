// Resumable simulation checkpoints: crash-consistent snapshots of a running
// (or finished) experiment, so week-long fleet replays survive restarts
// (DESIGN.md §13).
//
// The simulator dogfoods its own checkpoint abstractions: a checkpoint file
// is a SnapshotImage (src/checkpoint/snapshot.h) whose payload is the
// serialized simulator state and whose metadata carries the experiment
// fingerprint — so the framing (magic, version, CRC32 trailer) and the
// corruption semantics (kDataLoss on torn or bit-flipped files) are exactly
// the ones the orchestration paths already rely on.
//
// Granularity argument: every deployment's trajectory is a pure function of
// (fleet seed, deployment name) — the RNG substreams, SimCore slot states,
// simulated clock, and arrival cursors of an in-flight deployment are all
// derived state that deterministic replay regenerates bit-for-bit. The
// minimal sufficient checkpoint is therefore the streaming accumulator's
// state at completed-deployment boundaries: which deployments finished,
// their digest rows, the merged aggregates, and the retained report bodies.
// Resume re-runs only unfinished deployments and reproduces the
// uninterrupted run's digest exactly (tests/sim_checkpoint_test.cc).
//
// Crash consistency: writes land in `<file>.tmp`, are flushed and fsynced,
// then atomically renamed over `<file>`. A kill at any instant leaves either
// the previous complete checkpoint or the new complete checkpoint — never a
// torn frame — and a torn or corrupt file is detected by the CRC trailer and
// reported as kDataLoss rather than silently resumed from.

#ifndef PRONGHORN_SRC_PLATFORM_SIM_CHECKPOINT_H_
#define PRONGHORN_SRC_PLATFORM_SIM_CHECKPOINT_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/platform/report_io.h"
#include "src/platform/sim_options.h"

namespace pronghorn {

// Stable fingerprint of the experiment a checkpoint belongs to: the fleet
// seed, engine kind, eviction spec, retention options, and the canonical
// (name, requests, slots) list of deployments. Resuming is refused when the
// fingerprint disagrees — a checkpoint must never silently continue a
// different experiment.
struct SimFingerprint {
  uint64_t seed = 0;
  uint32_t topology = 0;  // SimTopology ordinal of the producing driver.
  // Fold one deployment into the fingerprint (order-insensitive: entries are
  // hashed individually and combined with an XOR-style commutative mix).
  void AddFunction(std::string_view name, uint64_t requests, uint32_t worker_slots,
                   uint32_t exploring_slots);
  void AddOptions(const SimOptions& options);

  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0x70534b43u;  // Arbitrary non-zero start.
};

// Atomic checkpoint file IO. `path` is the full file path; `Write` goes
// through `path + ".tmp"` + fsync + rename.
Status WriteSimCheckpointFile(const std::string& path, uint64_t fingerprint,
                              uint64_t progress, std::span<const uint8_t> payload);

// Reads and validates a checkpoint file: kNotFound when absent, kDataLoss on
// a torn/corrupt frame, kFailedPrecondition when `fingerprint` disagrees.
Result<std::vector<uint8_t>> ReadSimCheckpointFile(const std::string& path,
                                                   uint64_t fingerprint);

// The whole-run checkpoint file a kSingle/kPlatform Simulate() writes (a
// different name from the fleet's incremental file, so the two granularities
// can never be confused for one another).
std::string WholeRunCheckpointPath(const std::string& dir);

// Periodic checkpointer for streaming fleet runs: thread-safe, writes the
// accumulator's state every `options.every` completed deployments plus a
// final frame at the end of the run. Shards call OnFold() right after their
// Fold(); the writer serializes under the accumulator's own lock, so a
// frame is always a consistent prefix of the run.
class FleetCheckpointer {
 public:
  FleetCheckpointer(const SimCheckpointOptions& options, uint64_t fingerprint,
                    const StreamingAccumulator& accumulator);

  // The checkpoint file a fleet run with checkpoint directory `dir` writes.
  static std::string FilePath(const std::string& dir);

  // Called after every fold; writes a frame when the cadence is due. The
  // first IO failure is latched and returned by Finish().
  void OnFold();

  // Writes the final frame unconditionally and reports any latched error.
  Status Finish();

 private:
  Status WriteFrame();

  const SimCheckpointOptions options_;
  const uint64_t fingerprint_;
  const StreamingAccumulator& accumulator_;

  std::mutex mutex_;
  uint64_t folds_since_write_ = 0;
  Status first_error_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_SIM_CHECKPOINT_H_
