// SimOptions: the one options surface shared by every simulation driver.
//
// Before this header the four drivers and the shared environment each carried
// a near-duplicate options struct whose fields drifted independently; they
// now share this one composite. Drivers read the fields they understand and
// ignore the rest (FunctionSimulation and PlatformSimulation always run one
// slot per deployment; only FleetSimulation reads `threads` and `eviction`).
//
// The composite groups the knobs the way the kernel consumes them:
//   - experiment identity:   seed, engine_kind, input_noise
//   - topology:              worker_slots, exploring_slots, threads
//   - lifecycle accounting:  lifecycle (LifecycleOptions)
//   - cost model:            costs (OrchestratorCostModel)
//   - chaos layer:           faults (FaultPlan) + recovery (RecoveryOptions)
//   - observability:         obs (borrowed ObsSink*, null = disabled)
//
// The `obs` sink is deliberately a raw borrowed pointer: instrumentation
// sites null-check it, so a simulation without observability pays one pointer
// compare per site and nothing else. Obs data never feeds back into
// digest-covered state (see src/obs/sink.h).

#ifndef PRONGHORN_SRC_PLATFORM_SIM_OPTIONS_H_
#define PRONGHORN_SRC_PLATFORM_SIM_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/core/orchestrator.h"
#include "src/platform/eviction.h"
#include "src/store/fault_injection.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {

class ObsSink;  // src/obs/sink.h; forward-declared to keep this header light.
class OrchestratorService;  // src/service/orchestrator_service.h.

// Which checkpoint engine implementation each deployment instantiates.
enum class EngineKind {
  kCriuLike = 0,  // Full-image CRIU-style engine (the paper's setup).
  kDelta = 1,     // Medes-style deduplicating delta engine (§7 related work).
};

// Knobs that change how a lifetime's costs appear in client-visible latency
// and in the provider-side occupancy accounting. Defaults mirror the paper's
// measurement setup (§5.1): startup happens off the critical path and
// checkpoints never delay the next request.
struct LifecycleOptions {
  // Charge worker startup to the first request of each lifetime.
  bool startup_on_critical_path = false;
  // When a checkpoint's downtime overlaps the next arrival, delay it (only
  // observable with trace-driven arrivals; closed-loop clients wait anyway).
  bool checkpoint_blocks_requests = false;
  // How long an idle worker holds its resources before the platform reclaims
  // them; feeds the memory-time accounting in trace-driven runs.
  Duration idle_resource_hold = Duration::Zero();
};

// How each fleet deployment's eviction model is instantiated. Models with
// hidden RNG state (geometric) must be per-function — sharing one across
// shards would both race and couple the shards' draw sequences — so the fleet
// holds a spec and instantiates one model per deployment from its function
// seed. Only FleetSimulation consumes this; the other drivers take a borrowed
// EvictionModel directly.
struct FleetEvictionSpec {
  enum class Kind {
    kEveryK = 0,
    kGeometric = 1,
    kIdleTimeout = 2,
  };
  Kind kind = Kind::kEveryK;
  uint64_t k = 4;                 // kEveryK
  double mean_requests = 4.0;     // kGeometric
  Duration idle_timeout = Duration::Seconds(600);  // kIdleTimeout

  Result<std::unique_ptr<EvictionModel>> Instantiate(uint64_t function_seed) const;
};

// How much per-function detail a fleet-scale run retains in its merged
// report. Aggregates (store accountings, fault counters, lifecycle totals,
// the exact-merge latency histogram, and the canonical digest) are ALWAYS
// complete in every mode — retention only bounds the per-function record
// detail, which is what makes peak RSS O(shards + retained-K) instead of
// O(functions x requests) at fleet scale.
enum class ReportRetention : uint8_t {
  // Retain every per-function report. The compatibility mode: the merged
  // report is bit-identical to the historical collect-then-merge path.
  kAll = 0,
  // Retain the K functions with the highest median latency (ties broken by
  // name). A pure function of the folded set, so schedule-independent.
  kTopLatency = 1,
  // Retain a deterministic uniform sample of K functions: the K smallest
  // values of HashCombine(seed, name-hash). Order-insensitive by
  // construction, unlike a classic streaming reservoir.
  kReservoir = 2,
};

// Stable labels for serialized reports ("all", "top-latency", "reservoir"),
// so decimated outputs are always distinguishable from complete ones.
std::string_view RetentionLabel(ReportRetention retention);
Result<ReportRetention> ParseRetention(std::string_view label);

struct RetentionOptions {
  ReportRetention mode = ReportRetention::kAll;
  // Retained-function budget for the bounded modes; ignored by kAll.
  uint64_t k = 64;
  // Substream for kReservoir's hash sample; combined with the name hash only,
  // never with shard or thread identity.
  uint64_t seed = 1;
};

// Periodic crash-consistent simulation checkpoints (src/platform/
// sim_checkpoint.h). Fleet runs checkpoint at completed-deployment
// granularity; single/platform runs checkpoint the finished report. Resuming
// a killed run reproduces the uninterrupted run's digest bit-for-bit.
struct SimCheckpointOptions {
  // Directory for checkpoint files; empty disables checkpointing.
  std::string dir;
  // Write a checkpoint every N completed deployments (fleet topology).
  uint64_t every = 1;
  // Load the newest valid checkpoint from `dir` before running, skipping
  // work it already covers.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

// Service mode: route every worker-lifecycle operation through a live
// OrchestratorService over its wire format instead of direct in-process
// Orchestrator calls. Digest-neutral by construction: simulation clients are
// synchronous, so the service executes the identical operation sequence and
// reports are bit-identical with the mode on or off, at any shard count or
// batch setting (pinned by tests/service_equivalence_test.cc).
struct ServiceModeOptions {
  bool enabled = false;
  uint32_t shards = 4;
  uint32_t max_batch = 16;
  Duration flush_interval = Duration::Millis(5);
  size_t queue_capacity = 256;
  // Per-slot write-ahead observation journals live here; empty disables
  // journaling (the default — and the digest-gated zero-cost path).
  // Simulation clients are synchronous, so even with a directory set no
  // sequences are assigned and crash injection stays digest-neutral.
  std::string journal_dir;
  // Host-time enqueue budget for start decisions; 0 = block forever.
  // Closed-loop simulation clients never saturate a queue long enough to
  // shed, so this too is digest-neutral in sim mode.
  uint32_t shed_deadline_ms = 0;
  // Borrowed shared service; when null each environment owns a private one.
  // The fleet driver sets this so all shards talk to a single service.
  OrchestratorService* instance = nullptr;
};

struct SimOptions {
  // Deterministic experiment seed; multi-deployment drivers derive
  // per-deployment sub-seeds from it via SimEnvironment::DeploymentSeed.
  uint64_t seed = 1;
  EngineKind engine_kind = EngineKind::kCriuLike;
  // Client-side input-size perturbation (§5.1), on by default.
  bool input_noise = true;

  // Topology. Single-slot drivers (function, platform) ignore the slot
  // counts; only the fleet driver reads `threads` (0 = one per hardware
  // thread) and `eviction`.
  uint32_t worker_slots = 4;
  uint32_t exploring_slots = 1;
  uint32_t threads = 0;
  // Pin fleet shard threads to cores (Linux only; see ThreadPoolOptions).
  // Like `threads`, a pure scheduling knob: never fingerprinted, never
  // affects results.
  bool pin_threads = false;
  FleetEvictionSpec eviction;

  LifecycleOptions lifecycle;
  OrchestratorCostModel costs;

  // Decoded-policy-state cache in the per-deployment PolicyStateStore. Pure
  // CPU optimization: digests are bit-identical with the cache on or off
  // (pinned by tests/hot_path_equivalence_test.cc); the knob exists for that
  // comparison and for --no-state-cache.
  bool state_cache = true;

  // How each deployment's snapshot store is built: the flat compatibility
  // adapter (default; bit-identical to the historical ObjectStore path) or
  // the content-addressed DedupSnapshotStore with optional CDC chunking and
  // REAP-style lazy restore. Digest-neutral: only the digest-excluded
  // physical accounting differs between kinds.
  SnapshotStoreOptions store;

  // Chaos layer: when the plan is active, the stores are wrapped in fault
  // decorators driven by the simulated clock. The plan's seed is combined
  // with the experiment seed, so distinct experiments draw distinct faults.
  FaultPlan faults;
  // Bounds for the orchestrators' retry/fallback/quarantine machinery.
  RecoveryOptions recovery;

  // Live service mode (see ServiceModeOptions above).
  ServiceModeOptions service;

  // Fleet-scale report retention (see ReportRetention above). kAll keeps the
  // historical collect-then-merge output bit-for-bit.
  RetentionOptions retention;

  // Periodic resumable simulation checkpoints (see SimCheckpointOptions).
  SimCheckpointOptions sim_checkpoint;

  // Borrowed observability sink; null (the default) disables all
  // instrumentation at zero cost. Never owned, never read by digest-covered
  // code paths.
  ObsSink* obs = nullptr;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_SIM_OPTIONS_H_
