// Worker eviction models.
//
// The paper evaluates fixed eviction rates of 1, 4, and 20 requests per
// worker (§5.1 "Measurements") and motivates them from Azure trace data:
// workers typically live ~20 minutes, so these rates correspond to a request
// every hour, 5 minutes, and 1 minute. Trace-driven runs instead use the
// platform-style idle timeout.

#ifndef PRONGHORN_SRC_PLATFORM_EVICTION_H_
#define PRONGHORN_SRC_PLATFORM_EVICTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace pronghorn {

class EvictionModel {
 public:
  virtual ~EvictionModel() = default;

  // True when the worker must be torn down after having served
  // `requests_in_lifetime` requests, the last one completing at `now`, the
  // worker having been provisioned at `started_at`, with the next arrival
  // (if known) at `next_arrival`.
  virtual bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at,
                           TimePoint now, TimePoint next_arrival) const = 0;
};

// Kills the worker after exactly `k` requests (the paper's 1/4/20 columns).
class EveryKRequestsEviction : public EvictionModel {
 public:
  // `k` must be >= 1.
  static Result<std::unique_ptr<EveryKRequestsEviction>> Create(uint64_t k);

  bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at, TimePoint now,
                   TimePoint next_arrival) const override;

  uint64_t k() const { return k_; }

 private:
  explicit EveryKRequestsEviction(uint64_t k) : k_(k) {}

  uint64_t k_;
};

// Kills the worker when the gap to the next request exceeds the platform
// idle timeout (e.g. 10 minutes on AWS Lambda; used for trace replay).
class IdleTimeoutEviction : public EvictionModel {
 public:
  explicit IdleTimeoutEviction(Duration timeout) : timeout_(timeout) {}

  bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at, TimePoint now,
                   TimePoint next_arrival) const override;

  Duration timeout() const { return timeout_; }

 private:
  Duration timeout_;
};

// Kills the worker once it has been alive longer than `max_lifetime`,
// whatever its traffic — the Azure characterization's ~20-minute typical
// worker lifetime [58].
class MaxLifetimeEviction : public EvictionModel {
 public:
  explicit MaxLifetimeEviction(Duration max_lifetime) : max_lifetime_(max_lifetime) {}

  bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at, TimePoint now,
                   TimePoint next_arrival) const override;

  Duration max_lifetime() const { return max_lifetime_; }

 private:
  Duration max_lifetime_;
};

// Memoryless randomized lifetime: after each request the worker survives
// with probability 1 - 1/k, so lifetimes are geometric with mean k requests.
// This matches the paper's beta being an *average* ("average number of
// requests handled by a worker before eviction", Table 2) and models real
// platforms, where eviction timing varies worker to worker.
class GeometricEviction : public EvictionModel {
 public:
  // `mean_requests` must be >= 1; `seed` makes the draw sequence
  // reproducible.
  static Result<std::unique_ptr<GeometricEviction>> Create(double mean_requests,
                                                           uint64_t seed);

  bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at, TimePoint now,
                   TimePoint next_arrival) const override;

  double mean_requests() const { return mean_requests_; }

 private:
  GeometricEviction(double mean_requests, uint64_t seed)
      : mean_requests_(mean_requests), rng_(HashCombine(seed, 0x9e0eULL)) {}

  double mean_requests_;
  mutable Rng rng_;  // ShouldEvict is logically const; the stream is hidden state.
};

// Evicts when ANY of the composed models says so (e.g. idle timeout OR
// maximum lifetime, the realistic serverless-platform combination).
class AnyOfEviction : public EvictionModel {
 public:
  // Borrowed models; all must outlive this object.
  explicit AnyOfEviction(std::vector<const EvictionModel*> models)
      : models_(std::move(models)) {}

  bool ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at, TimePoint now,
                   TimePoint next_arrival) const override;

 private:
  std::vector<const EvictionModel*> models_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_EVICTION_H_
