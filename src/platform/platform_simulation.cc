#include "src/platform/platform_simulation.h"

#include <algorithm>

namespace pronghorn {

DistributionSummary PlatformReport::GlobalLatencySummary() const {
  DistributionSummary summary;
  for (const auto& [name, report] : per_function) {
    for (const RequestRecord& record : report.records) {
      summary.Add(static_cast<double>(record.latency.ToMicros()));
    }
  }
  return summary;
}

uint64_t PlatformReport::TotalCheckpoints() const {
  uint64_t total = 0;
  for (const auto& [name, report] : per_function) {
    total += report.checkpoints;
  }
  return total;
}

uint64_t PlatformReport::TotalLifetimes() const {
  uint64_t total = 0;
  for (const auto& [name, report] : per_function) {
    total += report.worker_lifetimes;
  }
  return total;
}

PlatformSimulation::PlatformSimulation(const WorkloadRegistry& registry,
                                       const EvictionModel& eviction,
                                       PlatformOptions options)
    : registry_(registry),
      eviction_(eviction),
      options_(options),
      engine_(HashCombine(options.seed, 0x91a7ULL)),
      client_rng_(HashCombine(options.seed, 0x91c1ULL)) {}

PlatformSimulation::~PlatformSimulation() = default;

Status PlatformSimulation::DeployFunction(const WorkloadProfile& profile,
                                          const OrchestrationPolicy& policy) {
  if (deployments_.contains(profile.name)) {
    return AlreadyExistsError("function '" + profile.name + "' already deployed");
  }
  Deployment deployment;
  deployment.profile = &profile;
  deployment.state_store =
      std::make_unique<PolicyStateStore>(db_, profile.name, policy.config());
  deployment.orchestrator = std::make_unique<Orchestrator>(
      profile, registry_, policy, engine_, object_store_, *deployment.state_store,
      clock_, HashCombine(options_.seed, HashCombine(0xde9ULL, deployments_.size())),
      options_.costs);
  deployment.input_model =
      std::make_unique<InputModel>(profile, options_.input_noise);
  deployments_.emplace(profile.name, std::move(deployment));
  return OkStatus();
}

Result<PlatformReport> PlatformSimulation::Replay(const InvocationTrace& trace) {
  PlatformReport report;
  for (const auto& [name, deployment] : deployments_) {
    report.per_function.emplace(name, SimulationReport{});
  }

  const auto& records = trace.records();
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& arrival = records[i];
    auto it = deployments_.find(arrival.function);
    if (it == deployments_.end()) {
      return NotFoundError("trace invokes undeployed function '" + arrival.function +
                           "'");
    }
    Deployment& deployment = it->second;
    SimulationReport& function_report = report.per_function[arrival.function];
    clock_.AdvanceTo(arrival.arrival);

    bool fresh_worker = false;
    if (!deployment.session.has_value()) {
      PRONGHORN_ASSIGN_OR_RETURN(WorkerSession session,
                                 deployment.orchestrator->StartWorker());
      deployment.session.emplace(std::move(session));
      deployment.requests_in_lifetime = 0;
      deployment.worker_started_at = arrival.arrival;
      fresh_worker = true;
      function_report.worker_lifetimes += 1;
      if (deployment.session->restored) {
        function_report.restores += 1;
      } else {
        function_report.cold_starts += 1;
      }
      function_report.total_startup_latency += deployment.session->startup_latency;
    }

    FunctionRequest request;
    request.id = next_request_id_++;
    request.input_scale = deployment.input_model->NextScale(client_rng_);
    PRONGHORN_ASSIGN_OR_RETURN(
        RequestOutcome outcome,
        deployment.orchestrator->ServeRequest(*deployment.session, request));
    deployment.requests_in_lifetime += 1;

    Duration latency = outcome.latency;
    if (deployment.free_at > arrival.arrival) {
      latency += deployment.free_at - arrival.arrival;  // Queued behind busy worker.
    }
    const TimePoint completion = arrival.arrival + latency;
    deployment.free_at = completion;
    clock_.AdvanceTo(completion);

    if (outcome.checkpoint_taken) {
      function_report.checkpoints += 1;
      function_report.total_checkpoint_downtime += outcome.checkpoint_downtime;
    }

    RequestRecord record;
    record.global_index = function_report.records.size();
    record.request_number = outcome.request_number;
    record.latency = latency;
    record.first_of_lifetime = fresh_worker;
    record.cold_start = fresh_worker && !deployment.session->restored;
    record.checkpoint_after = outcome.checkpoint_taken;
    function_report.records.push_back(record);

    // Eviction decision: the next arrival *for this function* decides idle
    // timeouts. Scan ahead (traces are short windows; this stays cheap).
    TimePoint next_arrival = completion;
    bool has_next = false;
    for (size_t j = i + 1; j < records.size(); ++j) {
      if (records[j].function == arrival.function) {
        next_arrival = records[j].arrival;
        has_next = true;
        break;
      }
    }
    if (has_next &&
        eviction_.ShouldEvict(deployment.requests_in_lifetime,
                              deployment.worker_started_at, completion, next_arrival)) {
      deployment.session.reset();
    }
  }

  for (auto& [name, function_report] : report.per_function) {
    function_report.end_time = clock_.now();
    function_report.overheads =
        deployments_.at(name).orchestrator->overheads();
  }
  report.object_store = object_store_.accounting();
  report.database = db_.accounting();
  return report;
}

Result<PolicyState> PlatformSimulation::LoadPolicyState(
    const std::string& function) const {
  auto it = deployments_.find(function);
  if (it == deployments_.end()) {
    return NotFoundError("function '" + function + "' is not deployed");
  }
  return it->second.state_store->Load();
}

}  // namespace pronghorn
