#include "src/platform/platform_simulation.h"

#include <utility>
#include <vector>

#include "src/common/crc32.h"
#include "src/platform/report_io.h"

namespace pronghorn {

namespace {

PlatformReport ToPlatformReport(EnvironmentReport env) {
  PlatformReport report;
  report.per_function = std::move(env.per_function);
  report.object_store = env.object_store;
  report.database = env.database;
  report.faults = env.faults;
  return report;
}

}  // namespace

DistributionSummary PlatformReport::GlobalLatencySummary() const {
  DistributionSummary summary;
  for (const auto& [name, report] : per_function) {
    for (const RequestRecord& record : report.records) {
      summary.Add(static_cast<double>(record.latency.ToMicros()));
    }
  }
  return summary;
}

uint64_t PlatformReport::TotalCheckpoints() const {
  uint64_t total = 0;
  for (const auto& [name, report] : per_function) {
    total += report.checkpoints;
  }
  return total;
}

uint64_t PlatformReport::TotalLifetimes() const {
  uint64_t total = 0;
  for (const auto& [name, report] : per_function) {
    total += report.worker_lifetimes;
  }
  return total;
}

uint32_t PlatformReport::Digest() const {
  std::vector<NamedReportRef> rows;
  rows.reserve(per_function.size());
  for (const auto& [name, report] : per_function) {
    rows.push_back(NamedReportRef{name, &report});
  }
  return ReportDigest(rows, *this);
}

PlatformSimulation::PlatformSimulation(const WorkloadRegistry& registry,
                                       const EvictionModel& eviction,
                                       SimOptions options)
    : eviction_(eviction),
      seed_(options.seed),
      env_(registry, options) {}

PlatformSimulation::~PlatformSimulation() = default;

Status PlatformSimulation::DeployFunction(const WorkloadProfile& profile,
                                          const OrchestrationPolicy& policy) {
  if (env_.DeploymentIndex(profile.name).ok()) {
    return AlreadyExistsError("function '" + profile.name + "' already deployed");
  }
  return env_.AddDeployment(
      profile.name, profile, policy, eviction_, /*worker_slots=*/1,
      /*exploring_slots=*/1,
      SimEnvironment::DeploymentSeed(seed_, profile.name));
}

Result<PlatformReport> PlatformSimulation::Replay(const InvocationTrace& trace) {
  const auto& records = trace.records();
  std::vector<SimEnvironment::Arrival> arrivals;
  arrivals.reserve(records.size());
  for (const TraceRecord& record : records) {
    const Result<size_t> index = env_.DeploymentIndex(record.function);
    if (!index.ok()) {
      return NotFoundError("trace invokes undeployed function '" + record.function +
                           "'");
    }
    arrivals.push_back(SimEnvironment::Arrival{*index, record.arrival});
  }
  PRONGHORN_RETURN_IF_ERROR(env_.RunArrivals(arrivals));
  // Sessions deliberately stay warm: repeated replays continue the platform.
  return ToPlatformReport(env_.TakeReport());
}

Result<PlatformReport> PlatformSimulation::RunClosedLoop(uint64_t request_count) {
  PRONGHORN_RETURN_IF_ERROR(env_.RunClosedLoop(request_count));
  env_.RetireAllWorkers();
  return ToPlatformReport(env_.TakeReport());
}

Result<PolicyState> PlatformSimulation::LoadPolicyState(
    const std::string& function) const {
  const Result<size_t> index = env_.DeploymentIndex(function);
  if (!index.ok()) {
    return NotFoundError("function '" + function + "' is not deployed");
  }
  return env_.LoadPolicyState(*index);
}

}  // namespace pronghorn
