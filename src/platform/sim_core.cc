#include "src/platform/sim_core.h"

#include <algorithm>
#include <utility>

namespace pronghorn {

SimCore::SimCore(std::unique_ptr<Orchestrator> orchestrator,
                 const EvictionModel* eviction, SimClock* clock,
                 LifecycleOptions lifecycle, bool exploring)
    : orchestrator_(std::move(orchestrator)),
      local_backend_(std::make_unique<LocalWorkerBackend>(orchestrator_.get())),
      backend_(local_backend_.get()),
      eviction_(eviction),
      clock_(clock),
      lifecycle_(lifecycle),
      exploring_(exploring) {}

void SimCore::set_obs(ObsSink* obs, ObsTrack serve_track, ObsTrack lifecycle_track) {
  obs_ = obs;
  serve_track_ = serve_track;
  lifecycle_track_ = lifecycle_track;
  orchestrator_->set_obs(obs, lifecycle_track);
}

Status SimCore::Serve(const FunctionRequest& request, TimePoint arrival,
                      SimulationReport& report) {
  clock_->AdvanceTo(arrival);

  // Provision a worker if none is warm (happens off the critical path by
  // default: the platform restarted it right after the last eviction).
  bool fresh_worker = false;
  if (!view_.has_value()) {
    PRONGHORN_ASSIGN_OR_RETURN(SessionView started, backend_->StartWorker());
    view_.emplace(started);
    fresh_worker = true;
    requests_in_lifetime_ = 0;
    worker_started_at_ = arrival;
    report.worker_lifetimes += 1;
    if (view_->restored) {
      report.restores += 1;
    } else {
      report.cold_starts += 1;
    }
    report.total_startup_latency += view_->startup_latency;
    if (obs_ != nullptr) {
      // The provision span covers making the worker ready (download + restore
      // or cold init); the nested span names which path the Orchestrator
      // chose. Both sit on the lifecycle lane so they never overlap serving.
      obs_->Span(lifecycle_track_, "provision", "lifecycle", arrival,
                 view_->startup_latency);
      const char* path = view_->degraded  ? "degraded_start"
                         : view_->restored ? "restore"
                                           : "cold_start";
      obs_->Span(lifecycle_track_, path, "lifecycle", arrival,
                 view_->startup_latency);
      obs_->Counter("lifecycle.provisions", 1);
      obs_->Observe("lifecycle.startup_us", view_->startup_latency);
    }
  }

  PRONGHORN_ASSIGN_OR_RETURN(RequestOutcome outcome, backend_->ServeRequest(request));
  requests_in_lifetime_ += 1;

  // User-visible latency: queueing (busy worker) + optional startup +
  // execution.
  Duration latency = outcome.latency;
  if (lifecycle_.startup_on_critical_path && fresh_worker) {
    latency += view_->startup_latency;
  }
  if (free_at_ > arrival) {
    latency += free_at_ - arrival;
  }
  const TimePoint completion = arrival + latency;
  clock_->AdvanceTo(completion);
  last_completion_ = completion;
  free_at_ = completion;

  if (outcome.checkpoint_taken) {
    report.checkpoints += 1;
    report.total_checkpoint_downtime += outcome.checkpoint_downtime;
    if (lifecycle_.checkpoint_blocks_requests) {
      free_at_ = free_at_ + outcome.checkpoint_downtime;
    }
    if (obs_ != nullptr) {
      obs_->Span(lifecycle_track_, "checkpoint", "lifecycle", completion,
                 outcome.checkpoint_downtime);
      obs_->Counter("lifecycle.checkpoints", 1);
      obs_->Observe("lifecycle.checkpoint_downtime_us",
                    outcome.checkpoint_downtime);
    }
  }

  RequestRecord record;
  record.global_index = report.records.size();
  record.request_number = outcome.request_number;
  record.latency = latency;
  record.first_of_lifetime = fresh_worker;
  record.cold_start = fresh_worker && !view_->restored;
  record.checkpoint_after = outcome.checkpoint_taken;
  report.records.push_back(record);
  if (exploring_) {
    report.exploring_latency.Add(static_cast<double>(latency.ToMicros()));
  } else {
    report.exploiting_latency.Add(static_cast<double>(latency.ToMicros()));
  }
  if (obs_ != nullptr) {
    obs_->Span(serve_track_, "serve", "lifecycle", arrival, latency);
    obs_->Counter("lifecycle.requests", 1);
    obs_->Observe("lifecycle.serve_latency_us", latency);
    obs_->Observe(exploring_ ? "lifecycle.exploring_latency_us"
                             : "lifecycle.exploiting_latency_us",
                  latency);
  }
  return OkStatus();
}

void SimCore::MaybeEvict(bool has_next, TimePoint next_arrival,
                         SimulationReport& report) {
  if (!has_next || !view_.has_value()) {
    return;
  }
  if (!eviction_->ShouldEvict(requests_in_lifetime_, worker_started_at_,
                              last_completion_, next_arrival)) {
    return;
  }
  // A worker evicted by idle timeout holds its resources until the timeout
  // fires, not just until its last response.
  TimePoint evicted_at = last_completion_;
  if (next_arrival - last_completion_ > Duration::Zero()) {
    const Duration idle_held =
        std::min(next_arrival - last_completion_, lifecycle_.idle_resource_hold);
    evicted_at = last_completion_ + idle_held;
  }
  AccountWorkerEnd(evicted_at, report);
  ObserveWorkerEnd("evict", last_completion_, evicted_at);
  view_.reset();
}

void SimCore::RetireWorker(TimePoint end, SimulationReport& report) {
  if (!view_.has_value()) {
    return;
  }
  AccountWorkerEnd(end, report);
  ObserveWorkerEnd("evict", end, end);
  view_.reset();
}

void SimCore::AccountWorkerEnd(TimePoint end, SimulationReport& report) {
  // The backend samples the footprint at session end — a worker's memory
  // grows over its lifetime, so sampling earlier would undercount.
  const SessionEnd session_end = backend_->EndSession();
  const Duration alive = end - worker_started_at_;
  report.total_worker_alive_time += alive;
  report.worker_memory_time_mb_s += alive.ToSeconds() * session_end.memory_mb;
}

void SimCore::ObserveWorkerEnd(const char* name, TimePoint begin, TimePoint end) {
  if (obs_ == nullptr) {
    return;
  }
  // The evict span covers the idle tail the worker occupies after its last
  // response (zero-length when retired at shutdown).
  obs_->Span(lifecycle_track_, name, "lifecycle", begin, end - begin);
  obs_->Counter("lifecycle.evictions", 1);
  obs_->Observe("lifecycle.worker_alive_us", end - worker_started_at_);
}

}  // namespace pronghorn
