#include "src/platform/analysis.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/stats.h"

namespace pronghorn {

namespace {

double WindowMedian(std::span<const RequestRecord> records, size_t begin, size_t window) {
  std::vector<double> values;
  values.reserve(window);
  for (size_t i = begin; i < begin + window; ++i) {
    values.push_back(static_cast<double>(records[i].latency.ToMicros()));
  }
  return Percentile(values, 50.0);
}

}  // namespace

std::optional<uint64_t> ConvergenceRequest(std::span<const RequestRecord> records,
                                           size_t window, double tolerance) {
  if (window == 0 || records.size() < window) {
    return std::nullopt;
  }
  const double final_median = WindowMedian(records, records.size() - window, window);
  if (final_median <= 0.0) {
    return std::nullopt;
  }
  for (size_t begin = 0; begin + window <= records.size(); ++begin) {
    const double median = WindowMedian(records, begin, window);
    if (std::abs(median - final_median) / final_median <= tolerance) {
      return records[begin].global_index;
    }
  }
  return std::nullopt;
}

namespace {

std::vector<MaturityLatency> SummarizeMaturityBuckets(
    const std::map<uint64_t, std::vector<double>>& by_maturity) {
  std::vector<MaturityLatency> out;
  out.reserve(by_maturity.size());
  for (const auto& [request_number, latencies] : by_maturity) {
    MaturityLatency row;
    row.request_number = request_number;
    // Percentile sorts a copy, so the bucket's insertion order is irrelevant:
    // the series is invariant under any reordering of the input records.
    row.median_latency_us = Percentile(latencies, 50.0);
    row.samples = latencies.size();
    out.push_back(row);
  }
  return out;
}

}  // namespace

std::vector<MaturityLatency> LatencyByMaturity(std::span<const RequestRecord> records) {
  std::map<uint64_t, std::vector<double>> by_maturity;
  for (const RequestRecord& record : records) {
    by_maturity[record.request_number].push_back(
        static_cast<double>(record.latency.ToMicros()));
  }
  return SummarizeMaturityBuckets(by_maturity);
}

std::vector<MaturityLatency> LatencyByMaturityAcrossStreams(
    std::span<const std::span<const RequestRecord>> streams) {
  std::map<uint64_t, std::vector<double>> by_maturity;
  for (const std::span<const RequestRecord> stream : streams) {
    for (const RequestRecord& record : stream) {
      by_maturity[record.request_number].push_back(
          static_cast<double>(record.latency.ToMicros()));
    }
  }
  return SummarizeMaturityBuckets(by_maturity);
}

double MedianImprovementPercent(const SimulationReport& baseline,
                                const SimulationReport& ours) {
  const double baseline_median = baseline.MedianLatencyUs();
  if (baseline_median <= 0.0) {
    return 0.0;
  }
  return (baseline_median - ours.MedianLatencyUs()) / baseline_median * 100.0;
}

}  // namespace pronghorn
