#include "src/platform/simulate.h"

#include <memory>
#include <utility>

#include "src/platform/cluster_simulation.h"
#include "src/platform/fleet_simulation.h"
#include "src/platform/report_io.h"
#include "src/platform/sim_checkpoint.h"
#include "src/platform/sim_environment.h"

namespace pronghorn {

namespace {

// Folds one function's report into the merged view. Callers visit functions
// in canonical (name) order, so the merged latency summary and counters are
// schedule-independent — the same contract FleetSimulation::Run keeps.
void FoldFunction(SimReport& out, std::string name, SimulationReport report) {
  for (const RequestRecord& record : report.records) {
    out.latency.Add(static_cast<double>(record.latency.ToMicros()));
    out.latency_hist.Add(static_cast<uint64_t>(record.latency.ToMicros()));
  }
  out.worker_lifetimes += report.worker_lifetimes;
  out.checkpoints += report.checkpoints;
  out.restores += report.restores;
  out.cold_starts += report.cold_starts;
  out.functions_total += 1;
  out.invocations_total += report.records.size();
  out.per_function.push_back(SimFunctionResult{std::move(name), std::move(report)});
}

Status ValidateSpecs(SimTopology topology,
                     std::span<const SimFunctionSpec> functions) {
  if (functions.empty()) {
    return InvalidArgumentError("Simulate() needs at least one function");
  }
  if (topology == SimTopology::kSingle && functions.size() != 1) {
    return InvalidArgumentError("kSingle topology takes exactly one function");
  }
  for (size_t i = 0; i < functions.size(); ++i) {
    const SimFunctionSpec& spec = functions[i];
    if (spec.name.empty()) {
      return InvalidArgumentError("function name must be non-empty");
    }
    if (spec.profile == nullptr || spec.policy == nullptr) {
      return InvalidArgumentError("function '" + spec.name +
                                  "' needs a profile and a policy");
    }
    if (spec.requests == 0) {
      return InvalidArgumentError("function '" + spec.name +
                                  "' needs a positive request count");
    }
    for (size_t j = 0; j < i; ++j) {
      if (functions[j].name == spec.name) {
        return AlreadyExistsError("duplicate function '" + spec.name + "'");
      }
    }
  }
  return OkStatus();
}

Result<SimReport> SimulateSingle(const WorkloadRegistry& registry,
                                 const SimFunctionSpec& spec,
                                 const SimOptions& options) {
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options.eviction.Instantiate(options.seed));
  // ClusterSimulation with options.worker_slots == 1 IS the historical
  // FunctionSimulation (same sub-seed, same slot-0 substream).
  ClusterSimulation cluster(*spec.profile, registry, *spec.policy, *eviction,
                            options);
  PRONGHORN_ASSIGN_OR_RETURN(SimulationReport flat,
                             cluster.RunClosedLoop(spec.requests));
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(flat);
  FoldFunction(out, spec.name, std::move(flat));
  return out;
}

Result<SimReport> SimulatePlatform(const WorkloadRegistry& registry,
                                   std::span<const SimFunctionSpec> functions,
                                   const SimOptions& options) {
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options.eviction.Instantiate(options.seed));
  SimEnvironment env(registry, options);
  uint64_t total_requests = 0;
  for (const SimFunctionSpec& spec : functions) {
    // One slot per function, like PlatformSimulation::DeployFunction.
    PRONGHORN_RETURN_IF_ERROR(env.AddDeployment(
        spec.name, *spec.profile, *spec.policy, *eviction, /*worker_slots=*/1,
        /*exploring_slots=*/1,
        SimEnvironment::DeploymentSeed(options.seed, spec.name)));
    total_requests += spec.requests;
  }
  PRONGHORN_RETURN_IF_ERROR(env.RunClosedLoop(total_requests));
  env.RetireAllWorkers();
  EnvironmentReport harvested = env.TakeReport();
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(harvested);
  // std::map iteration is already canonical (name) order.
  for (auto& [name, report] : harvested.per_function) {
    FoldFunction(out, name, std::move(report));
  }
  return out;
}

Result<SimReport> SimulateFleet(const WorkloadRegistry& registry,
                                std::span<const SimFunctionSpec> functions,
                                const SimOptions& options) {
  FleetSimulation fleet(registry, options);
  for (const SimFunctionSpec& spec : functions) {
    FleetFunctionSpec shard;
    shard.name = spec.name;
    shard.profile = spec.profile;
    shard.policy = spec.policy;
    shard.requests = spec.requests;
    shard.worker_slots = options.worker_slots;
    shard.exploring_slots = options.exploring_slots;
    PRONGHORN_RETURN_IF_ERROR(fleet.AddFunction(std::move(shard)));
  }
  PRONGHORN_ASSIGN_OR_RETURN(FleetReport merged, fleet.Run());
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(merged);
  // Aggregates come from the streaming fold, which saw every function even
  // when per_function was decimated; FoldFunction's re-summation would
  // undercount under the bounded modes.
  out.worker_lifetimes = merged.worker_lifetimes;
  out.checkpoints = merged.checkpoints;
  out.restores = merged.restores;
  out.cold_starts = merged.cold_starts;
  out.retention = merged.retention;
  out.functions_total = merged.functions_total;
  out.invocations_total = merged.invocations_total;
  out.latency_hist = merged.latency_hist;
  out.streaming_digest = merged.streaming_digest;
  out.per_function.reserve(merged.per_function.size());
  for (FleetFunctionResult& result : merged.per_function) {
    if (merged.retention == ReportRetention::kAll) {
      for (const RequestRecord& record : result.report.records) {
        out.latency.Add(static_cast<double>(record.latency.ToMicros()));
      }
    }
    out.per_function.push_back(
        SimFunctionResult{std::move(result.function), std::move(result.report)});
  }
  return out;
}

// Whole-run checkpoint payload for kSingle/kPlatform: the retained
// per-function reports (name order) followed by the shared core. The merged
// latency views and counters are rebuilt through FoldFunction on restore, so
// they never need a serialization of their own.
std::vector<uint8_t> EncodeWholeRunPayload(const SimReport& report) {
  ByteWriter writer;
  writer.WriteVarint(report.per_function.size());
  for (const SimFunctionResult& result : report.per_function) {
    writer.WriteString(result.function);
    SerializeClusterReport(result.report, writer);
  }
  SerializeReportCore(report, writer);
  return writer.data();
}

Result<SimReport> DecodeWholeRunPayload(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  PRONGHORN_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  SimReport out;
  for (uint64_t i = 0; i < count; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    PRONGHORN_ASSIGN_OR_RETURN(ClusterReport report,
                               DeserializeClusterReport(reader));
    FoldFunction(out, std::move(name), std::move(report));
  }
  PRONGHORN_RETURN_IF_ERROR(DeserializeReportCore(reader, out));
  if (!reader.AtEnd()) {
    return DataLossError("trailing bytes after checkpointed simulation report");
  }
  out.streaming_digest = out.Digest();
  return out;
}

uint64_t WholeRunFingerprint(SimTopology topology,
                             std::span<const SimFunctionSpec> functions,
                             const SimOptions& options) {
  SimFingerprint fingerprint;
  fingerprint.seed = options.seed;
  fingerprint.topology = static_cast<uint32_t>(topology);
  for (const SimFunctionSpec& spec : functions) {
    fingerprint.AddFunction(spec.name, spec.requests, options.worker_slots,
                            options.exploring_slots);
  }
  fingerprint.AddOptions(options);
  return fingerprint.value();
}

}  // namespace

uint32_t SimReport::Digest() const {
  if (retention != ReportRetention::kAll) {
    // per_function is decimated; the streaming fold's CRC-combined digest is
    // the canonical one (identical to what a keep-all run computes).
    return streaming_digest;
  }
  std::vector<NamedReportRef> rows;
  rows.reserve(per_function.size());
  for (const SimFunctionResult& result : per_function) {
    rows.push_back(NamedReportRef{result.function, &result.report});
  }
  return ReportDigest(rows, *this);
}

const SimulationReport* SimReport::Find(std::string_view name) const {
  for (const SimFunctionResult& result : per_function) {
    if (result.function == name) {
      return &result.report;
    }
  }
  return nullptr;
}

Result<SimReport> Simulate(const WorkloadRegistry& registry, SimTopology topology,
                           std::span<const SimFunctionSpec> functions,
                           const SimOptions& options, ObsSink* obs) {
  PRONGHORN_RETURN_IF_ERROR(ValidateSpecs(topology, functions));
  SimOptions effective = options;
  if (obs != nullptr) {
    effective.obs = obs;
  }

  // Whole-run checkpointing for the single-environment topologies (kFleet
  // checkpoints incrementally inside FleetSimulation::Run).
  const SimCheckpointOptions& ckpt = effective.sim_checkpoint;
  const bool whole_run_ckpt = ckpt.enabled() && topology != SimTopology::kFleet;
  uint64_t fingerprint = 0;
  if (whole_run_ckpt) {
    fingerprint = WholeRunFingerprint(topology, functions, effective);
    if (ckpt.resume) {
      auto payload =
          ReadSimCheckpointFile(WholeRunCheckpointPath(ckpt.dir), fingerprint);
      if (payload.ok()) {
        return DecodeWholeRunPayload(*payload);
      }
      if (payload.status().code() != StatusCode::kNotFound) {
        // A corrupt or mismatched checkpoint must fail loudly, not silently
        // restart the experiment from scratch.
        return payload.status();
      }
    }
  }

  Result<SimReport> report = [&]() -> Result<SimReport> {
    switch (topology) {
      case SimTopology::kSingle:
        return SimulateSingle(registry, functions.front(), effective);
      case SimTopology::kPlatform:
        return SimulatePlatform(registry, functions, effective);
      case SimTopology::kFleet:
        return SimulateFleet(registry, functions, effective);
    }
    return InvalidArgumentError("unknown topology");
  }();
  if (!report.ok()) {
    return report;
  }
  if (report->retention == ReportRetention::kAll) {
    report->streaming_digest = report->Digest();
  }
  if (whole_run_ckpt) {
    PRONGHORN_RETURN_IF_ERROR(
        WriteSimCheckpointFile(WholeRunCheckpointPath(ckpt.dir), fingerprint,
                               /*progress=*/report->functions_total,
                               EncodeWholeRunPayload(*report)));
  }
  if (effective.obs != nullptr) {
    report->metrics = effective.obs->SnapshotMetrics();
    report->trace = effective.obs->trace_recorder();
  }
  return report;
}

}  // namespace pronghorn
