#include "src/platform/simulate.h"

#include <memory>
#include <utility>

#include "src/platform/cluster_simulation.h"
#include "src/platform/fleet_simulation.h"
#include "src/platform/report_io.h"
#include "src/platform/sim_environment.h"

namespace pronghorn {

namespace {

// Folds one function's report into the merged view. Callers visit functions
// in canonical (name) order, so the merged latency summary and counters are
// schedule-independent — the same contract FleetSimulation::Run keeps.
void FoldFunction(SimReport& out, std::string name, SimulationReport report) {
  for (const RequestRecord& record : report.records) {
    out.latency.Add(static_cast<double>(record.latency.ToMicros()));
  }
  out.worker_lifetimes += report.worker_lifetimes;
  out.checkpoints += report.checkpoints;
  out.restores += report.restores;
  out.cold_starts += report.cold_starts;
  out.per_function.push_back(SimFunctionResult{std::move(name), std::move(report)});
}

Status ValidateSpecs(SimTopology topology,
                     std::span<const SimFunctionSpec> functions) {
  if (functions.empty()) {
    return InvalidArgumentError("Simulate() needs at least one function");
  }
  if (topology == SimTopology::kSingle && functions.size() != 1) {
    return InvalidArgumentError("kSingle topology takes exactly one function");
  }
  for (size_t i = 0; i < functions.size(); ++i) {
    const SimFunctionSpec& spec = functions[i];
    if (spec.name.empty()) {
      return InvalidArgumentError("function name must be non-empty");
    }
    if (spec.profile == nullptr || spec.policy == nullptr) {
      return InvalidArgumentError("function '" + spec.name +
                                  "' needs a profile and a policy");
    }
    if (spec.requests == 0) {
      return InvalidArgumentError("function '" + spec.name +
                                  "' needs a positive request count");
    }
    for (size_t j = 0; j < i; ++j) {
      if (functions[j].name == spec.name) {
        return AlreadyExistsError("duplicate function '" + spec.name + "'");
      }
    }
  }
  return OkStatus();
}

Result<SimReport> SimulateSingle(const WorkloadRegistry& registry,
                                 const SimFunctionSpec& spec,
                                 const SimOptions& options) {
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options.eviction.Instantiate(options.seed));
  // ClusterSimulation with options.worker_slots == 1 IS the historical
  // FunctionSimulation (same sub-seed, same slot-0 substream).
  ClusterSimulation cluster(*spec.profile, registry, *spec.policy, *eviction,
                            options);
  PRONGHORN_ASSIGN_OR_RETURN(SimulationReport flat,
                             cluster.RunClosedLoop(spec.requests));
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(flat);
  FoldFunction(out, spec.name, std::move(flat));
  return out;
}

Result<SimReport> SimulatePlatform(const WorkloadRegistry& registry,
                                   std::span<const SimFunctionSpec> functions,
                                   const SimOptions& options) {
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options.eviction.Instantiate(options.seed));
  SimEnvironment env(registry, options);
  uint64_t total_requests = 0;
  for (const SimFunctionSpec& spec : functions) {
    // One slot per function, like PlatformSimulation::DeployFunction.
    PRONGHORN_RETURN_IF_ERROR(env.AddDeployment(
        spec.name, *spec.profile, *spec.policy, *eviction, /*worker_slots=*/1,
        /*exploring_slots=*/1,
        SimEnvironment::DeploymentSeed(options.seed, spec.name)));
    total_requests += spec.requests;
  }
  PRONGHORN_RETURN_IF_ERROR(env.RunClosedLoop(total_requests));
  env.RetireAllWorkers();
  EnvironmentReport harvested = env.TakeReport();
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(harvested);
  // std::map iteration is already canonical (name) order.
  for (auto& [name, report] : harvested.per_function) {
    FoldFunction(out, name, std::move(report));
  }
  return out;
}

Result<SimReport> SimulateFleet(const WorkloadRegistry& registry,
                                std::span<const SimFunctionSpec> functions,
                                const SimOptions& options) {
  FleetSimulation fleet(registry, options);
  for (const SimFunctionSpec& spec : functions) {
    FleetFunctionSpec shard;
    shard.name = spec.name;
    shard.profile = spec.profile;
    shard.policy = spec.policy;
    shard.requests = spec.requests;
    shard.worker_slots = options.worker_slots;
    shard.exploring_slots = options.exploring_slots;
    PRONGHORN_RETURN_IF_ERROR(fleet.AddFunction(std::move(shard)));
  }
  PRONGHORN_ASSIGN_OR_RETURN(FleetReport merged, fleet.Run());
  SimReport out;
  static_cast<ReportCore&>(out) = static_cast<const ReportCore&>(merged);
  for (FleetFunctionResult& result : merged.per_function) {
    FoldFunction(out, std::move(result.function), std::move(result.report));
  }
  return out;
}

}  // namespace

uint32_t SimReport::Digest() const {
  std::vector<NamedReportRef> rows;
  rows.reserve(per_function.size());
  for (const SimFunctionResult& result : per_function) {
    rows.push_back(NamedReportRef{result.function, &result.report});
  }
  return ReportDigest(rows, *this);
}

const SimulationReport* SimReport::Find(std::string_view name) const {
  for (const SimFunctionResult& result : per_function) {
    if (result.function == name) {
      return &result.report;
    }
  }
  return nullptr;
}

Result<SimReport> Simulate(const WorkloadRegistry& registry, SimTopology topology,
                           std::span<const SimFunctionSpec> functions,
                           const SimOptions& options, ObsSink* obs) {
  PRONGHORN_RETURN_IF_ERROR(ValidateSpecs(topology, functions));
  SimOptions effective = options;
  if (obs != nullptr) {
    effective.obs = obs;
  }

  Result<SimReport> report = [&]() -> Result<SimReport> {
    switch (topology) {
      case SimTopology::kSingle:
        return SimulateSingle(registry, functions.front(), effective);
      case SimTopology::kPlatform:
        return SimulatePlatform(registry, functions, effective);
      case SimTopology::kFleet:
        return SimulateFleet(registry, functions, effective);
    }
    return InvalidArgumentError("unknown topology");
  }();
  if (!report.ok()) {
    return report;
  }
  if (effective.obs != nullptr) {
    report->metrics = effective.obs->SnapshotMetrics();
    report->trace = effective.obs->trace_recorder();
  }
  return report;
}

}  // namespace pronghorn
