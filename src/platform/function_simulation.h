// Discrete-event simulation of one serverless function deployment.
//
// Mirrors the paper's measurement setup (§5.1): a client issues requests
// against the platform, the platform keeps at most one warm worker for the
// function, evicts it per the eviction model, and the Orchestrator decides
// how each fresh worker starts. End-to-end latency is measured from the
// client's perspective.
//
// Worker startup (cold init or snapshot restore) happens off the request
// critical path by default: like OpenFaaS with a ready pool, the platform
// re-provisions workers asynchronously after eviction, so the client-side
// CDFs reflect function execution only — matching the paper's figures, whose
// latency ranges are far below CRIU restore cost. Setting
// `startup_on_critical_path` charges startup to the first request of each
// lifetime instead (used by the ablation bench).

#ifndef PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_

#include <memory>
#include <optional>
#include <span>

#include "src/checkpoint/criu_like_engine.h"
#include "src/checkpoint/delta_engine.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/orchestrator.h"
#include "src/core/policy.h"
#include "src/platform/eviction.h"
#include "src/platform/metrics.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/workloads/input_model.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// Which checkpoint engine implementation the simulation instantiates.
enum class EngineKind {
  kCriuLike = 0,  // Full-image CRIU-style engine (the paper's setup).
  kDelta = 1,     // Medes-style deduplicating delta engine (§7 related work).
};

struct SimulationOptions {
  // Deterministic experiment seed.
  uint64_t seed = 1;
  EngineKind engine_kind = EngineKind::kCriuLike;
  // Client-side input-size perturbation (§5.1), on by default.
  bool input_noise = true;
  // Charge worker startup to the first request of each lifetime.
  bool startup_on_critical_path = false;
  // When a checkpoint's downtime overlaps the next arrival, delay it (only
  // observable with trace-driven arrivals; closed-loop clients wait anyway).
  bool checkpoint_blocks_requests = false;
  // How long an idle worker holds its resources before the platform reclaims
  // them (the idle-eviction timeout). Feeds the worker-occupancy accounting
  // (memory-time) in trace-driven runs; set it to the eviction model's idle
  // timeout when comparing keep-alive costs.
  Duration idle_resource_hold = Duration::Zero();
  OrchestratorCostModel costs;
  // Chaos layer: when the plan is active, both stores are wrapped in fault
  // decorators driven by the simulated clock. The plan's seed is combined
  // with the simulation seed, so distinct experiments draw distinct faults.
  FaultPlan faults;
  // Bounds for the orchestrator's retry/fallback/quarantine machinery.
  RecoveryOptions recovery;
};

// Owns the full per-function stack: Database, Object Store, checkpoint
// engine, policy state store, and orchestrator. Multiple runs on one
// FunctionSimulation continue the same learned state (worker fleet over
// time); construct a new instance for an independent experiment.
class FunctionSimulation {
 public:
  // `policy` and `eviction` are borrowed and must outlive the simulation.
  FunctionSimulation(const WorkloadProfile& profile, const WorkloadRegistry& registry,
                     const OrchestrationPolicy& policy, const EvictionModel& eviction,
                     SimulationOptions options);
  ~FunctionSimulation();

  FunctionSimulation(const FunctionSimulation&) = delete;
  FunctionSimulation& operator=(const FunctionSimulation&) = delete;

  // Closed loop: the client issues `request_count` requests back-to-back,
  // each after the previous response arrives.
  Result<SimulationReport> RunClosedLoop(uint64_t request_count);

  // Trace-driven: requests arrive at the given absolute times (must be
  // non-decreasing). Models a single-worker deployment: a request arriving
  // while the worker is busy queues behind it.
  Result<SimulationReport> RunTrace(std::span<const TimePoint> arrivals);

  // Read-only access for tests and exhibits.
  const KvDatabase& database() const { return db_; }
  const ObjectStore& object_store() const { return object_store_; }
  const CheckpointEngine& engine() const { return *engine_; }
  const PolicyStateStore& state_store() const { return state_store_; }
  Orchestrator& orchestrator() { return orchestrator_; }
  SimClock& clock() { return clock_; }

  // Loads the current shared policy state (theta + pool) from the Database.
  Result<PolicyState> LoadPolicyState() const { return state_store_.Load(); }

 private:
  // Core loop shared by both run modes.
  Result<SimulationReport> Run(std::span<const TimePoint> arrivals, bool closed_loop,
                               uint64_t request_count);

  const WorkloadProfile& profile_;
  const WorkloadRegistry& registry_;
  const OrchestrationPolicy& policy_;
  const EvictionModel& eviction_;
  SimulationOptions options_;

  SimClock clock_;
  InMemoryKvDatabase db_;
  InMemoryObjectStore object_store_;
  // Engaged only when options.faults is active; the state store and
  // orchestrator then talk to the stores through these decorators.
  std::optional<FaultyKvDatabase> faulty_db_;
  std::optional<FaultyObjectStore> faulty_object_store_;
  std::unique_ptr<CheckpointEngine> engine_;
  PolicyStateStore state_store_;
  Orchestrator orchestrator_;
  InputModel input_model_;
  Rng client_rng_;
  uint64_t next_request_id_ = 1;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_
