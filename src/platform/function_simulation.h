// Discrete-event simulation of one serverless function deployment.
//
// Mirrors the paper's measurement setup (§5.1): a client issues requests
// against the platform, the platform keeps at most one warm worker for the
// function, evicts it per the eviction model, and the Orchestrator decides
// how each fresh worker starts. End-to-end latency is measured from the
// client's perspective.
//
// Worker startup (cold init or snapshot restore) happens off the request
// critical path by default: like OpenFaaS with a ready pool, the platform
// re-provisions workers asynchronously after eviction, so the client-side
// CDFs reflect function execution only — matching the paper's figures, whose
// latency ranges are far below CRIU restore cost. Setting
// `startup_on_critical_path` charges startup to the first request of each
// lifetime instead (used by the ablation bench).
//
// This driver is the single-slot configuration of the shared kernel: one
// SimEnvironment holding one deployment with one SimCore worker slot.

#ifndef PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_

#include <span>

#include "src/platform/sim_environment.h"

namespace pronghorn {

// Owns the full per-function stack (via SimEnvironment): Database, Object
// Store, checkpoint engine, policy state store, and orchestrator. Multiple
// runs on one FunctionSimulation continue the same learned state (worker
// fleet over time); construct a new instance for an independent experiment.
class FunctionSimulation {
 public:
  // `policy` and `eviction` are borrowed and must outlive the simulation.
  FunctionSimulation(const WorkloadProfile& profile, const WorkloadRegistry& registry,
                     const OrchestrationPolicy& policy, const EvictionModel& eviction,
                     SimOptions options);
  ~FunctionSimulation();

  FunctionSimulation(const FunctionSimulation&) = delete;
  FunctionSimulation& operator=(const FunctionSimulation&) = delete;

  // Closed loop: the client issues `request_count` requests back-to-back,
  // each after the previous response arrives.
  Result<SimulationReport> RunClosedLoop(uint64_t request_count);

  // Trace-driven: requests arrive at the given absolute times (must be
  // non-decreasing). Models a single-worker deployment: a request arriving
  // while the worker is busy queues behind it.
  Result<SimulationReport> RunTrace(std::span<const TimePoint> arrivals);

  // Read-only access for tests and exhibits.
  const KvDatabase& database() const { return env_.raw_database(); }
  const ObjectStore& object_store() const { return env_.raw_object_store(); }
  const CheckpointEngine& engine() const { return env_.engine(0); }
  const PolicyStateStore& state_store() const { return env_.state_store(0); }
  Orchestrator& orchestrator() { return env_.orchestrator(0, 0); }
  SimClock& clock() { return env_.clock(); }

  // Loads the current shared policy state (theta + pool) from the Database.
  Result<PolicyState> LoadPolicyState() const { return env_.LoadPolicyState(0); }

 private:
  SimEnvironment env_;
  Status init_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_FUNCTION_SIMULATION_H_
