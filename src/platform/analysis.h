// Post-hoc analysis helpers over simulation reports (Table 4 methodology).

#ifndef PRONGHORN_SRC_PLATFORM_ANALYSIS_H_
#define PRONGHORN_SRC_PLATFORM_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/platform/metrics.h"

namespace pronghorn {

// The paper's Table 4 convergence metric: slide a window of `window` over the
// recorded latencies and report the global index of the first window whose
// median is within `tolerance` (fractional, e.g. 0.02) of the final value —
// the "final value" being the median of the last window. Returns nullopt when
// there are fewer than `window` records or no window qualifies.
std::optional<uint64_t> ConvergenceRequest(std::span<const RequestRecord> records,
                                           size_t window, double tolerance);

// Median latency (microseconds) per maturity request number, aggregated over
// all lifetimes in the report — the series Figure 1 plots.
struct MaturityLatency {
  uint64_t request_number = 0;
  double median_latency_us = 0.0;
  uint64_t samples = 0;
};
std::vector<MaturityLatency> LatencyByMaturity(std::span<const RequestRecord> records);

// Multi-stream form for sharded runs: aggregates the record streams of many
// independent deployments into one maturity series. Order-insensitive by
// construction — samples are bucketed by request number and summarized by
// median, so any permutation of `streams` (or of records within a maturity
// bucket) produces an identical series. This is the property the fleet
// merge relies on when it combines per-shard reports.
std::vector<MaturityLatency> LatencyByMaturityAcrossStreams(
    std::span<const std::span<const RequestRecord>> streams);

// Percentage improvement of `ours` over `baseline` medians: positive means
// `ours` is faster. Returns 0 when the baseline median is 0.
double MedianImprovementPercent(const SimulationReport& baseline,
                                const SimulationReport& ours);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_ANALYSIS_H_
