// The shared simulation environment behind every driver: one control plane.
//
// A SimEnvironment owns the global stores (Database + Object Store), the
// optional fault decorators around them, the simulated clock, and any number
// of function deployments. Each deployment owns its checkpoint engine,
// policy-state scope, input model, client RNG, and a row of SimCore worker
// slots (the first `exploring_slots` run the exploring policy, the rest a
// frozen exploit-only wrapper). The four public drivers are thin
// configurations of this class:
//
//   FunctionSimulation  — one deployment, one slot
//   ClusterSimulation   — one deployment, many slots
//   PlatformSimulation  — many deployments, shared stores, one slot each
//   FleetSimulation     — one single-deployment environment per shard,
//                         merged canonically across a thread pool
//
// Determinism contract: every RNG substream keys off the deployment's
// sub-seed (engine = HashCombine(sub_seed, 0xe1), client = 0xc1, slot 0's
// orchestrator = 0x0e, slot i>0 = HashCombine(0x0e, i)), and DeploymentSeed
// derives sub-seeds from (environment seed, deployment name) only — never
// from registration order, thread, or shard index.

#ifndef PRONGHORN_SRC_PLATFORM_SIM_ENVIRONMENT_H_
#define PRONGHORN_SRC_PLATFORM_SIM_ENVIRONMENT_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/checkpoint/criu_like_engine.h"
#include "src/checkpoint/delta_engine.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/orchestrator.h"
#include "src/core/policy.h"
#include "src/core/stop_condition_policy.h"
#include "src/platform/eviction.h"
#include "src/platform/metrics.h"
#include "src/platform/sim_core.h"
#include "src/platform/sim_options.h"
#include "src/service/orchestrator_service.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"
#include "src/workloads/input_model.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// Multi-deployment results: per-function reports plus environment-wide
// accounting over the shared stores. Per-function `faults` cover that
// deployment's orchestrators and state store; the environment-level `faults`
// additionally fold in the shared store/database decorators, which cannot be
// attributed to a single function.
struct EnvironmentReport : ReportCore {
  std::map<std::string, SimulationReport> per_function;
};

class SimEnvironment {
 public:
  // One request arrival in a trace-driven run, resolved to a deployment.
  struct Arrival {
    size_t deployment = 0;
    TimePoint arrival;
  };

  // Pull-based arrival feed for RunArrivalStream: yields arrivals in
  // non-decreasing time order, nullopt at end-of-stream. Implementations
  // (e.g. an adapter over trace/FleetArrivalStream) hold O(1)–O(functions)
  // state, never the materialized invocation list.
  class ArrivalSource {
   public:
    virtual ~ArrivalSource() = default;
    virtual std::optional<Arrival> Next() = 0;
  };

  // Adapter replaying a materialized arrival list as a stream (tests and
  // callers that already hold a trace).
  class SpanArrivalSource final : public ArrivalSource {
   public:
    explicit SpanArrivalSource(std::span<const Arrival> arrivals)
        : arrivals_(arrivals) {}
    std::optional<Arrival> Next() override {
      if (next_ >= arrivals_.size()) {
        return std::nullopt;
      }
      return arrivals_[next_++];
    }

   private:
    std::span<const Arrival> arrivals_;
    size_t next_ = 0;
  };

  SimEnvironment(const WorkloadRegistry& registry, SimOptions options);
  ~SimEnvironment();

  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  // The RNG sub-seed for a deployment: HashCombine of the environment seed
  // with a stable (FNV-1a) hash of the deployment name. Depends only on
  // (seed, name) — not on thread count, composition, or registration order.
  static uint64_t DeploymentSeed(uint64_t seed, std::string_view name);

  // Registers a deployment with `worker_slots` slots, of which the first
  // `exploring_slots` (clamped to worker_slots) run `policy` and the rest a
  // frozen exploit-only wrapper over it. `profile`, `policy`, and `eviction`
  // are borrowed and must outlive the environment. `sub_seed` scopes every
  // RNG substream of the deployment; single-deployment drivers pass their
  // experiment seed, multi-deployment drivers pass DeploymentSeed(seed, name).
  Status AddDeployment(std::string name, const WorkloadProfile& profile,
                       const OrchestrationPolicy& policy,
                       const EvictionModel& eviction, uint32_t worker_slots,
                       uint32_t exploring_slots, uint64_t sub_seed);

  // Closed loop with one outstanding request per slot: each request goes to
  // the slot (across all deployments) that frees earliest, and is issued the
  // moment that slot's previous response reached its client. `request_count`
  // is the environment-wide total.
  Status RunClosedLoop(uint64_t request_count);

  // Trace-driven: serves `arrivals` in order (must be non-decreasing), each
  // on the least-loaded slot of its deployment; a request arriving while
  // every slot is busy queues behind the earliest-free one.
  Status RunArrivals(std::span<const Arrival> arrivals);

  // Trace-driven from a pull source, for replays whose invocation list is
  // too large to materialize (fleet-scale streaming traces). Dispatch order
  // and slot choice match RunArrivals exactly; the one divergence is idle
  // eviction, which RunArrivals resolves via a whole-trace lookahead and a
  // stream cannot — here a deployment's eviction check is deferred until its
  // successor arrival is pulled (or end-of-stream). The deferral reorders a
  // slot's store deletes relative to OTHER deployments' traffic, so replays
  // are bit-equivalent to RunArrivals for single-deployment environments and
  // for runs whose eviction model never fires mid-trace; multi-deployment
  // runs with mid-trace eviction may differ in store-accounting peaks and
  // fault-RNG draw order while serving the identical request sequence.
  Status RunArrivalStream(ArrivalSource& source);

  // Retires every still-warm worker at the current simulated time, folding
  // occupancy accounting into the per-deployment reports. Closed-loop drivers
  // call this at the end of a run; trace replays that keep sessions warm
  // across calls (PlatformSimulation::Replay) do not.
  void RetireAllWorkers();

  // Harvests results accumulated since the previous Take*. Records and
  // lifecycle counters are per-epoch; store accounting, overheads, faults,
  // and end_time are cumulative snapshots of the environment (matching the
  // drivers' historical semantics for repeated runs).
  EnvironmentReport TakeReport();
  // Single-deployment flattening: the per-function report with the
  // environment-wide store accounting and decorator fault stats folded in.
  // Requires exactly one deployment.
  SimulationReport TakeFlatReport();

  size_t deployment_count() const { return deployments_.size(); }
  // Deployment index by name; kNotFound for unknown names.
  Result<size_t> DeploymentIndex(std::string_view name) const;
  const std::string& deployment_name(size_t index) const {
    return deployments_[index].name;
  }

  // Read-only store access for tests and exhibits (the raw in-memory stores,
  // not the fault decorators).
  const KvDatabase& raw_database() const { return db_; }
  const ObjectStore& raw_object_store() const { return object_store_; }
  // The snapshot store the deployments actually talk to (fault decorator
  // included when chaos is on).
  SnapshotStore& snapshot_store() { return active_snapshot_store(); }
  SimClock& clock() { return clock_; }

  // Per-deployment handles.
  const CheckpointEngine& engine(size_t deployment) const {
    return *deployments_[deployment].engine;
  }
  const PolicyStateStore& state_store(size_t deployment) const {
    return *deployments_[deployment].state_store;
  }
  Orchestrator& orchestrator(size_t deployment, size_t slot) {
    return deployments_[deployment].slots[slot].orchestrator();
  }
  Result<PolicyState> LoadPolicyState(size_t deployment) const {
    return deployments_[deployment].state_store->Load();
  }

  // The live service every slot talks to in service mode; null otherwise.
  OrchestratorService* service() { return service_; }

 private:
  struct Deployment {
    std::string name;
    const WorkloadProfile* profile = nullptr;
    std::unique_ptr<StopConditionPolicy> exploit_policy;
    std::unique_ptr<CheckpointEngine> engine;
    std::unique_ptr<PolicyStateStore> state_store;
    std::unique_ptr<InputModel> input_model;
    Rng client_rng{0};
    std::vector<SimCore> slots;
    // Service mode only: one wire client per slot, installed as the slot's
    // backend (heap-allocated so the backend pointers survive vector moves).
    std::vector<std::unique_ptr<ServiceClient>> clients;
    SimulationReport report;
  };

  KvDatabase& active_database();
  ObjectStore& active_object_store();
  SnapshotStore& active_snapshot_store();
  // Builds the request, draws its input scale, and serves it on `slot`.
  Status Dispatch(Deployment& deployment, SimCore& slot, TimePoint arrival);
  // Folds cumulative orchestrator/state-store stats into an epoch report.
  void FinishReport(Deployment& deployment, SimulationReport& report);

  const WorkloadRegistry& registry_;
  SimOptions options_;

  SimClock clock_;
  InMemoryKvDatabase db_;
  InMemoryObjectStore object_store_;
  // Engaged only when options.faults is active; deployments then talk to the
  // stores through these decorators. The object-store decorator exists only
  // for flat store builds — a dedup build routes chaos through
  // faulty_snapshot_store_ instead (same salt, same draw order).
  std::optional<FaultyKvDatabase> faulty_db_;
  std::optional<FaultyObjectStore> faulty_object_store_;
  // The snapshot store behind every orchestrator: the flat compatibility
  // adapter over active_object_store(), or a DedupSnapshotStore, per
  // options.store.kind.
  std::unique_ptr<SnapshotStore> base_snapshot_store_;
  // Chaos decorator for dedup builds (flat builds inject below the adapter).
  std::optional<FaultySnapshotStore> faulty_snapshot_store_;
  std::vector<Deployment> deployments_;
  uint64_t next_request_id_ = 1;

  // Service mode: `service_` is what the slots' clients call — either the
  // borrowed shared instance (fleet runs) or `owned_service_`. Declared last
  // so a private service shuts its shard threads down before anything it
  // borrows (orchestrators, clock, stores) is destroyed.
  OrchestratorService* service_ = nullptr;
  std::unique_ptr<OrchestratorService> owned_service_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_SIM_ENVIRONMENT_H_
