#include "src/platform/cluster_simulation.h"

#include <algorithm>

namespace pronghorn {

namespace {

// Mirrors FunctionSimulation's plan scoping (see function_simulation.cc).
FaultPlan ScopeClusterPlan(const FaultPlan& base, uint64_t sim_seed, uint64_t salt) {
  FaultPlan plan = base;
  plan.seed = HashCombine(sim_seed, HashCombine(salt, base.seed));
  return plan;
}

}  // namespace

DistributionSummary ClusterReport::LatencySummary() const {
  DistributionSummary summary;
  for (const RequestRecord& record : records) {
    summary.Add(static_cast<double>(record.latency.ToMicros()));
  }
  return summary;
}

ClusterSimulation::ClusterSimulation(const WorkloadProfile& profile,
                                     const WorkloadRegistry& registry,
                                     const OrchestrationPolicy& policy,
                                     const EvictionModel& eviction,
                                     ClusterOptions options)
    : profile_(profile),
      registry_(registry),
      eviction_(eviction),
      options_(options),
      faulty_db_(options.faults.Active()
                     ? std::optional<FaultyKvDatabase>(
                           std::in_place, db_,
                           ScopeClusterPlan(options.faults, options.seed, 0xdbULL),
                           &clock_)
                     : std::nullopt),
      faulty_object_store_(
          options.faults.Active()
              ? std::optional<FaultyObjectStore>(
                    std::in_place, object_store_,
                    ScopeClusterPlan(options.faults, options.seed, 0x0bULL), &clock_)
              : std::nullopt),
      engine_(HashCombine(options.seed, 0xc1e1ULL)),
      state_store_(faulty_db_.has_value() ? static_cast<KvDatabase&>(*faulty_db_)
                                          : static_cast<KvDatabase&>(db_),
                   profile.name, policy.config(), &clock_),
      exploit_policy_(policy, /*explore_requests=*/0),
      input_model_(profile, options.input_noise),
      client_rng_(HashCombine(options.seed, 0xc1c1ULL)) {
  options_.exploring_slots = std::min(options_.exploring_slots, options_.worker_slots);
  ObjectStore& slot_store = faulty_object_store_.has_value()
                                ? static_cast<ObjectStore&>(*faulty_object_store_)
                                : static_cast<ObjectStore&>(object_store_);
  slots_.reserve(options_.worker_slots);
  for (uint32_t i = 0; i < options_.worker_slots; ++i) {
    Slot slot;
    slot.exploring = i < options_.exploring_slots;
    const OrchestrationPolicy& slot_policy =
        slot.exploring ? policy
                       : static_cast<const OrchestrationPolicy&>(exploit_policy_);
    slot.orchestrator = std::make_unique<Orchestrator>(
        profile_, registry_, slot_policy, engine_, slot_store, state_store_, clock_,
        HashCombine(options_.seed, 0x510ULL + i), options_.costs, options_.recovery);
    slots_.push_back(std::move(slot));
  }
}

ClusterSimulation::~ClusterSimulation() = default;

Result<ClusterReport> ClusterSimulation::RunClosedLoop(uint64_t request_count) {
  if (slots_.empty()) {
    return FailedPreconditionError("cluster has no worker slots");
  }
  ClusterReport report;
  report.records.reserve(request_count);

  for (uint64_t i = 0; i < request_count; ++i) {
    // Least-loaded dispatch: the slot that frees earliest takes the next
    // request; its client issues it at that moment (closed loop per slot).
    Slot* slot = &slots_[0];
    for (Slot& candidate : slots_) {
      if (candidate.free_at < slot->free_at) {
        slot = &candidate;
      }
    }
    const TimePoint arrival = slot->free_at;
    clock_.AdvanceTo(arrival);

    bool fresh_worker = false;
    if (!slot->session.has_value()) {
      PRONGHORN_ASSIGN_OR_RETURN(WorkerSession started,
                                 slot->orchestrator->StartWorker());
      slot->session.emplace(std::move(started));
      slot->requests_in_lifetime = 0;
      slot->worker_started_at = arrival;
      fresh_worker = true;
      report.worker_lifetimes += 1;
      if (slot->session->restored) {
        report.restores += 1;
      } else {
        report.cold_starts += 1;
      }
    }

    FunctionRequest request;
    request.id = next_request_id_++;
    request.input_scale = input_model_.NextScale(client_rng_);
    PRONGHORN_ASSIGN_OR_RETURN(RequestOutcome outcome,
                               slot->orchestrator->ServeRequest(*slot->session, request));
    slot->requests_in_lifetime += 1;

    const Duration latency = outcome.latency;
    const TimePoint completion = arrival + latency;
    slot->free_at = completion;
    clock_.AdvanceTo(completion);

    if (outcome.checkpoint_taken) {
      report.checkpoints += 1;
    }

    RequestRecord record;
    record.global_index = i;
    record.request_number = outcome.request_number;
    record.latency = latency;
    record.first_of_lifetime = fresh_worker;
    record.cold_start = fresh_worker && !slot->session->restored;
    record.checkpoint_after = outcome.checkpoint_taken;
    report.records.push_back(record);
    if (slot->exploring) {
      report.exploring_latency.Add(static_cast<double>(latency.ToMicros()));
    } else {
      report.exploiting_latency.Add(static_cast<double>(latency.ToMicros()));
    }

    if (eviction_.ShouldEvict(slot->requests_in_lifetime, slot->worker_started_at,
                              completion, completion)) {
      slot->session.reset();
    }
  }

  report.object_store = object_store_.accounting();
  report.database = db_.accounting();
  for (const Slot& slot : slots_) {
    AccumulateRecovery(report.faults, slot.orchestrator->recovery_stats());
  }
  AccumulateStateStore(report.faults, state_store_.stats());
  if (faulty_object_store_.has_value()) {
    AccumulateStoreFaults(report.faults, faulty_object_store_->stats());
  }
  if (faulty_db_.has_value()) {
    AccumulateDatabaseFaults(report.faults, faulty_db_->stats());
  }
  return report;
}

Result<PolicyState> ClusterSimulation::LoadPolicyState() const {
  return state_store_.Load();
}

}  // namespace pronghorn
