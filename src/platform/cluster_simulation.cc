#include "src/platform/cluster_simulation.h"

namespace pronghorn {

ClusterSimulation::ClusterSimulation(const WorkloadProfile& profile,
                                     const WorkloadRegistry& registry,
                                     const OrchestrationPolicy& policy,
                                     const EvictionModel& eviction,
                                     SimOptions options)
    : env_(registry, options),
      init_(env_.AddDeployment(profile.name, profile, policy, eviction,
                               options.worker_slots, options.exploring_slots,
                               /*sub_seed=*/options.seed)) {}

ClusterSimulation::~ClusterSimulation() = default;

Result<ClusterReport> ClusterSimulation::RunClosedLoop(uint64_t request_count) {
  PRONGHORN_RETURN_IF_ERROR(init_);
  PRONGHORN_RETURN_IF_ERROR(env_.RunClosedLoop(request_count));
  env_.RetireAllWorkers();
  return env_.TakeFlatReport();
}

Result<PolicyState> ClusterSimulation::LoadPolicyState() const {
  return env_.LoadPolicyState(0);
}

}  // namespace pronghorn
