// Multi-worker cluster simulation for one function deployment.
//
// The paper's deployment story (§3.2, §5.3 "Bounding system costs"): many
// workers serve one function concurrently behind a load balancer, all
// coordinating through the global Database and Object Store. "Only a
// nonempty subset of containers running a given application need to be
// exploring in order to realize performance benefits — the remaining
// containers can simply restore from the best snapshots found so far.
// Exploration overheads can therefore be amortized over many containers."
//
// ClusterSimulation models exactly that: `worker_slots` concurrent workers,
// of which the first `exploring_slots` run the exploring policy and the rest
// run a frozen exploit-only wrapper over it; all share one Database (latency
// knowledge + snapshot pool) and one Object Store.

#ifndef PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/orchestrator.h"
#include "src/core/stop_condition_policy.h"
#include "src/platform/eviction.h"
#include "src/platform/metrics.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/workloads/input_model.h"

namespace pronghorn {

struct ClusterOptions {
  // Concurrent worker slots behind the load balancer.
  uint32_t worker_slots = 4;
  // Slots whose orchestrator runs the exploring policy; the remaining slots
  // exploit only (restore best known snapshot, never checkpoint). Clamped to
  // worker_slots.
  uint32_t exploring_slots = 1;
  uint64_t seed = 1;
  bool input_noise = true;
  OrchestratorCostModel costs;
  // Chaos layer: when active, the shared Database and Object Store are
  // wrapped in seeded fault decorators (see SimulationOptions::faults).
  FaultPlan faults;
  RecoveryOptions recovery;
};

struct ClusterReport {
  // Per-request records across all slots, in completion order.
  std::vector<RequestRecord> records;
  // Split by slot role.
  DistributionSummary exploring_latency;
  DistributionSummary exploiting_latency;

  uint64_t worker_lifetimes = 0;
  uint64_t checkpoints = 0;
  uint64_t restores = 0;
  uint64_t cold_starts = 0;

  StoreAccounting object_store;
  KvAccounting database;
  FaultRecoveryStats faults;

  DistributionSummary LatencySummary() const;
};

class ClusterSimulation {
 public:
  // `policy` is the exploring policy; exploit slots wrap it in a frozen
  // StopConditionPolicy sharing the same Database state. `eviction` applies
  // per worker. Both are borrowed.
  ClusterSimulation(const WorkloadProfile& profile, const WorkloadRegistry& registry,
                    const OrchestrationPolicy& policy, const EvictionModel& eviction,
                    ClusterOptions options);
  ~ClusterSimulation();

  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  // Closed loop with one outstanding request per worker slot: each slot's
  // client issues its next request as soon as the previous one completes.
  // `request_count` is the cluster-wide total.
  Result<ClusterReport> RunClosedLoop(uint64_t request_count);

  Result<PolicyState> LoadPolicyState() const;

 private:
  struct Slot {
    std::unique_ptr<Orchestrator> orchestrator;
    std::optional<WorkerSession> session;
    uint64_t requests_in_lifetime = 0;
    TimePoint worker_started_at;
    TimePoint free_at;
    bool exploring = false;
  };

  const WorkloadProfile& profile_;
  const WorkloadRegistry& registry_;
  const EvictionModel& eviction_;
  ClusterOptions options_;

  SimClock clock_;
  InMemoryKvDatabase db_;
  InMemoryObjectStore object_store_;
  // Engaged only when options.faults is active (see FunctionSimulation).
  std::optional<FaultyKvDatabase> faulty_db_;
  std::optional<FaultyObjectStore> faulty_object_store_;
  CriuLikeEngine engine_;
  PolicyStateStore state_store_;
  StopConditionPolicy exploit_policy_;
  InputModel input_model_;
  Rng client_rng_;
  std::vector<Slot> slots_;
  uint64_t next_request_id_ = 1;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_
