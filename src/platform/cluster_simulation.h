// Multi-worker cluster simulation for one function deployment.
//
// The paper's deployment story (§3.2, §5.3 "Bounding system costs"): many
// workers serve one function concurrently behind a load balancer, all
// coordinating through the global Database and Object Store. "Only a
// nonempty subset of containers running a given application need to be
// exploring in order to realize performance benefits — the remaining
// containers can simply restore from the best snapshots found so far.
// Exploration overheads can therefore be amortized over many containers."
//
// ClusterSimulation models exactly that: `worker_slots` concurrent workers,
// of which the first `exploring_slots` run the exploring policy and the rest
// run a frozen exploit-only wrapper over it; all share one Database (latency
// knowledge + snapshot pool) and one Object Store. It is the multi-slot
// configuration of the shared kernel: one SimEnvironment, one deployment,
// `worker_slots` SimCore slots.

#ifndef PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_

#include "src/platform/sim_environment.h"

namespace pronghorn {

// A cluster run produces the same flattened report as every other driver:
// per-request records (global_index in completion order), role-split latency
// summaries, lifecycle counters, and the environment-wide accountings.
using ClusterReport = SimulationReport;

class ClusterSimulation {
 public:
  // `policy` is the exploring policy; exploit slots wrap it in a frozen
  // StopConditionPolicy sharing the same Database state. `eviction` applies
  // per worker. Both are borrowed.
  ClusterSimulation(const WorkloadProfile& profile, const WorkloadRegistry& registry,
                    const OrchestrationPolicy& policy, const EvictionModel& eviction,
                    SimOptions options);
  ~ClusterSimulation();

  ClusterSimulation(const ClusterSimulation&) = delete;
  ClusterSimulation& operator=(const ClusterSimulation&) = delete;

  // Closed loop with one outstanding request per worker slot: each slot's
  // client issues its next request as soon as the previous one completes.
  // `request_count` is the cluster-wide total.
  Result<ClusterReport> RunClosedLoop(uint64_t request_count);

  Result<PolicyState> LoadPolicyState() const;

 private:
  SimEnvironment env_;
  Status init_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_CLUSTER_SIMULATION_H_
