#include "src/platform/eviction.h"

namespace pronghorn {

Result<std::unique_ptr<EveryKRequestsEviction>> EveryKRequestsEviction::Create(
    uint64_t k) {
  if (k == 0) {
    return InvalidArgumentError("eviction interval k must be >= 1");
  }
  return std::unique_ptr<EveryKRequestsEviction>(new EveryKRequestsEviction(k));
}

bool EveryKRequestsEviction::ShouldEvict(uint64_t requests_in_lifetime,
                                         TimePoint started_at, TimePoint now,
                                         TimePoint next_arrival) const {
  (void)started_at;
  (void)now;
  (void)next_arrival;
  return requests_in_lifetime >= k_;
}

bool IdleTimeoutEviction::ShouldEvict(uint64_t requests_in_lifetime,
                                      TimePoint started_at, TimePoint now,
                                      TimePoint next_arrival) const {
  (void)requests_in_lifetime;
  (void)started_at;
  if (next_arrival < now) {
    return false;  // Back-to-back arrivals never idle out.
  }
  return next_arrival - now > timeout_;
}

bool MaxLifetimeEviction::ShouldEvict(uint64_t requests_in_lifetime,
                                      TimePoint started_at, TimePoint now,
                                      TimePoint next_arrival) const {
  (void)requests_in_lifetime;
  (void)next_arrival;
  return now - started_at > max_lifetime_;
}

Result<std::unique_ptr<GeometricEviction>> GeometricEviction::Create(
    double mean_requests, uint64_t seed) {
  if (mean_requests < 1.0) {
    return InvalidArgumentError("geometric eviction mean must be >= 1 request");
  }
  return std::unique_ptr<GeometricEviction>(new GeometricEviction(mean_requests, seed));
}

bool GeometricEviction::ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at,
                                    TimePoint now, TimePoint next_arrival) const {
  (void)started_at;
  (void)now;
  (void)next_arrival;
  if (requests_in_lifetime == 0) {
    return false;
  }
  return rng_.Bernoulli(1.0 / mean_requests_);
}

bool AnyOfEviction::ShouldEvict(uint64_t requests_in_lifetime, TimePoint started_at,
                                TimePoint now, TimePoint next_arrival) const {
  for (const EvictionModel* model : models_) {
    if (model != nullptr &&
        model->ShouldEvict(requests_in_lifetime, started_at, now, next_arrival)) {
      return true;
    }
  }
  return false;
}

}  // namespace pronghorn
