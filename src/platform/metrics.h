// Experiment metrics: per-request records plus platform counters.

#ifndef PRONGHORN_SRC_PLATFORM_METRICS_H_
#define PRONGHORN_SRC_PLATFORM_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/core/orchestrator.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"

namespace pronghorn {

// Flattened fault-and-recovery accounting for one deployment (or a merged
// fleet): what the chaos layer injected and what the recovery machinery did
// about it. All fields are sums, so shard merges commute.
struct FaultRecoveryStats {
  // Injected by the fault layer.
  uint64_t store_faults = 0;  // Object-store ops failed (coin flip or outage).
  uint64_t db_faults = 0;     // Database ops failed.
  uint64_t corrupted_puts = 0;
  uint64_t torn_puts = 0;
  uint64_t latency_injections = 0;
  // Recovery behavior (orchestrator side).
  uint64_t restore_retries = 0;
  uint64_t restore_failures = 0;
  uint64_t restore_fallbacks = 0;
  uint64_t snapshots_quarantined = 0;
  uint64_t stale_entries_pruned = 0;
  uint64_t degraded_starts = 0;
  uint64_t observations_buffered = 0;
  uint64_t observations_replayed = 0;
  uint64_t observations_dropped = 0;
  uint64_t checkpoints_skipped = 0;
  uint64_t eviction_deletes_deferred = 0;
  uint64_t orphans_collected = 0;
  // Recovery behavior (state-store side).
  uint64_t cas_attempts = 0;
  uint64_t cas_conflicts = 0;
  uint64_t db_transient_retries = 0;
};

void MergeFaultRecoveryStats(FaultRecoveryStats& into, const FaultRecoveryStats& from);

// Fold one component's counters into the flattened report row.
void AccumulateStoreFaults(FaultRecoveryStats& into, const FaultInjectionStats& from);
void AccumulateDatabaseFaults(FaultRecoveryStats& into, const FaultInjectionStats& from);
void AccumulateRecovery(FaultRecoveryStats& into, const RecoveryStats& from);
void AccumulateStateStore(FaultRecoveryStats& into, const StateStoreStats& from);

// One row per served request (the raw data behind every figure).
struct RequestRecord {
  // 0-based index within the experiment's request stream.
  uint64_t global_index = 0;
  // JIT maturity index of the request (1 = first request since cold start).
  uint64_t request_number = 0;
  // User-visible end-to-end latency.
  Duration latency;
  // True when this request was the first served by a fresh worker.
  bool first_of_lifetime = false;
  // True when the fresh worker was a cold start (vs snapshot restore).
  bool cold_start = false;
  // True when a checkpoint was taken right after this request.
  bool checkpoint_after = false;
};

// The environment-level accounting shared by every report type: what the
// stores did and what the chaos layer injected. Single-environment reports
// (function/cluster) fold it into the flat report; multi-deployment reports
// (environment/platform/fleet) carry it once next to their per-function rows.
// Serialization, digest, and merge helpers for this core live in report_io so
// they are defined exactly once.
struct ReportCore {
  StoreAccounting object_store;
  KvAccounting database;
  FaultRecoveryStats faults;
};

// Everything a finished simulation reports. One struct serves every driver:
// a single-slot function run, a multi-slot cluster, one function of a
// platform replay, or one shard of a fleet — they all accumulate the same
// rows through the shared kernel (sim_core.h).
struct SimulationReport : ReportCore {
  std::vector<RequestRecord> records;
  // Latency split by slot role (§5.3 amortization): samples from exploring
  // slots vs frozen exploit-only slots. Single-slot runs put everything in
  // exploring_latency.
  DistributionSummary exploring_latency;
  DistributionSummary exploiting_latency;

  uint64_t worker_lifetimes = 0;
  uint64_t cold_starts = 0;
  uint64_t restores = 0;
  uint64_t checkpoints = 0;

  Duration total_checkpoint_downtime;
  Duration total_startup_latency;  // Cold init + restore + image download.
  // Wall-clock time workers spent provisioned (start to eviction), and the
  // memory they held over that time — the provider-side cost that keep-alive
  // strategies trade against latency (§7 related work).
  Duration total_worker_alive_time;
  double worker_memory_time_mb_s = 0.0;
  TimePoint end_time;

  OrchestratorOverheads overheads;

  // Latency distribution over all records.
  DistributionSummary LatencySummary() const;
  // Latency distribution over records with request_number in [lo, hi].
  DistributionSummary LatencySummaryForMaturity(uint64_t lo, uint64_t hi) const;
  // Median latency in microseconds (the paper's headline comparator).
  double MedianLatencyUs() const;
};

// Accounting merges for sharded runs. Every field is a sum — including the
// store peak, because shard-local stores coexist in time, so the fleet's
// footprint bound is the sum of per-store high-water marks. Sums commute, so
// folding shard accountings in any order yields the same totals; the fleet
// merge still folds in canonical (name) order for bit-stable reports.
void MergeAccounting(StoreAccounting& into, const StoreAccounting& from);
void MergeAccounting(KvAccounting& into, const KvAccounting& from);

// Sums one orchestrator's control-plane overheads into a report row; used to
// fold a deployment's worker slots into its SimulationReport.
void MergeOverheads(OrchestratorOverheads& into, const OrchestratorOverheads& from);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_METRICS_H_
