#include "src/platform/sim_options.h"

namespace pronghorn {

std::string_view RetentionLabel(ReportRetention retention) {
  switch (retention) {
    case ReportRetention::kAll:
      return "all";
    case ReportRetention::kTopLatency:
      return "top-latency";
    case ReportRetention::kReservoir:
      return "reservoir";
  }
  return "unknown";
}

Result<ReportRetention> ParseRetention(std::string_view label) {
  if (label == "all") {
    return ReportRetention::kAll;
  }
  if (label == "top-latency" || label == "topk" || label == "top-k") {
    return ReportRetention::kTopLatency;
  }
  if (label == "reservoir") {
    return ReportRetention::kReservoir;
  }
  return InvalidArgumentError("unknown retention mode '" + std::string(label) +
                              "' (want all | top-latency | reservoir)");
}

Result<std::unique_ptr<EvictionModel>> FleetEvictionSpec::Instantiate(
    uint64_t function_seed) const {
  switch (kind) {
    case Kind::kEveryK: {
      PRONGHORN_ASSIGN_OR_RETURN(auto model, EveryKRequestsEviction::Create(k));
      return std::unique_ptr<EvictionModel>(std::move(model));
    }
    case Kind::kGeometric: {
      PRONGHORN_ASSIGN_OR_RETURN(
          auto model, GeometricEviction::Create(mean_requests, function_seed));
      return std::unique_ptr<EvictionModel>(std::move(model));
    }
    case Kind::kIdleTimeout:
      if (idle_timeout <= Duration::Zero()) {
        return InvalidArgumentError("idle timeout must be positive");
      }
      return std::unique_ptr<EvictionModel>(
          std::make_unique<IdleTimeoutEviction>(idle_timeout));
  }
  return InvalidArgumentError("unknown eviction kind");
}

}  // namespace pronghorn
