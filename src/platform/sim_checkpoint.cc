#include "src/platform/sim_checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "src/checkpoint/snapshot.h"
#include "src/common/rng.h"

namespace pronghorn {

namespace {

uint64_t HashString(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Flushes the directory entry so the rename itself survives a power cut.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void SimFingerprint::AddFunction(std::string_view name, uint64_t requests,
                                 uint32_t worker_slots, uint32_t exploring_slots) {
  uint64_t entry = HashString(name);
  entry = HashCombine(entry, requests);
  entry = HashCombine(entry, worker_slots);
  entry = HashCombine(entry, exploring_slots);
  // XOR-fold so registration order is irrelevant (names are unique, so no
  // two entries can cancel).
  value_ ^= HashCombine(0x5fb7ULL, entry);
}

void SimFingerprint::AddOptions(const SimOptions& options) {
  uint64_t h = HashCombine(value_, options.seed);
  h = HashCombine(h, static_cast<uint64_t>(options.engine_kind));
  h = HashCombine(h, options.input_noise ? 1 : 0);
  h = HashCombine(h, static_cast<uint64_t>(options.eviction.kind));
  h = HashCombine(h, options.eviction.k);
  h = HashCombine(h, HashDouble(options.eviction.mean_requests));
  h = HashCombine(h, static_cast<uint64_t>(options.eviction.idle_timeout.ToMicros()));
  h = HashCombine(h, static_cast<uint64_t>(options.retention.mode));
  h = HashCombine(h, options.retention.k);
  h = HashCombine(h, options.retention.seed);
  // The chaos plan changes every digest, so it must pin the fingerprint too.
  h = HashCombine(h, HashDouble(options.faults.get_failure_rate));
  h = HashCombine(h, HashDouble(options.faults.put_failure_rate));
  h = HashCombine(h, HashDouble(options.faults.delete_failure_rate));
  h = HashCombine(h, HashDouble(options.faults.metadata_failure_rate));
  h = HashCombine(h, HashDouble(options.faults.corruption_rate));
  h = HashCombine(h, HashDouble(options.faults.torn_write_rate));
  h = HashCombine(h, HashDouble(options.faults.chunk_corruption_rate));
  h = HashCombine(h, HashDouble(options.faults.manifest_corruption_rate));
  h = HashCombine(h, options.faults.seed);
  // The store build changes chaos RNG routing (and, for dedup + chunk
  // faults, outcomes), so it pins the fingerprint like the chaos plan does.
  h = HashCombine(h, static_cast<uint64_t>(options.store.kind));
  h = HashCombine(h, options.store.chunker.chunk_size);
  h = HashCombine(h, options.store.chunker.min_size);
  h = HashCombine(h, options.store.chunker.max_size);
  h = HashCombine(h, options.store.chunker.cdc ? 1 : 0);
  h = HashCombine(h, options.store.lazy_restore ? 1 : 0);
  h = HashCombine(h, options.store.chunk_cache_bytes);
  h = HashCombine(h, seed);
  h = HashCombine(h, topology);
  value_ = h;
}

Status WriteSimCheckpointFile(const std::string& path, uint64_t fingerprint,
                              uint64_t progress, std::span<const uint8_t> payload) {
  // Frame the state exactly the way engine snapshots are framed: the
  // SnapshotImage wire format already carries magic, version, and a CRC32
  // trailer, and its Decode() is the corruption oracle the recovery paths
  // trust.
  SnapshotMetadata metadata;
  metadata.id.value = fingerprint;
  metadata.function = "sim-checkpoint";
  metadata.request_number = progress;
  metadata.logical_size_bytes = payload.size();
  metadata.created_at = TimePoint::FromMicros(0);  // Simulated time only.
  const SnapshotImage image(std::move(metadata),
                            std::vector<uint8_t>(payload.begin(), payload.end()));
  const std::vector<uint8_t> frame = image.Encode();

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open checkpoint temp file '" + tmp + "'");
  }
  const size_t written = std::fwrite(frame.data(), 1, frame.size(), file);
  if (written != frame.size() || std::fflush(file) != 0 ||
      ::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return InternalError("short write to checkpoint temp file '" + tmp + "'");
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename checkpoint into place at '" + path + "'");
  }
  SyncParentDir(path);
  return OkStatus();
}

Result<std::vector<uint8_t>> ReadSimCheckpointFile(const std::string& path,
                                                   uint64_t fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("no checkpoint at '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  PRONGHORN_ASSIGN_OR_RETURN(
      SnapshotImage image,
      SnapshotImage::Decode(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size())));
  if (image.metadata().function != "sim-checkpoint") {
    return DataLossError("'" + path + "' is not a simulation checkpoint");
  }
  if (image.metadata().id.value != fingerprint) {
    return FailedPreconditionError(
        "checkpoint at '" + path +
        "' belongs to a different experiment (fingerprint mismatch); refusing "
        "to resume");
  }
  return image.payload();
}

std::string WholeRunCheckpointPath(const std::string& dir) {
  return dir + "/sim.ckpt";
}

FleetCheckpointer::FleetCheckpointer(const SimCheckpointOptions& options,
                                     uint64_t fingerprint,
                                     const StreamingAccumulator& accumulator)
    : options_(options), fingerprint_(fingerprint), accumulator_(accumulator) {}

std::string FleetCheckpointer::FilePath(const std::string& dir) {
  return dir + "/fleet.ckpt";
}

void FleetCheckpointer::OnFold() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++folds_since_write_;
  if (folds_since_write_ < std::max<uint64_t>(options_.every, 1)) {
    return;
  }
  folds_since_write_ = 0;
  if (const Status status = WriteFrame(); !status.ok() && first_error_.ok()) {
    first_error_ = status;
  }
}

Status FleetCheckpointer::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Status status = WriteFrame(); !status.ok() && first_error_.ok()) {
    first_error_ = status;
  }
  return first_error_;
}

Status FleetCheckpointer::WriteFrame() {
  ByteWriter writer;
  accumulator_.SerializeState(writer);
  return WriteSimCheckpointFile(FilePath(options_.dir), fingerprint_,
                                accumulator_.folded_count(), writer.data());
}

}  // namespace pronghorn
