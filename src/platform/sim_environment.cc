#include "src/platform/sim_environment.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace pronghorn {

namespace {

// Scopes a user-supplied fault plan to one environment: combining the plan
// seed with the environment seed and a per-store salt keeps the two
// decorators' fault streams independent and experiment-specific.
FaultPlan ScopePlan(const FaultPlan& base, uint64_t env_seed, uint64_t salt) {
  FaultPlan plan = base;
  plan.seed = HashCombine(env_seed, HashCombine(salt, base.seed));
  return plan;
}

// FNV-1a over the deployment name: a stable, platform-independent string
// hash, folded with the environment seed below. (std::hash is not portable
// across standard libraries, which would break cross-platform
// reproducibility.)
uint64_t StableNameHash(std::string_view name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::unique_ptr<CheckpointEngine> MakeEngine(EngineKind kind, uint64_t seed) {
  if (kind == EngineKind::kDelta) {
    return std::make_unique<DeltaCheckpointEngine>(seed);
  }
  return std::make_unique<CriuLikeEngine>(seed);
}

}  // namespace

SimEnvironment::SimEnvironment(const WorkloadRegistry& registry, SimOptions options)
    : registry_(registry),
      options_(options),
      faulty_db_(options.faults.Active()
                     ? std::optional<FaultyKvDatabase>(
                           std::in_place, db_,
                           ScopePlan(options.faults, options.seed, 0xdbULL), &clock_)
                     : std::nullopt),
      faulty_object_store_(
          options.faults.Active() &&
                  options.store.kind == SnapshotStoreOptions::Kind::kFlat
              ? std::optional<FaultyObjectStore>(
                    std::in_place, object_store_,
                    ScopePlan(options.faults, options.seed, 0x0bULL), &clock_)
              : std::nullopt) {
  // The snapshot store every orchestrator talks to. Flat builds layer the
  // compatibility adapter over the (possibly fault-decorated) ObjectStore —
  // bit-identical to the historical wiring by construction. Dedup builds are
  // self-contained; under chaos they wrap in FaultySnapshotStore, which is
  // seeded with the SAME scoped plan (salt 0x0b) as the flat decorator so
  // the fault trajectories coincide draw for draw.
  if (options_.store.kind == SnapshotStoreOptions::Kind::kDedup) {
    base_snapshot_store_ = std::make_unique<DedupSnapshotStore>(options_.store, &clock_);
    if (options_.faults.Active()) {
      faulty_snapshot_store_.emplace(*base_snapshot_store_,
                                     ScopePlan(options_.faults, options_.seed, 0x0bULL),
                                     &clock_);
    }
  } else {
    base_snapshot_store_ = std::make_unique<FlatSnapshotStore>(active_object_store());
  }
  // Fault events from the shared stores cannot be attributed to one
  // deployment, so the decorators get their own trace process with a lane
  // per store. Obs data is write-only for the kernel: nothing here feeds
  // back into simulation state or digests.
  const bool dedup_obs =
      options_.store.kind == SnapshotStoreOptions::Kind::kDedup;
  if (options_.obs != nullptr &&
      (faulty_db_.has_value() || faulty_object_store_.has_value() || dedup_obs)) {
    const uint32_t pid = options_.obs->RegisterProcess("stores");
    if (faulty_object_store_.has_value() || dedup_obs) {
      const ObsTrack track{pid, 0};
      options_.obs->RegisterThread(track, "object store");
      if (faulty_object_store_.has_value()) {
        faulty_object_store_->set_obs(options_.obs, track);
      }
      if (dedup_obs) {
        // Reaches the inner dedup store too (chunk_fetch spans), through the
        // decorator's forwarding set_obs when chaos is on.
        active_snapshot_store().set_obs(options_.obs, track);
      }
    }
    if (faulty_db_.has_value()) {
      const ObsTrack track{pid, 1};
      options_.obs->RegisterThread(track, "database");
      faulty_db_->set_obs(options_.obs, track);
    }
  }
  if (options_.service.enabled) {
    if (options_.service.instance != nullptr) {
      service_ = options_.service.instance;
    } else {
      ServiceConfig config;
      config.shards = options_.service.shards;
      config.queue_capacity = options_.service.queue_capacity;
      config.max_batch = options_.service.max_batch;
      config.flush_interval = options_.service.flush_interval;
      config.journal_dir = options_.service.journal_dir;
      config.shed_deadline_ms = options_.service.shed_deadline_ms;
      config.faults = options_.faults.service;
      config.obs = options_.obs;
      owned_service_ = std::make_unique<OrchestratorService>(config);
      service_ = owned_service_.get();
    }
  }
}

SimEnvironment::~SimEnvironment() {
  // Release this environment's bindings: a shared service (fleet runs)
  // outlives us and must not keep pointers into the deployments.
  if (service_ != nullptr && service_->running()) {
    for (const Deployment& deployment : deployments_) {
      const Status unbound = service_->Unbind(deployment.name);
      if (!unbound.ok()) {
        PRONGHORN_LOG_WARNING("unbind of '%s' failed: %s", deployment.name.c_str(),
                              unbound.ToString().c_str());
      }
    }
  }
}

uint64_t SimEnvironment::DeploymentSeed(uint64_t seed, std::string_view name) {
  return HashCombine(seed, HashCombine(0xf1ee7ULL, StableNameHash(name)));
}

KvDatabase& SimEnvironment::active_database() {
  return faulty_db_.has_value() ? static_cast<KvDatabase&>(*faulty_db_)
                                : static_cast<KvDatabase&>(db_);
}

ObjectStore& SimEnvironment::active_object_store() {
  return faulty_object_store_.has_value()
             ? static_cast<ObjectStore&>(*faulty_object_store_)
             : static_cast<ObjectStore&>(object_store_);
}

SnapshotStore& SimEnvironment::active_snapshot_store() {
  return faulty_snapshot_store_.has_value()
             ? static_cast<SnapshotStore&>(*faulty_snapshot_store_)
             : *base_snapshot_store_;
}

Status SimEnvironment::AddDeployment(std::string name, const WorkloadProfile& profile,
                                     const OrchestrationPolicy& policy,
                                     const EvictionModel& eviction,
                                     uint32_t worker_slots, uint32_t exploring_slots,
                                     uint64_t sub_seed) {
  if (name.empty()) {
    return InvalidArgumentError("deployment name must be non-empty");
  }
  for (const Deployment& existing : deployments_) {
    if (existing.name == name) {
      return AlreadyExistsError("deployment '" + name + "' already exists");
    }
  }
  exploring_slots = std::min(exploring_slots, worker_slots);

  Deployment deployment;
  deployment.name = std::move(name);
  deployment.profile = &profile;
  deployment.exploit_policy =
      std::make_unique<StopConditionPolicy>(policy, /*explore_requests=*/0);
  deployment.engine = MakeEngine(options_.engine_kind, HashCombine(sub_seed, 0xe1ULL));
  deployment.state_store = std::make_unique<PolicyStateStore>(
      active_database(), deployment.name, policy.config(), &clock_,
      StateStoreRetryPolicy{}, options_.state_cache);
  deployment.input_model = std::make_unique<InputModel>(profile, options_.input_noise);
  deployment.client_rng = Rng(HashCombine(sub_seed, 0xc1ULL));

  deployment.slots.reserve(worker_slots);
  for (uint32_t i = 0; i < worker_slots; ++i) {
    const bool exploring = i < exploring_slots;
    const OrchestrationPolicy& slot_policy =
        exploring ? policy
                  : static_cast<const OrchestrationPolicy&>(*deployment.exploit_policy);
    // Slot 0 keeps the historical single-worker substream so single-slot
    // environments replay bit-identically to the pre-kernel drivers.
    const uint64_t slot_seed =
        i == 0 ? HashCombine(sub_seed, 0x0eULL)
               : HashCombine(sub_seed, HashCombine(0x0eULL, i));
    auto orchestrator = std::make_unique<Orchestrator>(
        profile, registry_, slot_policy, *deployment.engine,
        active_snapshot_store(), *deployment.state_store, clock_, slot_seed,
        options_.costs, options_.recovery);
    deployment.slots.emplace_back(std::move(orchestrator), &eviction, &clock_,
                                  options_.lifecycle, exploring);
  }
  if (service_ != nullptr) {
    // Service mode: bind every slot's orchestrator into the service, then
    // point the slot at a wire client. Orchestrators are heap-owned by their
    // SimCore and the clients are heap-owned below, so both pointer sets
    // survive the deployment's move into deployments_.
    for (uint32_t i = 0; i < worker_slots; ++i) {
      const Status bound = service_->Bind(deployment.name, i,
                                          &deployment.slots[i].orchestrator(),
                                          &clock_);
      if (!bound.ok()) {
        const Status unbound = service_->Unbind(deployment.name);
        (void)unbound;  // Best-effort rollback of earlier slots.
        return bound;
      }
    }
    deployment.clients.reserve(worker_slots);
    for (uint32_t i = 0; i < worker_slots; ++i) {
      deployment.clients.push_back(
          std::make_unique<ServiceClient>(service_, deployment.name, i));
      deployment.slots[i].set_backend(deployment.clients.back().get());
    }
  }
  if (options_.obs != nullptr) {
    // One trace process per deployment; each slot gets a serve lane (even
    // tid) and a lifecycle lane (odd tid) so serve spans never overlap the
    // provision/checkpoint/evict spans Chrome would otherwise mis-nest.
    const uint32_t pid = options_.obs->RegisterProcess(deployment.name);
    for (uint32_t i = 0; i < worker_slots; ++i) {
      const ObsTrack serve_track{pid, 2 * i};
      const ObsTrack lifecycle_track{pid, 2 * i + 1};
      const std::string label =
          "slot " + std::to_string(i) +
          (deployment.slots[i].exploring() ? " (exploring)" : "");
      options_.obs->RegisterThread(serve_track, label + " serve");
      options_.obs->RegisterThread(lifecycle_track, label + " lifecycle");
      deployment.slots[i].set_obs(options_.obs, serve_track, lifecycle_track);
    }
    deployment.engine->set_obs(options_.obs);
  }
  deployments_.push_back(std::move(deployment));
  return OkStatus();
}

Status SimEnvironment::Dispatch(Deployment& deployment, SimCore& slot,
                                TimePoint arrival) {
  FunctionRequest request;
  request.id = next_request_id_++;
  request.input_scale = deployment.input_model->NextScale(deployment.client_rng);
  return slot.Serve(request, arrival, deployment.report);
}

Status SimEnvironment::RunClosedLoop(uint64_t request_count) {
  size_t total_slots = 0;
  for (const Deployment& deployment : deployments_) {
    total_slots += deployment.slots.size();
  }
  if (total_slots == 0) {
    return FailedPreconditionError("environment has no worker slots");
  }

  for (uint64_t i = 0; i < request_count; ++i) {
    // Least-loaded dispatch: the slot that frees earliest (first in
    // deployment-major order on ties) takes the next request; its client
    // issues it the moment the previous response arrived.
    Deployment* best_deployment = nullptr;
    SimCore* best = nullptr;
    for (Deployment& deployment : deployments_) {
      for (SimCore& slot : deployment.slots) {
        if (best == nullptr || slot.free_at() < best->free_at()) {
          best_deployment = &deployment;
          best = &slot;
        }
      }
    }
    PRONGHORN_RETURN_IF_ERROR(Dispatch(*best_deployment, *best, best->dispatch_at()));
    // Closed-loop eviction sees the completion itself as the next arrival;
    // the run's final worker is retired by RetireAllWorkers instead.
    best->MaybeEvict(i + 1 < request_count, best->last_completion(),
                     best_deployment->report);
  }
  return OkStatus();
}

Status SimEnvironment::RunArrivals(std::span<const Arrival> arrivals) {
  for (size_t i = 0; i < arrivals.size(); ++i) {
    if (arrivals[i].deployment >= deployments_.size()) {
      return InvalidArgumentError("arrival references an unknown deployment");
    }
    if (deployments_[arrivals[i].deployment].slots.empty()) {
      return FailedPreconditionError("deployment '" +
                                     deployments_[arrivals[i].deployment].name +
                                     "' has no worker slots");
    }
    if (i > 0 && arrivals[i].arrival < arrivals[i - 1].arrival) {
      return InvalidArgumentError("trace arrivals must be non-decreasing");
    }
  }

  // Precompute each event's next arrival for the same deployment, so idle
  // timeouts decide eviction in O(1) per event.
  std::vector<TimePoint> next_arrival(arrivals.size());
  std::vector<char> has_next(arrivals.size(), 0);
  std::vector<size_t> last_seen(deployments_.size(), arrivals.size());
  for (size_t i = arrivals.size(); i-- > 0;) {
    const size_t d = arrivals[i].deployment;
    if (last_seen[d] != arrivals.size()) {
      has_next[i] = 1;
      next_arrival[i] = arrivals[last_seen[d]].arrival;
    }
    last_seen[d] = i;
  }

  for (size_t i = 0; i < arrivals.size(); ++i) {
    Deployment& deployment = deployments_[arrivals[i].deployment];
    // Least-loaded slot within the deployment; with every slot busy the
    // request queues behind the earliest-free one.
    SimCore* slot = &deployment.slots[0];
    for (SimCore& candidate : deployment.slots) {
      if (candidate.free_at() < slot->free_at()) {
        slot = &candidate;
      }
    }
    PRONGHORN_RETURN_IF_ERROR(Dispatch(deployment, *slot, arrivals[i].arrival));
    slot->MaybeEvict(has_next[i] != 0, next_arrival[i], deployment.report);
  }
  return OkStatus();
}

Status SimEnvironment::RunArrivalStream(ArrivalSource& source) {
  // The slot whose idle-eviction decision is still waiting on its
  // deployment's next arrival (one per deployment, O(deployments) state).
  std::vector<SimCore*> pending_evict(deployments_.size(), nullptr);
  bool first = true;
  TimePoint prev;
  while (true) {
    std::optional<Arrival> next = source.Next();
    if (!next.has_value()) {
      break;
    }
    const Arrival arrival = *next;
    if (arrival.deployment >= deployments_.size()) {
      return InvalidArgumentError("arrival references an unknown deployment");
    }
    Deployment& deployment = deployments_[arrival.deployment];
    if (deployment.slots.empty()) {
      return FailedPreconditionError("deployment '" + deployment.name +
                                     "' has no worker slots");
    }
    if (!first && arrival.arrival < prev) {
      return InvalidArgumentError("trace arrivals must be non-decreasing");
    }
    first = false;
    prev = arrival.arrival;
    // The deployment's successor arrival is now known: resolve the deferred
    // eviction check exactly as RunArrivals' lookahead would have.
    if (SimCore* held = pending_evict[arrival.deployment]; held != nullptr) {
      held->MaybeEvict(/*has_next=*/true, arrival.arrival, deployment.report);
    }
    // Least-loaded slot within the deployment (same tie-break as
    // RunArrivals); with every slot busy the request queues behind the
    // earliest-free one.
    SimCore* slot = &deployment.slots[0];
    for (SimCore& candidate : deployment.slots) {
      if (candidate.free_at() < slot->free_at()) {
        slot = &candidate;
      }
    }
    PRONGHORN_RETURN_IF_ERROR(Dispatch(deployment, *slot, arrival.arrival));
    pending_evict[arrival.deployment] = slot;
  }
  for (size_t d = 0; d < deployments_.size(); ++d) {
    if (pending_evict[d] != nullptr) {
      pending_evict[d]->MaybeEvict(/*has_next=*/false, TimePoint{},
                                   deployments_[d].report);
    }
  }
  return OkStatus();
}

void SimEnvironment::RetireAllWorkers() {
  for (Deployment& deployment : deployments_) {
    for (SimCore& slot : deployment.slots) {
      slot.RetireWorker(clock_.now(), deployment.report);
    }
  }
}

void SimEnvironment::FinishReport(Deployment& deployment, SimulationReport& report) {
  report.end_time = clock_.now();
  report.overheads = OrchestratorOverheads{};
  for (SimCore& slot : deployment.slots) {
    MergeOverheads(report.overheads, slot.orchestrator().overheads());
    AccumulateRecovery(report.faults, slot.orchestrator().recovery_stats());
  }
  AccumulateStateStore(report.faults, deployment.state_store->stats());
}

EnvironmentReport SimEnvironment::TakeReport() {
  EnvironmentReport out;
  for (Deployment& deployment : deployments_) {
    SimulationReport report = std::move(deployment.report);
    deployment.report = SimulationReport{};
    FinishReport(deployment, report);
    MergeFaultRecoveryStats(out.faults, report.faults);
    out.per_function.emplace(deployment.name, std::move(report));
  }
  // The base snapshot store's accounting: for a flat build this is exactly
  // object_store_.accounting(); for a dedup build it carries the chunk-level
  // physical view alongside the identical digest-covered logical fields.
  out.object_store = base_snapshot_store_->accounting();
  out.database = db_.accounting();
  if (faulty_object_store_.has_value()) {
    AccumulateStoreFaults(out.faults, faulty_object_store_->stats());
  }
  if (faulty_snapshot_store_.has_value()) {
    AccumulateStoreFaults(out.faults, faulty_snapshot_store_->stats());
  }
  if (faulty_db_.has_value()) {
    AccumulateDatabaseFaults(out.faults, faulty_db_->stats());
  }
  return out;
}

SimulationReport SimEnvironment::TakeFlatReport() {
  Deployment& deployment = deployments_.front();
  SimulationReport report = std::move(deployment.report);
  deployment.report = SimulationReport{};
  FinishReport(deployment, report);
  report.object_store = base_snapshot_store_->accounting();
  report.database = db_.accounting();
  if (faulty_object_store_.has_value()) {
    AccumulateStoreFaults(report.faults, faulty_object_store_->stats());
  }
  if (faulty_snapshot_store_.has_value()) {
    AccumulateStoreFaults(report.faults, faulty_snapshot_store_->stats());
  }
  if (faulty_db_.has_value()) {
    AccumulateDatabaseFaults(report.faults, faulty_db_->stats());
  }
  return report;
}

Result<size_t> SimEnvironment::DeploymentIndex(std::string_view name) const {
  for (size_t i = 0; i < deployments_.size(); ++i) {
    if (deployments_[i].name == name) {
      return i;
    }
  }
  return NotFoundError("deployment '" + std::string(name) + "' is not registered");
}

}  // namespace pronghorn
