// The shared worker-lifecycle kernel behind every simulation driver.
//
// All four drivers (function / cluster / platform / fleet) used to carry
// their own copy of the same state machine: provision a worker when none is
// warm (restore, cold start, or degraded start — the Orchestrator decides),
// serve the request, account an optional checkpoint, and evict per the
// eviction model. SimCore is that state machine, extracted once: one warm
// slot driven by the simulated clock, writing into a SimulationReport.
// Drivers differ only in how many cores they instantiate and how requests
// are dispatched onto them (see sim_environment.h).

#ifndef PRONGHORN_SRC_PLATFORM_SIM_CORE_H_
#define PRONGHORN_SRC_PLATFORM_SIM_CORE_H_

#include <memory>
#include <optional>

#include "src/common/clock.h"
#include "src/core/orchestrator.h"
#include "src/platform/eviction.h"
#include "src/platform/metrics.h"
#include "src/platform/sim_options.h"
#include "src/service/backend.h"

namespace pronghorn {

// One worker slot: owns its Orchestrator and the session state of the
// currently-warm worker (if any). Movable so environments can keep slots in
// plain vectors; not copyable.
class SimCore {
 public:
  // `eviction` and `clock` are borrowed and must outlive the core.
  SimCore(std::unique_ptr<Orchestrator> orchestrator, const EvictionModel* eviction,
          SimClock* clock, LifecycleOptions lifecycle, bool exploring);

  SimCore(SimCore&&) = default;
  SimCore& operator=(SimCore&&) = default;
  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  // Serves one request arriving at `arrival`: provisions a worker if none is
  // warm, runs the request through the Orchestrator, advances the clock to
  // the completion, and appends a RequestRecord (plus lifecycle counters and
  // checkpoint accounting) to `report`. The record's global_index is the
  // report's record count, so per-report indices stay dense whatever slot
  // served the request.
  Status Serve(const FunctionRequest& request, TimePoint arrival,
               SimulationReport& report);

  // Applies the eviction model after a completed request. `next_arrival` is
  // the next request this slot's deployment will see (equal to the completion
  // time in closed-loop runs); when `has_next` is false the decision is
  // skipped — the final worker is retired by RetireWorker instead. An evicted
  // worker's alive time and memory-time are folded into `report`, including
  // the idle_resource_hold tail it occupies after its last response.
  void MaybeEvict(bool has_next, TimePoint next_arrival, SimulationReport& report);

  // Retires a still-warm worker at `end`, accounting its occupancy up to that
  // instant. No-op when the slot is empty.
  void RetireWorker(TimePoint end, SimulationReport& report);

  // When this slot's worker frees up (busy-until, including any blocking
  // checkpoint downtime). Dispatchers pick the slot with the earliest value.
  TimePoint free_at() const { return free_at_; }
  // When this slot's closed-loop client issues its next request: the last
  // response's arrival at the client, which excludes checkpoint downtime —
  // a blocking checkpoint then shows up as queueing on the next request.
  TimePoint dispatch_at() const { return last_completion_; }
  TimePoint last_completion() const { return last_completion_; }

  bool has_session() const { return view_.has_value(); }
  bool exploring() const { return exploring_; }
  Orchestrator& orchestrator() { return *orchestrator_; }
  const Orchestrator& orchestrator() const { return *orchestrator_; }

  // Routes all worker-lifecycle operations through `backend` (borrowed; must
  // outlive the core) instead of the default in-process backend — this is how
  // service mode turns the core into an OrchestratorService client. Must be
  // called while no session is live.
  void set_backend(WorkerBackend* backend) { backend_ = backend; }

  // Borrowed observability sink; null disables all emission. Serve spans land
  // on `serve_track`, provision/checkpoint/evict spans (and the
  // orchestrator's decision and retry events) on `lifecycle_track`.
  void set_obs(ObsSink* obs, ObsTrack serve_track, ObsTrack lifecycle_track);

 private:
  std::unique_ptr<Orchestrator> orchestrator_;
  // Default backend: direct in-process Orchestrator calls. Heap-allocated so
  // `backend_` stays valid across SimCore moves.
  std::unique_ptr<LocalWorkerBackend> local_backend_;
  WorkerBackend* backend_;
  const EvictionModel* eviction_;
  SimClock* clock_;
  LifecycleOptions lifecycle_;
  bool exploring_;

  // Emits the evict/retire span for the current worker (ends its lifetime on
  // the trace) plus the occupancy metrics.
  void ObserveWorkerEnd(const char* name, TimePoint begin, TimePoint end);

  // Ends the live session through the backend and folds its occupancy
  // [worker_started_at_, end) into `report`.
  void AccountWorkerEnd(TimePoint end, SimulationReport& report);

  // Client-visible view of the live session; the session itself lives behind
  // backend_ (in-process or service-side).
  std::optional<SessionView> view_;
  uint64_t requests_in_lifetime_ = 0;
  TimePoint worker_started_at_;
  TimePoint free_at_;
  TimePoint last_completion_;

  ObsSink* obs_ = nullptr;
  ObsTrack serve_track_;
  ObsTrack lifecycle_track_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_SIM_CORE_H_
