// Sharded, multi-threaded fleet simulation: many independent function
// deployments, one merged report.
//
// The paper's §5.3 cost argument is fleet-scale: exploration overhead is
// amortized because "only a nonempty subset of containers running a given
// application need to be exploring". Trace-scale experiments therefore
// simulate hundreds of function deployments, each a full ClusterSimulation
// with its own Database, Object Store, snapshot pool, and policy scope.
// Those deployments share nothing, so FleetSimulation partitions them into
// shards and runs each on a work-stealing thread pool — no locks anywhere on
// a request critical path.
//
// Determinism guarantee: the merged FleetReport is bit-identical for any
// thread count. Two rules make that hold:
//   1. Every RNG substream is derived per *function* (from the fleet seed and
//      the deployment name via Rng-style hashing), never per thread, so a
//      shard's event sequence does not depend on which thread runs it or on
//      what else runs concurrently.
//   2. The merge step orders per-function results canonically (by deployment
//      name), independent of shard completion order.

#ifndef PRONGHORN_SRC_PLATFORM_FLEET_SIMULATION_H_
#define PRONGHORN_SRC_PLATFORM_FLEET_SIMULATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/platform/cluster_simulation.h"
#include "src/platform/sim_options.h"

namespace pronghorn {

// One function deployment in the fleet. `profile` and `policy` are borrowed
// and must outlive the simulation. The policy must be stateless per call
// (true of every policy in src/core except a live StopConditionPolicy's
// request counter); give stateful policies one instance per deployment.
struct FleetFunctionSpec {
  std::string name;  // Unique deployment name; also keys the RNG substream.
  const WorkloadProfile* profile = nullptr;
  const OrchestrationPolicy* policy = nullptr;
  uint64_t requests = 500;  // Closed-loop request count for this deployment.
  uint32_t worker_slots = 4;
  uint32_t exploring_slots = 1;
};

struct FleetFunctionResult {
  std::string function;
  ClusterReport report;
};

// Canonically merged fleet results: per_function is sorted by deployment
// name and every aggregate is accumulated in that order, so the report is
// byte-identical however the shards were scheduled.
// The inherited ReportCore accountings are field-wise sums over the
// shard-local stores. Peaks sum because the deployments' stores coexist in
// time: the fleet's footprint bound is the sum of each store's high-water
// mark.
struct FleetReport : ReportCore {
  // Per-function detail, bounded by the run's retention policy: every folded
  // function under ReportRetention::kAll, at most retention.k otherwise
  // (always in canonical name order either way).
  std::vector<FleetFunctionResult> per_function;

  // All functions' per-request latencies, merged in canonical order.
  // Populated only under kAll retention — the bounded modes report latency
  // through `latency_hist`, which is exact at bucket granularity and O(1)
  // in the invocation count.
  DistributionSummary fleet_latency;

  uint64_t worker_lifetimes = 0;
  uint64_t checkpoints = 0;
  uint64_t restores = 0;
  uint64_t cold_starts = 0;

  // How much per-function detail this report retains, and the totals over
  // ALL folded functions (which per_function.size() understates in the
  // bounded modes).
  ReportRetention retention = ReportRetention::kAll;
  uint64_t functions_total = 0;
  uint64_t invocations_total = 0;

  // Exact-merge latency histogram over every request of every function,
  // complete in all retention modes.
  LatencyHistogram latency_hist;

  // The canonical digest as computed by the streaming accumulator via
  // CRC32-combination — equal to ReportDigest over ALL folded functions even
  // when per_function was decimated.
  uint32_t streaming_digest = 0;

  // CRC32 over the canonical serialization: every per-function report
  // (report_io's SerializeFunctionReport) in name order, followed by the
  // merged store accountings and fault stats. Equal digests mean
  // bit-identical fleet results. The layout matches PlatformReport::Digest(),
  // so a one-shard fleet and a one-function platform hash identically.
  // Under bounded retention the materialized rows are incomplete, so this
  // returns `streaming_digest` (same value a keep-all run of the same
  // experiment computes).
  uint32_t Digest() const;

  // Per-function lookup; nullptr when `name` is not in the fleet.
  const ClusterReport* Find(std::string_view name) const;
};

class FleetSimulation {
 public:
  FleetSimulation(const WorkloadRegistry& registry, SimOptions options);

  // Registers one deployment. Fails on a duplicate or empty name, or a null
  // profile/policy.
  Status AddFunction(FleetFunctionSpec spec);

  size_t function_count() const { return functions_.size(); }

  // Runs every deployment's closed loop across the shard pool, folding each
  // shard's report through a StreamingAccumulator the moment it completes —
  // peak memory is O(shards + retained-K), not O(functions x requests).
  // Each call is an independent experiment: shards are constructed fresh, so
  // learned state does not persist across calls.
  //
  // When options.sim_checkpoint is enabled the run writes crash-consistent
  // checkpoints at completed-deployment granularity and, with resume set,
  // skips deployments a loaded checkpoint already covers — reproducing the
  // uninterrupted run's digest bit-for-bit (src/platform/sim_checkpoint.h).
  Result<FleetReport> Run() const;

  // The experiment fingerprint checkpoints are keyed by (seed, options, and
  // the registered function mix).
  uint64_t Fingerprint() const;

  // The RNG substream seed for a deployment (SimEnvironment::DeploymentSeed):
  // HashCombine of the fleet seed with a stable hash of the deployment name.
  // Depends only on (seed, name) — not on thread count, fleet composition, or
  // registration order.
  static uint64_t FunctionSeed(uint64_t fleet_seed, std::string_view name);

 private:
  // `base_options` is the fleet options with run-scoped overrides applied
  // (Run() points service.instance at the run's shared service).
  Result<ClusterReport> RunShard(const FleetFunctionSpec& spec,
                                 const SimOptions& base_options) const;

  const WorkloadRegistry& registry_;
  SimOptions options_;
  std::vector<FleetFunctionSpec> functions_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_FLEET_SIMULATION_H_
