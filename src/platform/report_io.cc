#include "src/platform/report_io.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/rng.h"

namespace pronghorn {

namespace {

constexpr std::string_view kHeader =
    "global_index,request_number,latency_us,first_of_lifetime,cold_start,"
    "checkpoint_after";

Result<int64_t> ParseField(std::string_view text) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return DataLossError("bad CSV field '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

std::string RecordsToCsv(std::span<const RequestRecord> records) {
  std::string out(kHeader);
  out += '\n';
  char line[128];
  for (const RequestRecord& record : records) {
    std::snprintf(line, sizeof(line), "%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%d,%d,%d\n",
                  record.global_index, record.request_number,
                  record.latency.ToMicros(), record.first_of_lifetime ? 1 : 0,
                  record.cold_start ? 1 : 0, record.checkpoint_after ? 1 : 0);
    out += line;
  }
  return out;
}

Status WriteRecordsCsv(const SimulationReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << RecordsToCsv(report.records);
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

Result<std::vector<RequestRecord>> RecordsFromCsv(std::string_view csv) {
  std::vector<RequestRecord> records;
  size_t pos = 0;
  size_t line_number = 0;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string_view::npos) {
      end = csv.size();
    }
    const std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line_number == 1) {
      if (line != kHeader) {
        return DataLossError("bad records CSV header");
      }
      continue;
    }
    // Split into exactly 6 comma-separated fields.
    int64_t fields[6];
    size_t field_index = 0;
    size_t field_start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (field_index >= 6) {
          return DataLossError("too many fields on records CSV line " +
                               std::to_string(line_number));
        }
        PRONGHORN_ASSIGN_OR_RETURN(fields[field_index],
                                   ParseField(line.substr(field_start, i - field_start)));
        ++field_index;
        field_start = i + 1;
      }
    }
    if (field_index != 6) {
      return DataLossError("too few fields on records CSV line " +
                           std::to_string(line_number));
    }
    RequestRecord record;
    record.global_index = static_cast<uint64_t>(fields[0]);
    record.request_number = static_cast<uint64_t>(fields[1]);
    record.latency = Duration::Micros(fields[2]);
    record.first_of_lifetime = fields[3] != 0;
    record.cold_start = fields[4] != 0;
    record.checkpoint_after = fields[5] != 0;
    records.push_back(record);
  }
  return records;
}

Result<std::vector<RequestRecord>> ReadRecordsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open records CSV '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return RecordsFromCsv(buffer.str());
}

namespace {

void SerializeSummary(const DistributionSummary& summary, ByteWriter& writer) {
  writer.WriteVarint(summary.count());
  for (const double sample : summary.samples()) {
    writer.WriteDouble(sample);
  }
}

}  // namespace

void SerializeStoreAccounting(const StoreAccounting& accounting, ByteWriter& writer) {
  writer.WriteUint64(accounting.logical_bytes_stored);
  writer.WriteUint64(accounting.peak_logical_bytes);
  writer.WriteUint64(accounting.network_bytes_uploaded);
  writer.WriteUint64(accounting.network_bytes_downloaded);
  writer.WriteUint64(accounting.put_count);
  writer.WriteUint64(accounting.get_count);
  writer.WriteUint64(accounting.delete_count);
}

void SerializeKvAccounting(const KvAccounting& accounting, ByteWriter& writer) {
  writer.WriteUint64(accounting.reads);
  writer.WriteUint64(accounting.writes);
  writer.WriteUint64(accounting.cas_attempts);
  writer.WriteUint64(accounting.cas_conflicts);
}

void SerializeFaultRecoveryStats(const FaultRecoveryStats& stats, ByteWriter& writer) {
  writer.WriteUint64(stats.store_faults);
  writer.WriteUint64(stats.db_faults);
  writer.WriteUint64(stats.corrupted_puts);
  writer.WriteUint64(stats.torn_puts);
  writer.WriteUint64(stats.latency_injections);
  writer.WriteUint64(stats.restore_retries);
  writer.WriteUint64(stats.restore_failures);
  writer.WriteUint64(stats.restore_fallbacks);
  writer.WriteUint64(stats.snapshots_quarantined);
  writer.WriteUint64(stats.stale_entries_pruned);
  writer.WriteUint64(stats.degraded_starts);
  writer.WriteUint64(stats.observations_buffered);
  writer.WriteUint64(stats.observations_replayed);
  writer.WriteUint64(stats.observations_dropped);
  writer.WriteUint64(stats.checkpoints_skipped);
  writer.WriteUint64(stats.eviction_deletes_deferred);
  writer.WriteUint64(stats.orphans_collected);
  writer.WriteUint64(stats.cas_attempts);
  writer.WriteUint64(stats.cas_conflicts);
  writer.WriteUint64(stats.db_transient_retries);
}

void SerializeFunctionReport(const SimulationReport& report, ByteWriter& writer) {
  writer.WriteVarint(report.records.size());
  for (const RequestRecord& record : report.records) {
    writer.WriteVarint(record.global_index);
    writer.WriteVarint(record.request_number);
    writer.WriteInt64(record.latency.ToMicros());
    const uint8_t flags = static_cast<uint8_t>((record.first_of_lifetime ? 1 : 0) |
                                               (record.cold_start ? 2 : 0) |
                                               (record.checkpoint_after ? 4 : 0));
    writer.WriteUint8(flags);
  }
  SerializeSummary(report.exploring_latency, writer);
  SerializeSummary(report.exploiting_latency, writer);
  writer.WriteUint64(report.worker_lifetimes);
  writer.WriteUint64(report.checkpoints);
  writer.WriteUint64(report.restores);
  writer.WriteUint64(report.cold_starts);
  writer.WriteInt64(report.total_checkpoint_downtime.ToMicros());
  writer.WriteInt64(report.total_startup_latency.ToMicros());
  writer.WriteInt64(report.total_worker_alive_time.ToMicros());
  writer.WriteDouble(report.worker_memory_time_mb_s);
  writer.WriteInt64(report.end_time.ToMicros());
  writer.WriteUint64(report.overheads.worker_starts);
  writer.WriteUint64(report.overheads.requests_served);
  writer.WriteUint64(report.overheads.checkpoints_taken);
  writer.WriteInt64(report.overheads.total_startup_overhead.ToMicros());
  writer.WriteInt64(report.overheads.total_request_overhead.ToMicros());
  writer.WriteInt64(report.overheads.total_checkpoint_overhead.ToMicros());
  // Covering the fault/recovery counters means the fleet digest certifies
  // that chaos runs — not just fault-free ones — are schedule-independent.
  SerializeFaultRecoveryStats(report.faults, writer);
}

void SerializeReportCore(const ReportCore& core, ByteWriter& writer) {
  SerializeStoreAccounting(core.object_store, writer);
  SerializeKvAccounting(core.database, writer);
  SerializeFaultRecoveryStats(core.faults, writer);
}

void MergeReportCore(ReportCore& into, const ReportCore& from) {
  MergeAccounting(into.object_store, from.object_store);
  MergeAccounting(into.database, from.database);
  MergeFaultRecoveryStats(into.faults, from.faults);
}

uint32_t ReportDigest(std::span<const NamedReportRef> per_function,
                      const ReportCore& core) {
  ByteWriter writer;
  for (const NamedReportRef& row : per_function) {
    writer.WriteString(row.name);
    SerializeFunctionReport(*row.report, writer);
  }
  SerializeReportCore(core, writer);
  return Crc32(writer.data());
}

void SerializeClusterReport(const ClusterReport& report, ByteWriter& writer) {
  SerializeFunctionReport(report, writer);
  SerializeStoreAccounting(report.object_store, writer);
  SerializeKvAccounting(report.database, writer);
}

uint32_t ClusterReportCrc32(const ClusterReport& report) {
  ByteWriter writer;
  writer.Reserve(report.records.size() * 12);
  SerializeClusterReport(report, writer);
  return Crc32(writer.data());
}

std::string SummarizeReport(const SimulationReport& report) {
  const DistributionSummary summary = report.LatencySummary();
  char out[512];
  std::snprintf(out, sizeof(out),
                "requests=%zu p50_us=%.0f p90_us=%.0f p99_us=%.0f lifetimes=%" PRIu64
                " cold=%" PRIu64 " restores=%" PRIu64 " checkpoints=%" PRIu64
                " storage_peak_mb=%.1f net_up_mb=%.1f net_down_mb=%.1f",
                report.records.size(), summary.Quantile(50), summary.Quantile(90),
                summary.Quantile(99), report.worker_lifetimes, report.cold_starts,
                report.restores, report.checkpoints,
                static_cast<double>(report.object_store.peak_logical_bytes) / 1048576.0,
                static_cast<double>(report.object_store.network_bytes_uploaded) /
                    1048576.0,
                static_cast<double>(report.object_store.network_bytes_downloaded) /
                    1048576.0);
  std::string summary_line(out);
  const FaultRecoveryStats& faults = report.faults;
  if (faults.store_faults + faults.db_faults + faults.restore_fallbacks +
          faults.degraded_starts + faults.snapshots_quarantined >
      0) {
    std::snprintf(out, sizeof(out),
                  " store_faults=%" PRIu64 " db_faults=%" PRIu64
                  " restore_fallbacks=%" PRIu64 " quarantined=%" PRIu64
                  " degraded_starts=%" PRIu64 " obs_replayed=%" PRIu64
                  " checkpoints_skipped=%" PRIu64,
                  faults.store_faults, faults.db_faults, faults.restore_fallbacks,
                  faults.snapshots_quarantined, faults.degraded_starts,
                  faults.observations_replayed, faults.checkpoints_skipped);
    summary_line += out;
  }
  return summary_line;
}

std::string SummaryToCsv(const SimulationReport& report) {
  const DistributionSummary summary = report.LatencySummary();
  std::string csv("key,value\n");
  char line[128];
  const auto add_u64 = [&](const char* key, uint64_t value) {
    std::snprintf(line, sizeof(line), "%s,%" PRIu64 "\n", key, value);
    csv += line;
  };
  const auto add_f64 = [&](const char* key, double value) {
    std::snprintf(line, sizeof(line), "%s,%.3f\n", key, value);
    csv += line;
  };
  add_u64("requests", report.records.size());
  add_f64("p50_us", summary.Quantile(50));
  add_f64("p90_us", summary.Quantile(90));
  add_f64("p99_us", summary.Quantile(99));
  add_u64("worker_lifetimes", report.worker_lifetimes);
  add_u64("cold_starts", report.cold_starts);
  add_u64("restores", report.restores);
  add_u64("checkpoints", report.checkpoints);
  add_u64("object_store_peak_bytes", report.object_store.peak_logical_bytes);
  add_u64("object_store_puts", report.object_store.put_count);
  add_u64("object_store_gets", report.object_store.get_count);
  // Digest-excluded physical (chunk-granular) storage view. For flat stores
  // physical mirrors logical and the dedup counters stay zero.
  const PhysicalAccounting& phys = report.object_store.physical;
  add_u64("store_logical_bytes", report.object_store.logical_bytes_stored);
  add_u64("store_physical_bytes", phys.bytes_stored);
  add_u64("store_physical_peak_bytes", phys.peak_bytes);
  add_u64("store_flat_bytes", phys.flat_bytes_stored);
  add_f64("store_dedup_ratio", phys.DedupRatio());
  add_u64("store_chunks_stored", phys.chunks_stored);
  add_u64("store_chunk_refs", phys.chunk_refs);
  add_u64("store_dedup_hits", phys.dedup_hits);
  add_u64("store_dedup_bytes_saved", phys.dedup_bytes_saved);
  add_u64("store_delta_bytes_shared", phys.delta_bytes_shared);
  add_u64("store_chunks_fetched", phys.chunks_fetched);
  add_u64("store_bytes_fetched", phys.bytes_fetched);
  add_u64("store_chunks_prefetched", phys.chunks_prefetched);
  add_u64("store_demand_faults", phys.demand_faults);
  add_u64("store_cache_hits", phys.cache_hits);
  add_u64("store_chunks_collected", phys.chunks_collected);
  add_u64("store_bytes_collected", phys.bytes_collected);
  add_u64("database_reads", report.database.reads);
  add_u64("database_writes", report.database.writes);
  const FaultRecoveryStats& faults = report.faults;
  add_u64("store_faults", faults.store_faults);
  add_u64("db_faults", faults.db_faults);
  add_u64("corrupted_puts", faults.corrupted_puts);
  add_u64("torn_puts", faults.torn_puts);
  add_u64("latency_injections", faults.latency_injections);
  add_u64("restore_retries", faults.restore_retries);
  add_u64("restore_failures", faults.restore_failures);
  add_u64("restore_fallbacks", faults.restore_fallbacks);
  add_u64("snapshots_quarantined", faults.snapshots_quarantined);
  add_u64("stale_entries_pruned", faults.stale_entries_pruned);
  add_u64("degraded_starts", faults.degraded_starts);
  add_u64("observations_buffered", faults.observations_buffered);
  add_u64("observations_replayed", faults.observations_replayed);
  add_u64("observations_dropped", faults.observations_dropped);
  add_u64("checkpoints_skipped", faults.checkpoints_skipped);
  add_u64("eviction_deletes_deferred", faults.eviction_deletes_deferred);
  add_u64("orphans_collected", faults.orphans_collected);
  add_u64("state_cas_attempts", faults.cas_attempts);
  add_u64("state_cas_conflicts", faults.cas_conflicts);
  add_u64("db_transient_retries", faults.db_transient_retries);
  return csv;
}

Status WriteSummaryCsv(const SimulationReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << SummaryToCsv(report);
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

namespace {

Result<DistributionSummary> DeserializeSummary(ByteReader& reader) {
  DistributionSummary out;
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > reader.remaining() / sizeof(double)) {
    return DataLossError("summary sample count exceeds remaining bytes");
  }
  for (uint64_t i = 0; i < count; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(double sample, reader.ReadDouble());
    out.Add(sample);
  }
  return out;
}

Result<Duration> ReadDuration(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(int64_t micros, reader.ReadInt64());
  return Duration::Micros(micros);
}

}  // namespace

Status DeserializeStoreAccounting(ByteReader& reader, StoreAccounting& out) {
  PRONGHORN_ASSIGN_OR_RETURN(out.logical_bytes_stored, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.peak_logical_bytes, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.network_bytes_uploaded, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.network_bytes_downloaded, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.put_count, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.get_count, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.delete_count, reader.ReadUint64());
  return OkStatus();
}

Status DeserializeKvAccounting(ByteReader& reader, KvAccounting& out) {
  PRONGHORN_ASSIGN_OR_RETURN(out.reads, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.writes, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.cas_attempts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.cas_conflicts, reader.ReadUint64());
  return OkStatus();
}

Status DeserializeFaultRecoveryStats(ByteReader& reader, FaultRecoveryStats& out) {
  PRONGHORN_ASSIGN_OR_RETURN(out.store_faults, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.db_faults, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.corrupted_puts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.torn_puts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.latency_injections, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.restore_retries, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.restore_failures, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.restore_fallbacks, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.snapshots_quarantined, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.stale_entries_pruned, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.degraded_starts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.observations_buffered, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.observations_replayed, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.observations_dropped, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.checkpoints_skipped, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.eviction_deletes_deferred, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.orphans_collected, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.cas_attempts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.cas_conflicts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.db_transient_retries, reader.ReadUint64());
  return OkStatus();
}

Status DeserializeReportCore(ByteReader& reader, ReportCore& out) {
  PRONGHORN_RETURN_IF_ERROR(DeserializeStoreAccounting(reader, out.object_store));
  PRONGHORN_RETURN_IF_ERROR(DeserializeKvAccounting(reader, out.database));
  return DeserializeFaultRecoveryStats(reader, out.faults);
}

Result<SimulationReport> DeserializeFunctionReport(ByteReader& reader) {
  SimulationReport out;
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t record_count, reader.ReadVarint());
  // Each record takes at least 4 bytes on the wire (two varints, an int64...
  // actually >= 2+8+1); a loose floor guards against hostile counts.
  if (record_count > reader.remaining()) {
    return DataLossError("record count exceeds remaining bytes");
  }
  out.records.reserve(record_count);
  for (uint64_t i = 0; i < record_count; ++i) {
    RequestRecord record;
    PRONGHORN_ASSIGN_OR_RETURN(record.global_index, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(record.request_number, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(record.latency, ReadDuration(reader));
    PRONGHORN_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadUint8());
    record.first_of_lifetime = (flags & 1) != 0;
    record.cold_start = (flags & 2) != 0;
    record.checkpoint_after = (flags & 4) != 0;
    out.records.push_back(record);
  }
  PRONGHORN_ASSIGN_OR_RETURN(out.exploring_latency, DeserializeSummary(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.exploiting_latency, DeserializeSummary(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.worker_lifetimes, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.checkpoints, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.restores, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.cold_starts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.total_checkpoint_downtime, ReadDuration(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.total_startup_latency, ReadDuration(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.total_worker_alive_time, ReadDuration(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.worker_memory_time_mb_s, reader.ReadDouble());
  PRONGHORN_ASSIGN_OR_RETURN(int64_t end_us, reader.ReadInt64());
  out.end_time = TimePoint::FromMicros(end_us);
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.worker_starts, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.requests_served, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.checkpoints_taken, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.total_startup_overhead, ReadDuration(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.total_request_overhead, ReadDuration(reader));
  PRONGHORN_ASSIGN_OR_RETURN(out.overheads.total_checkpoint_overhead,
                             ReadDuration(reader));
  PRONGHORN_RETURN_IF_ERROR(DeserializeFaultRecoveryStats(reader, out.faults));
  return out;
}

Result<ClusterReport> DeserializeClusterReport(ByteReader& reader) {
  PRONGHORN_ASSIGN_OR_RETURN(ClusterReport out, DeserializeFunctionReport(reader));
  PRONGHORN_RETURN_IF_ERROR(DeserializeStoreAccounting(reader, out.object_store));
  PRONGHORN_RETURN_IF_ERROR(DeserializeKvAccounting(reader, out.database));
  return out;
}

namespace {

// FNV-1a, the same stable name hash SimEnvironment::DeploymentSeed keys RNG
// substreams with; here it keys the reservoir retention sample.
uint64_t StableNameHash(std::string_view name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

StreamingAccumulator::StreamingAccumulator(RetentionOptions retention)
    : retention_(retention) {}

void StreamingAccumulator::Fold(std::string name, ClusterReport report) {
  std::lock_guard<std::mutex> lock(mutex_);
  FoldLocked(std::move(name), std::move(report));
}

void StreamingAccumulator::FoldLocked(std::string name, ClusterReport report) {
  // Digest row first: the CRC covers exactly the bytes ReportDigest would
  // hash for this function (length-prefixed name + canonical report bytes).
  ByteWriter writer;
  writer.Reserve(report.records.size() * 12 + name.size() + 64);
  writer.WriteString(name);
  SerializeFunctionReport(report, writer);
  DigestRow row;
  row.name = name;
  row.crc = Crc32(writer.data());
  row.length = writer.data().size();
  rows_.push_back(std::move(row));

  // Order-insensitive aggregates.
  for (const RequestRecord& record : report.records) {
    latency_hist_.Add(static_cast<uint64_t>(record.latency.ToMicros()));
  }
  invocations_total_ += report.records.size();
  worker_lifetimes_ += report.worker_lifetimes;
  checkpoints_ += report.checkpoints;
  restores_ += report.restores;
  cold_starts_ += report.cold_starts;
  MergeReportCore(core_, report);

  // Retained detail, bounded by the retention policy.
  switch (retention_.mode) {
    case ReportRetention::kAll:
      break;
    case ReportRetention::kTopLatency:
      latency_rank_.emplace(report.MedianLatencyUs(), name);
      break;
    case ReportRetention::kReservoir:
      hash_rank_.emplace(HashCombine(retention_.seed, StableNameHash(name)), name);
      break;
  }
  folded_names_.insert(name);
  retained_.emplace(std::move(name), std::move(report));
  EnforceRetentionLocked();
}

void StreamingAccumulator::EnforceRetentionLocked() {
  if (retention_.mode == ReportRetention::kAll || retention_.k == 0) {
    return;
  }
  while (retained_.size() > retention_.k) {
    // kTopLatency keeps the k largest ranks (evict the smallest); kReservoir
    // keeps the k smallest hashes (evict the largest). Both evict a pure
    // function of the folded set, so the survivors are order-insensitive.
    std::string victim;
    if (retention_.mode == ReportRetention::kTopLatency) {
      victim = latency_rank_.begin()->second;
      latency_rank_.erase(latency_rank_.begin());
    } else {
      victim = std::prev(hash_rank_.end())->second;
      hash_rank_.erase(std::prev(hash_rank_.end()));
    }
    retained_.erase(victim);
  }
}

bool StreamingAccumulator::Contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return folded_names_.find(name) != folded_names_.end();
}

uint64_t StreamingAccumulator::folded_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

uint64_t StreamingAccumulator::invocations_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invocations_total_;
}

uint32_t StreamingAccumulator::Digest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const DigestRow*> sorted;
  sorted.reserve(rows_.size());
  for (const DigestRow& row : rows_) {
    sorted.push_back(&row);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const DigestRow* a, const DigestRow* b) { return a->name < b->name; });
  // Stitch the per-function CRCs (in canonical name order) and the merged
  // core into the CRC of the concatenated serialization: exactly what
  // ReportDigest computes over the materialized reports.
  uint32_t digest = 0;  // CRC32 of the empty prefix.
  for (const DigestRow* row : sorted) {
    digest = Crc32Combine(digest, row->crc, row->length);
  }
  ByteWriter core_writer;
  SerializeReportCore(core_, core_writer);
  return Crc32Combine(digest, Crc32(core_writer.data()), core_writer.data().size());
}

StreamingAccumulator::Merged StreamingAccumulator::Take() {
  const uint32_t digest = Digest();
  std::lock_guard<std::mutex> lock(mutex_);
  Merged out;
  out.retention = retention_.mode;
  out.core = core_;
  out.worker_lifetimes = worker_lifetimes_;
  out.checkpoints = checkpoints_;
  out.restores = restores_;
  out.cold_starts = cold_starts_;
  out.functions_total = rows_.size();
  out.invocations_total = invocations_total_;
  out.latency_hist = latency_hist_;
  out.retained = std::move(retained_);
  out.digest = digest;
  core_ = ReportCore{};
  worker_lifetimes_ = checkpoints_ = restores_ = cold_starts_ = 0;
  invocations_total_ = 0;
  latency_hist_ = LatencyHistogram{};
  rows_.clear();
  folded_names_.clear();
  retained_.clear();
  latency_rank_.clear();
  hash_rank_.clear();
  return out;
}

void StreamingAccumulator::SerializeState(ByteWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.WriteUint8(static_cast<uint8_t>(retention_.mode));
  writer.WriteVarint(retention_.k);
  writer.WriteUint64(retention_.seed);
  writer.WriteUint64(worker_lifetimes_);
  writer.WriteUint64(checkpoints_);
  writer.WriteUint64(restores_);
  writer.WriteUint64(cold_starts_);
  writer.WriteVarint(invocations_total_);
  SerializeReportCore(core_, writer);
  latency_hist_.Serialize(writer);
  writer.WriteVarint(rows_.size());
  for (const DigestRow& row : rows_) {
    writer.WriteString(row.name);
    writer.WriteUint32(row.crc);
    writer.WriteVarint(row.length);
  }
  writer.WriteVarint(retained_.size());
  for (const auto& [name, report] : retained_) {
    writer.WriteString(name);
    ByteWriter body;
    body.Reserve(report.records.size() * 12 + 128);
    SerializeClusterReport(report, body);
    writer.WriteBytes(body.data());
  }
}

Status StreamingAccumulator::RestoreState(ByteReader& reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!rows_.empty()) {
    return FailedPreconditionError("RestoreState needs an empty accumulator");
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint8_t mode, reader.ReadUint8());
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t k, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t seed, reader.ReadUint64());
  if (mode != static_cast<uint8_t>(retention_.mode) || k != retention_.k ||
      seed != retention_.seed) {
    return FailedPreconditionError(
        "checkpointed retention options do not match this run (checkpoint: mode=" +
        std::to_string(mode) + " k=" + std::to_string(k) + ")");
  }
  PRONGHORN_ASSIGN_OR_RETURN(worker_lifetimes_, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(checkpoints_, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(restores_, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(cold_starts_, reader.ReadUint64());
  PRONGHORN_ASSIGN_OR_RETURN(invocations_total_, reader.ReadVarint());
  PRONGHORN_RETURN_IF_ERROR(DeserializeReportCore(reader, core_));
  PRONGHORN_ASSIGN_OR_RETURN(latency_hist_, LatencyHistogram::Deserialize(reader));
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t row_count, reader.ReadVarint());
  for (uint64_t i = 0; i < row_count; ++i) {
    DigestRow row;
    PRONGHORN_ASSIGN_OR_RETURN(row.name, reader.ReadString());
    PRONGHORN_ASSIGN_OR_RETURN(row.crc, reader.ReadUint32());
    PRONGHORN_ASSIGN_OR_RETURN(row.length, reader.ReadVarint());
    folded_names_.insert(row.name);
    rows_.push_back(std::move(row));
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t retained_count, reader.ReadVarint());
  for (uint64_t i = 0; i < retained_count; ++i) {
    PRONGHORN_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    PRONGHORN_ASSIGN_OR_RETURN(std::vector<uint8_t> body, reader.ReadBytes());
    ByteReader body_reader(body);
    PRONGHORN_ASSIGN_OR_RETURN(ClusterReport report,
                               DeserializeClusterReport(body_reader));
    if (!body_reader.AtEnd()) {
      return DataLossError("trailing bytes after retained report '" + name + "'");
    }
    switch (retention_.mode) {
      case ReportRetention::kAll:
        break;
      case ReportRetention::kTopLatency:
        latency_rank_.emplace(report.MedianLatencyUs(), name);
        break;
      case ReportRetention::kReservoir:
        hash_rank_.emplace(HashCombine(retention_.seed, StableNameHash(name)), name);
        break;
    }
    retained_.emplace(std::move(name), std::move(report));
  }
  return OkStatus();
}

}  // namespace pronghorn
