#include "src/platform/report_io.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/crc32.h"

namespace pronghorn {

namespace {

constexpr std::string_view kHeader =
    "global_index,request_number,latency_us,first_of_lifetime,cold_start,"
    "checkpoint_after";

Result<int64_t> ParseField(std::string_view text) {
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return DataLossError("bad CSV field '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

std::string RecordsToCsv(std::span<const RequestRecord> records) {
  std::string out(kHeader);
  out += '\n';
  char line[128];
  for (const RequestRecord& record : records) {
    std::snprintf(line, sizeof(line), "%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%d,%d,%d\n",
                  record.global_index, record.request_number,
                  record.latency.ToMicros(), record.first_of_lifetime ? 1 : 0,
                  record.cold_start ? 1 : 0, record.checkpoint_after ? 1 : 0);
    out += line;
  }
  return out;
}

Status WriteRecordsCsv(const SimulationReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << RecordsToCsv(report.records);
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

Result<std::vector<RequestRecord>> RecordsFromCsv(std::string_view csv) {
  std::vector<RequestRecord> records;
  size_t pos = 0;
  size_t line_number = 0;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string_view::npos) {
      end = csv.size();
    }
    const std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line_number == 1) {
      if (line != kHeader) {
        return DataLossError("bad records CSV header");
      }
      continue;
    }
    // Split into exactly 6 comma-separated fields.
    int64_t fields[6];
    size_t field_index = 0;
    size_t field_start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (field_index >= 6) {
          return DataLossError("too many fields on records CSV line " +
                               std::to_string(line_number));
        }
        PRONGHORN_ASSIGN_OR_RETURN(fields[field_index],
                                   ParseField(line.substr(field_start, i - field_start)));
        ++field_index;
        field_start = i + 1;
      }
    }
    if (field_index != 6) {
      return DataLossError("too few fields on records CSV line " +
                           std::to_string(line_number));
    }
    RequestRecord record;
    record.global_index = static_cast<uint64_t>(fields[0]);
    record.request_number = static_cast<uint64_t>(fields[1]);
    record.latency = Duration::Micros(fields[2]);
    record.first_of_lifetime = fields[3] != 0;
    record.cold_start = fields[4] != 0;
    record.checkpoint_after = fields[5] != 0;
    records.push_back(record);
  }
  return records;
}

Result<std::vector<RequestRecord>> ReadRecordsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open records CSV '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return RecordsFromCsv(buffer.str());
}

namespace {

void SerializeSummary(const DistributionSummary& summary, ByteWriter& writer) {
  writer.WriteVarint(summary.count());
  for (const double sample : summary.samples()) {
    writer.WriteDouble(sample);
  }
}

}  // namespace

void SerializeStoreAccounting(const StoreAccounting& accounting, ByteWriter& writer) {
  writer.WriteUint64(accounting.logical_bytes_stored);
  writer.WriteUint64(accounting.peak_logical_bytes);
  writer.WriteUint64(accounting.network_bytes_uploaded);
  writer.WriteUint64(accounting.network_bytes_downloaded);
  writer.WriteUint64(accounting.put_count);
  writer.WriteUint64(accounting.get_count);
  writer.WriteUint64(accounting.delete_count);
}

void SerializeKvAccounting(const KvAccounting& accounting, ByteWriter& writer) {
  writer.WriteUint64(accounting.reads);
  writer.WriteUint64(accounting.writes);
  writer.WriteUint64(accounting.cas_attempts);
  writer.WriteUint64(accounting.cas_conflicts);
}

void SerializeFaultRecoveryStats(const FaultRecoveryStats& stats, ByteWriter& writer) {
  writer.WriteUint64(stats.store_faults);
  writer.WriteUint64(stats.db_faults);
  writer.WriteUint64(stats.corrupted_puts);
  writer.WriteUint64(stats.torn_puts);
  writer.WriteUint64(stats.latency_injections);
  writer.WriteUint64(stats.restore_retries);
  writer.WriteUint64(stats.restore_failures);
  writer.WriteUint64(stats.restore_fallbacks);
  writer.WriteUint64(stats.snapshots_quarantined);
  writer.WriteUint64(stats.stale_entries_pruned);
  writer.WriteUint64(stats.degraded_starts);
  writer.WriteUint64(stats.observations_buffered);
  writer.WriteUint64(stats.observations_replayed);
  writer.WriteUint64(stats.observations_dropped);
  writer.WriteUint64(stats.checkpoints_skipped);
  writer.WriteUint64(stats.eviction_deletes_deferred);
  writer.WriteUint64(stats.orphans_collected);
  writer.WriteUint64(stats.cas_attempts);
  writer.WriteUint64(stats.cas_conflicts);
  writer.WriteUint64(stats.db_transient_retries);
}

void SerializeFunctionReport(const SimulationReport& report, ByteWriter& writer) {
  writer.WriteVarint(report.records.size());
  for (const RequestRecord& record : report.records) {
    writer.WriteVarint(record.global_index);
    writer.WriteVarint(record.request_number);
    writer.WriteInt64(record.latency.ToMicros());
    const uint8_t flags = static_cast<uint8_t>((record.first_of_lifetime ? 1 : 0) |
                                               (record.cold_start ? 2 : 0) |
                                               (record.checkpoint_after ? 4 : 0));
    writer.WriteUint8(flags);
  }
  SerializeSummary(report.exploring_latency, writer);
  SerializeSummary(report.exploiting_latency, writer);
  writer.WriteUint64(report.worker_lifetimes);
  writer.WriteUint64(report.checkpoints);
  writer.WriteUint64(report.restores);
  writer.WriteUint64(report.cold_starts);
  writer.WriteInt64(report.total_checkpoint_downtime.ToMicros());
  writer.WriteInt64(report.total_startup_latency.ToMicros());
  writer.WriteInt64(report.total_worker_alive_time.ToMicros());
  writer.WriteDouble(report.worker_memory_time_mb_s);
  writer.WriteInt64(report.end_time.ToMicros());
  writer.WriteUint64(report.overheads.worker_starts);
  writer.WriteUint64(report.overheads.requests_served);
  writer.WriteUint64(report.overheads.checkpoints_taken);
  writer.WriteInt64(report.overheads.total_startup_overhead.ToMicros());
  writer.WriteInt64(report.overheads.total_request_overhead.ToMicros());
  writer.WriteInt64(report.overheads.total_checkpoint_overhead.ToMicros());
  // Covering the fault/recovery counters means the fleet digest certifies
  // that chaos runs — not just fault-free ones — are schedule-independent.
  SerializeFaultRecoveryStats(report.faults, writer);
}

void SerializeReportCore(const ReportCore& core, ByteWriter& writer) {
  SerializeStoreAccounting(core.object_store, writer);
  SerializeKvAccounting(core.database, writer);
  SerializeFaultRecoveryStats(core.faults, writer);
}

void MergeReportCore(ReportCore& into, const ReportCore& from) {
  MergeAccounting(into.object_store, from.object_store);
  MergeAccounting(into.database, from.database);
  MergeFaultRecoveryStats(into.faults, from.faults);
}

uint32_t ReportDigest(std::span<const NamedReportRef> per_function,
                      const ReportCore& core) {
  ByteWriter writer;
  for (const NamedReportRef& row : per_function) {
    writer.WriteString(row.name);
    SerializeFunctionReport(*row.report, writer);
  }
  SerializeReportCore(core, writer);
  return Crc32(writer.data());
}

void SerializeClusterReport(const ClusterReport& report, ByteWriter& writer) {
  SerializeFunctionReport(report, writer);
  SerializeStoreAccounting(report.object_store, writer);
  SerializeKvAccounting(report.database, writer);
}

uint32_t ClusterReportCrc32(const ClusterReport& report) {
  ByteWriter writer;
  writer.Reserve(report.records.size() * 12);
  SerializeClusterReport(report, writer);
  return Crc32(writer.data());
}

std::string SummarizeReport(const SimulationReport& report) {
  const DistributionSummary summary = report.LatencySummary();
  char out[512];
  std::snprintf(out, sizeof(out),
                "requests=%zu p50_us=%.0f p90_us=%.0f p99_us=%.0f lifetimes=%" PRIu64
                " cold=%" PRIu64 " restores=%" PRIu64 " checkpoints=%" PRIu64
                " storage_peak_mb=%.1f net_up_mb=%.1f net_down_mb=%.1f",
                report.records.size(), summary.Quantile(50), summary.Quantile(90),
                summary.Quantile(99), report.worker_lifetimes, report.cold_starts,
                report.restores, report.checkpoints,
                static_cast<double>(report.object_store.peak_logical_bytes) / 1048576.0,
                static_cast<double>(report.object_store.network_bytes_uploaded) /
                    1048576.0,
                static_cast<double>(report.object_store.network_bytes_downloaded) /
                    1048576.0);
  std::string summary_line(out);
  const FaultRecoveryStats& faults = report.faults;
  if (faults.store_faults + faults.db_faults + faults.restore_fallbacks +
          faults.degraded_starts + faults.snapshots_quarantined >
      0) {
    std::snprintf(out, sizeof(out),
                  " store_faults=%" PRIu64 " db_faults=%" PRIu64
                  " restore_fallbacks=%" PRIu64 " quarantined=%" PRIu64
                  " degraded_starts=%" PRIu64 " obs_replayed=%" PRIu64
                  " checkpoints_skipped=%" PRIu64,
                  faults.store_faults, faults.db_faults, faults.restore_fallbacks,
                  faults.snapshots_quarantined, faults.degraded_starts,
                  faults.observations_replayed, faults.checkpoints_skipped);
    summary_line += out;
  }
  return summary_line;
}

std::string SummaryToCsv(const SimulationReport& report) {
  const DistributionSummary summary = report.LatencySummary();
  std::string csv("key,value\n");
  char line[128];
  const auto add_u64 = [&](const char* key, uint64_t value) {
    std::snprintf(line, sizeof(line), "%s,%" PRIu64 "\n", key, value);
    csv += line;
  };
  const auto add_f64 = [&](const char* key, double value) {
    std::snprintf(line, sizeof(line), "%s,%.3f\n", key, value);
    csv += line;
  };
  add_u64("requests", report.records.size());
  add_f64("p50_us", summary.Quantile(50));
  add_f64("p90_us", summary.Quantile(90));
  add_f64("p99_us", summary.Quantile(99));
  add_u64("worker_lifetimes", report.worker_lifetimes);
  add_u64("cold_starts", report.cold_starts);
  add_u64("restores", report.restores);
  add_u64("checkpoints", report.checkpoints);
  add_u64("object_store_peak_bytes", report.object_store.peak_logical_bytes);
  add_u64("object_store_puts", report.object_store.put_count);
  add_u64("object_store_gets", report.object_store.get_count);
  add_u64("database_reads", report.database.reads);
  add_u64("database_writes", report.database.writes);
  const FaultRecoveryStats& faults = report.faults;
  add_u64("store_faults", faults.store_faults);
  add_u64("db_faults", faults.db_faults);
  add_u64("corrupted_puts", faults.corrupted_puts);
  add_u64("torn_puts", faults.torn_puts);
  add_u64("latency_injections", faults.latency_injections);
  add_u64("restore_retries", faults.restore_retries);
  add_u64("restore_failures", faults.restore_failures);
  add_u64("restore_fallbacks", faults.restore_fallbacks);
  add_u64("snapshots_quarantined", faults.snapshots_quarantined);
  add_u64("stale_entries_pruned", faults.stale_entries_pruned);
  add_u64("degraded_starts", faults.degraded_starts);
  add_u64("observations_buffered", faults.observations_buffered);
  add_u64("observations_replayed", faults.observations_replayed);
  add_u64("observations_dropped", faults.observations_dropped);
  add_u64("checkpoints_skipped", faults.checkpoints_skipped);
  add_u64("eviction_deletes_deferred", faults.eviction_deletes_deferred);
  add_u64("orphans_collected", faults.orphans_collected);
  add_u64("state_cas_attempts", faults.cas_attempts);
  add_u64("state_cas_conflicts", faults.cas_conflicts);
  add_u64("db_transient_retries", faults.db_transient_retries);
  return csv;
}

Status WriteSummaryCsv(const SimulationReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << SummaryToCsv(report);
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

}  // namespace pronghorn
