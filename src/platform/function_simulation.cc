#include "src/platform/function_simulation.h"

#include <algorithm>
#include <optional>

#include "src/common/logging.h"

namespace pronghorn {

namespace {

// Scopes a user-supplied fault plan to one simulation: combining the plan
// seed with the simulation seed and a per-store salt keeps the two
// decorators' fault streams independent and experiment-specific.
FaultPlan ScopePlan(const FaultPlan& base, uint64_t sim_seed, uint64_t salt) {
  FaultPlan plan = base;
  plan.seed = HashCombine(sim_seed, HashCombine(salt, base.seed));
  return plan;
}

}  // namespace

FunctionSimulation::FunctionSimulation(const WorkloadProfile& profile,
                                       const WorkloadRegistry& registry,
                                       const OrchestrationPolicy& policy,
                                       const EvictionModel& eviction,
                                       SimulationOptions options)
    : profile_(profile),
      registry_(registry),
      policy_(policy),
      eviction_(eviction),
      options_(options),
      faulty_db_(options.faults.Active()
                     ? std::optional<FaultyKvDatabase>(
                           std::in_place, db_,
                           ScopePlan(options.faults, options.seed, 0xdbULL), &clock_)
                     : std::nullopt),
      faulty_object_store_(options.faults.Active()
                               ? std::optional<FaultyObjectStore>(
                                     std::in_place, object_store_,
                                     ScopePlan(options.faults, options.seed, 0x0bULL),
                                     &clock_)
                               : std::nullopt),
      engine_(options.engine_kind == EngineKind::kDelta
                  ? std::unique_ptr<CheckpointEngine>(std::make_unique<
                        DeltaCheckpointEngine>(HashCombine(options.seed, 0xe1ULL)))
                  : std::make_unique<CriuLikeEngine>(
                        HashCombine(options.seed, 0xe1ULL))),
      state_store_(faulty_db_.has_value() ? static_cast<KvDatabase&>(*faulty_db_)
                                          : static_cast<KvDatabase&>(db_),
                   profile.name, policy.config(), &clock_),
      orchestrator_(profile, registry, policy, *engine_,
                    faulty_object_store_.has_value()
                        ? static_cast<ObjectStore&>(*faulty_object_store_)
                        : static_cast<ObjectStore&>(object_store_),
                    state_store_, clock_, HashCombine(options.seed, 0x0eULL),
                    options.costs, options.recovery),
      input_model_(profile, options.input_noise),
      client_rng_(HashCombine(options.seed, 0xc1ULL)) {}

FunctionSimulation::~FunctionSimulation() = default;

Result<SimulationReport> FunctionSimulation::RunClosedLoop(uint64_t request_count) {
  return Run({}, /*closed_loop=*/true, request_count);
}

Result<SimulationReport> FunctionSimulation::RunTrace(
    std::span<const TimePoint> arrivals) {
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] < arrivals[i - 1]) {
      return InvalidArgumentError("trace arrivals must be non-decreasing");
    }
  }
  return Run(arrivals, /*closed_loop=*/false, arrivals.size());
}

Result<SimulationReport> FunctionSimulation::Run(std::span<const TimePoint> arrivals,
                                                 bool closed_loop,
                                                 uint64_t request_count) {
  SimulationReport report;
  report.records.reserve(request_count);

  std::optional<WorkerSession> session;
  uint64_t requests_in_lifetime = 0;
  TimePoint worker_started_at = clock_.now();
  TimePoint worker_free_at = clock_.now();

  for (uint64_t i = 0; i < request_count; ++i) {
    const TimePoint arrival = closed_loop ? clock_.now() : arrivals[i];
    clock_.AdvanceTo(arrival);

    // Provision a worker if none is warm (happens off the critical path by
    // default: the platform restarted it right after the last eviction).
    bool fresh_worker = false;
    if (!session.has_value()) {
      PRONGHORN_ASSIGN_OR_RETURN(WorkerSession started, orchestrator_.StartWorker());
      session.emplace(std::move(started));
      fresh_worker = true;
      requests_in_lifetime = 0;
      worker_started_at = arrival;
      report.worker_lifetimes += 1;
      if (session->restored) {
        report.restores += 1;
      } else {
        report.cold_starts += 1;
      }
      report.total_startup_latency += session->startup_latency;
    }

    FunctionRequest request;
    request.id = next_request_id_++;
    request.input_scale = input_model_.NextScale(client_rng_);

    PRONGHORN_ASSIGN_OR_RETURN(RequestOutcome outcome,
                               orchestrator_.ServeRequest(*session, request));
    requests_in_lifetime += 1;

    // User-visible latency: queueing (busy worker) + optional startup +
    // execution.
    Duration latency = outcome.latency;
    if (options_.startup_on_critical_path && fresh_worker) {
      latency += session->startup_latency;
    }
    if (worker_free_at > arrival) {
      latency += worker_free_at - arrival;
    }
    const TimePoint completion = arrival + latency;
    clock_.AdvanceTo(completion);
    worker_free_at = completion;

    if (outcome.checkpoint_taken) {
      report.checkpoints += 1;
      report.total_checkpoint_downtime += outcome.checkpoint_downtime;
      if (options_.checkpoint_blocks_requests) {
        worker_free_at = worker_free_at + outcome.checkpoint_downtime;
      }
    }

    RequestRecord record;
    record.global_index = i;
    record.request_number = outcome.request_number;
    record.latency = latency;
    record.first_of_lifetime = fresh_worker;
    record.cold_start = fresh_worker && !session->restored;
    record.checkpoint_after = outcome.checkpoint_taken;
    report.records.push_back(record);

    // Eviction decision given the next arrival (the last request needs none).
    const bool has_next = i + 1 < request_count;
    const TimePoint next_arrival =
        closed_loop ? completion : (has_next ? arrivals[i + 1] : completion);
    if (has_next && eviction_.ShouldEvict(requests_in_lifetime, worker_started_at,
                                          completion, next_arrival)) {
      // A worker evicted by idle timeout holds its resources until the
      // timeout fires, not just until its last response.
      TimePoint evicted_at = completion;
      if (!closed_loop && next_arrival - completion > Duration::Zero()) {
        const Duration idle_held =
            std::min(next_arrival - completion, options_.idle_resource_hold);
        evicted_at = completion + idle_held;
      }
      const Duration alive = evicted_at - worker_started_at;
      report.total_worker_alive_time += alive;
      report.worker_memory_time_mb_s +=
          alive.ToSeconds() * session->process.MemoryFootprintMb();
      session.reset();
    }
  }

  if (session.has_value()) {
    // Account the final still-warm worker up to the end of the run.
    const Duration alive = clock_.now() - worker_started_at;
    report.total_worker_alive_time += alive;
    report.worker_memory_time_mb_s +=
        alive.ToSeconds() * session->process.MemoryFootprintMb();
  }

  report.end_time = clock_.now();
  report.object_store = object_store_.accounting();
  report.database = db_.accounting();
  report.overheads = orchestrator_.overheads();
  AccumulateRecovery(report.faults, orchestrator_.recovery_stats());
  AccumulateStateStore(report.faults, state_store_.stats());
  if (faulty_object_store_.has_value()) {
    AccumulateStoreFaults(report.faults, faulty_object_store_->stats());
  }
  if (faulty_db_.has_value()) {
    AccumulateDatabaseFaults(report.faults, faulty_db_->stats());
  }
  return report;
}

}  // namespace pronghorn
