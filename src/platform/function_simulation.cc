#include "src/platform/function_simulation.h"

#include <vector>

namespace pronghorn {

FunctionSimulation::FunctionSimulation(const WorkloadProfile& profile,
                                       const WorkloadRegistry& registry,
                                       const OrchestrationPolicy& policy,
                                       const EvictionModel& eviction,
                                       SimOptions options)
    : env_(registry, options),
      init_(env_.AddDeployment(profile.name, profile, policy, eviction,
                               /*worker_slots=*/1, /*exploring_slots=*/1,
                               /*sub_seed=*/options.seed)) {}

FunctionSimulation::~FunctionSimulation() = default;

Result<SimulationReport> FunctionSimulation::RunClosedLoop(uint64_t request_count) {
  PRONGHORN_RETURN_IF_ERROR(init_);
  PRONGHORN_RETURN_IF_ERROR(env_.RunClosedLoop(request_count));
  env_.RetireAllWorkers();
  return env_.TakeFlatReport();
}

Result<SimulationReport> FunctionSimulation::RunTrace(
    std::span<const TimePoint> arrivals) {
  PRONGHORN_RETURN_IF_ERROR(init_);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] < arrivals[i - 1]) {
      return InvalidArgumentError("trace arrivals must be non-decreasing");
    }
  }
  std::vector<SimEnvironment::Arrival> events;
  events.reserve(arrivals.size());
  for (const TimePoint arrival : arrivals) {
    events.push_back(SimEnvironment::Arrival{0, arrival});
  }
  PRONGHORN_RETURN_IF_ERROR(env_.RunArrivals(events));
  env_.RetireAllWorkers();
  return env_.TakeFlatReport();
}

}  // namespace pronghorn
