// The unified simulation entry point: one call shape for every driver.
//
// The four driver classes (FunctionSimulation / ClusterSimulation /
// PlatformSimulation / FleetSimulation) grew four different Run* signatures
// for what is one operation: configure deployments, run the closed loop,
// harvest a report. Simulate() is that operation as a free function — pick a
// topology, list the functions, pass one SimOptions (optionally with an
// ObsSink), get one SimReport. The driver classes remain as thin wrappers
// for callers that need incremental control (repeated runs on persistent
// state, trace replay); Simulate() is the preferred surface for one-shot
// experiments and is what pronghorn_sim / pronghorn_eval call.
//
// Equivalence contract (covered by tests/driver_equivalence_test.cc): for
// the same options and functions, Simulate() produces byte-identical digests
// to the corresponding driver class — kSingle matches
// Function/ClusterSimulation (sub-seed = options.seed), kPlatform matches
// PlatformSimulation, kFleet matches FleetSimulation — with or without an
// observability sink attached.

#ifndef PRONGHORN_SRC_PLATFORM_SIMULATE_H_
#define PRONGHORN_SRC_PLATFORM_SIMULATE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/sink.h"
#include "src/platform/metrics.h"
#include "src/platform/sim_options.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// How the deployments share infrastructure.
enum class SimTopology {
  // One deployment, one control plane, options.worker_slots slots. The RNG
  // sub-seed is options.seed itself, so a kSingle run replays the historical
  // FunctionSimulation (one slot) / ClusterSimulation (many) bit-for-bit.
  kSingle,
  // Many deployments on ONE shared control plane (global Database + Object
  // Store), one worker slot each, closed loop across all of them; request
  // counts sum into the environment-wide total. Matches PlatformSimulation.
  kPlatform,
  // Many deployments, each its own isolated environment, sharded across
  // options.threads workers and merged canonically. Per-deployment request
  // counts. Matches FleetSimulation.
  kFleet,
};

// One function deployment in a Simulate() run. `profile` and `policy` are
// borrowed and must outlive the call.
struct SimFunctionSpec {
  std::string name;  // Unique; keys the RNG substream in multi-function runs.
  const WorkloadProfile* profile = nullptr;
  const OrchestrationPolicy* policy = nullptr;
  uint64_t requests = 500;
};

struct SimFunctionResult {
  std::string function;
  SimulationReport report;
};

// The one report every topology produces: per-function reports in canonical
// (name) order, merged latency and lifecycle counters, the environment-wide
// store/fault accounting (ReportCore), and — when a sink was attached — the
// harvested metrics snapshot and a borrowed trace handle.
struct SimReport : ReportCore {
  std::vector<SimFunctionResult> per_function;  // Sorted by function name.

  // Every request latency across all functions, merged in canonical order.
  DistributionSummary latency;

  uint64_t worker_lifetimes = 0;
  uint64_t checkpoints = 0;
  uint64_t restores = 0;
  uint64_t cold_starts = 0;

  // How much per-function detail this report retains (always kAll for
  // kSingle/kPlatform; the fleet topology honors options.retention), and the
  // totals over ALL simulated functions — which per_function.size() and
  // `latency` understate under the bounded fleet modes.
  ReportRetention retention = ReportRetention::kAll;
  uint64_t functions_total = 0;
  uint64_t invocations_total = 0;

  // Exact-merge latency histogram over every request of every function,
  // complete in all retention modes (unlike `latency`, which needs the full
  // per-function record bodies).
  LatencyHistogram latency_hist;

  // The canonical digest as maintained by the streaming fold — equal to
  // ReportDigest over ALL simulated functions even when per_function was
  // decimated by a bounded retention mode.
  uint32_t streaming_digest = 0;

  // Counters / gauges / histograms harvested from the sink at the end of the
  // run; empty when no sink was attached (or the sink keeps no metrics).
  MetricsSnapshot metrics;
  // The sink's trace recorder, borrowed — valid while the sink outlives the
  // report; nullptr when tracing was off. Never feeds Digest().
  const TraceRecorder* trace = nullptr;

  // CRC32 over the canonical serialization (report_io::ReportDigest): the
  // same layout as PlatformReport::Digest() and FleetReport::Digest(), so
  // old- and new-surface runs of one experiment hash identically.
  // Observability data (metrics, trace) is excluded by construction.
  uint32_t Digest() const;

  // Per-function lookup; nullptr when `name` is not in the run.
  const SimulationReport* Find(std::string_view name) const;

  // Single-function flattened view (kSingle parity with TakeFlatReport).
  // Requires at least one function.
  const SimulationReport& flat() const { return per_function.front().report; }
};

// Runs one closed-loop experiment: instantiates the eviction model from
// options.eviction, deploys `functions` under `topology`, drives the closed
// loop, and harvests one SimReport. `obs`, when non-null, overrides
// options.obs for this run (the `Simulate(options, sink)` call shape);
// passing nullptr uses options.obs, which may itself be null (observability
// fully disabled — the zero-cost path).
//
// When options.sim_checkpoint is enabled, the run writes crash-consistent
// checkpoints keyed by the experiment fingerprint and, with resume set,
// continues from them, reproducing the uninterrupted digest bit-for-bit.
// kFleet checkpoints at completed-deployment granularity (only unfinished
// deployments re-run); kSingle/kPlatform checkpoint at whole-run granularity
// — every deployment's trajectory is a pure function of (seed, name), so a
// mid-run kill deterministically re-runs to the same report, and a finished
// run is served straight from the stored frame. Observability state
// (metrics/trace) is not checkpointed; a resumed-from-file run reports an
// empty metrics snapshot.
Result<SimReport> Simulate(const WorkloadRegistry& registry, SimTopology topology,
                           std::span<const SimFunctionSpec> functions,
                           const SimOptions& options, ObsSink* obs = nullptr);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_PLATFORM_SIMULATE_H_
