#include "src/platform/fleet_simulation.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "src/common/crc32.h"
#include "src/common/thread_pool.h"
#include "src/platform/report_io.h"
#include "src/service/orchestrator_service.h"

namespace pronghorn {

uint64_t FleetSimulation::FunctionSeed(uint64_t fleet_seed, std::string_view name) {
  return SimEnvironment::DeploymentSeed(fleet_seed, name);
}

uint32_t FleetReport::Digest() const {
  std::vector<NamedReportRef> rows;
  rows.reserve(per_function.size());
  for (const FleetFunctionResult& result : per_function) {
    rows.push_back(NamedReportRef{result.function, &result.report});
  }
  return ReportDigest(rows, *this);
}

const ClusterReport* FleetReport::Find(std::string_view name) const {
  for (const FleetFunctionResult& result : per_function) {
    if (result.function == name) {
      return &result.report;
    }
  }
  return nullptr;
}

FleetSimulation::FleetSimulation(const WorkloadRegistry& registry, FleetOptions options)
    : registry_(registry), options_(options) {}

Status FleetSimulation::AddFunction(FleetFunctionSpec spec) {
  if (spec.name.empty()) {
    return InvalidArgumentError("deployment name must be non-empty");
  }
  if (spec.profile == nullptr || spec.policy == nullptr) {
    return InvalidArgumentError("deployment '" + spec.name +
                                "' needs a profile and a policy");
  }
  if (spec.requests == 0) {
    return InvalidArgumentError("deployment '" + spec.name +
                                "' needs a positive request count");
  }
  for (const FleetFunctionSpec& existing : functions_) {
    if (existing.name == spec.name) {
      return AlreadyExistsError("deployment '" + spec.name + "' already in fleet");
    }
  }
  functions_.push_back(std::move(spec));
  return OkStatus();
}

Result<ClusterReport> FleetSimulation::RunShard(
    const FleetFunctionSpec& spec, const ClusterOptions& base_options) const {
  // All shard randomness keys off (fleet seed, deployment name) — never off
  // the thread or shard index — so results are schedule-independent.
  const uint64_t function_seed = FunctionSeed(options_.seed, spec.name);
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options_.eviction.Instantiate(function_seed));
  // The shard inherits the fleet's options wholesale (including the obs sink,
  // which is thread-safe) and overrides only its own identity and topology.
  ClusterOptions cluster_options = base_options;
  cluster_options.seed = function_seed;
  cluster_options.worker_slots = spec.worker_slots;
  cluster_options.exploring_slots = spec.exploring_slots;
  ClusterSimulation cluster(*spec.profile, registry_, *spec.policy, *eviction,
                            cluster_options);
  return cluster.RunClosedLoop(spec.requests);
}

Result<FleetReport> FleetSimulation::Run() const {
  if (functions_.empty()) {
    return FailedPreconditionError("fleet has no deployments");
  }

  // Service mode: all shard environments are clients of one shared live
  // service for the whole run (each deployment still evolves independently —
  // its requests are serialized on its service shard and issued from one
  // client task, so the canonical merge stays schedule-independent).
  ClusterOptions base_options = options_;
  std::unique_ptr<OrchestratorService> shared_service;
  if (options_.service.enabled && options_.service.instance == nullptr) {
    ServiceConfig config;
    config.shards = options_.service.shards;
    config.queue_capacity = options_.service.queue_capacity;
    config.max_batch = options_.service.max_batch;
    config.flush_interval = options_.service.flush_interval;
    config.journal_dir = options_.service.journal_dir;
    config.shed_deadline_ms = options_.service.shed_deadline_ms;
    config.faults = options_.faults.service;
    config.obs = options_.obs;
    shared_service = std::make_unique<OrchestratorService>(config);
    base_options.service.instance = shared_service.get();
  }

  // Phase 1 — sharded execution. One task per deployment; the pool's
  // work-stealing balances wildly uneven shard runtimes. Each slot is written
  // by exactly one task, so the vector needs no lock.
  std::vector<std::optional<Result<ClusterReport>>> shard_results(functions_.size());
  const uint32_t threads =
      options_.threads == 0 ? ThreadPool::DefaultThreadCount() : options_.threads;
  if (threads <= 1 || functions_.size() == 1) {
    for (size_t i = 0; i < functions_.size(); ++i) {
      shard_results[i].emplace(RunShard(functions_[i], base_options));
    }
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(functions_.size(), [this, &shard_results, &base_options](size_t i) {
      shard_results[i].emplace(RunShard(functions_[i], base_options));
    });
  }

  // Phase 2 — canonical merge: results are visited in deployment-name order,
  // whatever order the shards finished in.
  std::vector<size_t> order(functions_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return functions_[a].name < functions_[b].name;
  });

  FleetReport fleet;
  fleet.per_function.reserve(functions_.size());
  for (const size_t index : order) {
    Result<ClusterReport>& shard = *shard_results[index];
    if (!shard.ok()) {
      return Status(shard.status().code(), "deployment '" + functions_[index].name +
                                               "': " + shard.status().message());
    }
    ClusterReport& report = *shard;
    for (const RequestRecord& record : report.records) {
      fleet.fleet_latency.Add(static_cast<double>(record.latency.ToMicros()));
    }
    fleet.worker_lifetimes += report.worker_lifetimes;
    fleet.checkpoints += report.checkpoints;
    fleet.restores += report.restores;
    fleet.cold_starts += report.cold_starts;
    MergeReportCore(fleet, report);
    fleet.per_function.push_back(
        FleetFunctionResult{functions_[index].name, std::move(report)});
  }
  return fleet;
}

}  // namespace pronghorn
