#include "src/platform/fleet_simulation.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/thread_pool.h"
#include "src/platform/report_io.h"
#include "src/platform/sim_checkpoint.h"
#include "src/service/orchestrator_service.h"

namespace pronghorn {

uint64_t FleetSimulation::FunctionSeed(uint64_t fleet_seed, std::string_view name) {
  return SimEnvironment::DeploymentSeed(fleet_seed, name);
}

uint32_t FleetReport::Digest() const {
  if (retention != ReportRetention::kAll) {
    // per_function is decimated; the accumulator's CRC-combined digest is
    // the canonical one (identical to what a keep-all run computes).
    return streaming_digest;
  }
  std::vector<NamedReportRef> rows;
  rows.reserve(per_function.size());
  for (const FleetFunctionResult& result : per_function) {
    rows.push_back(NamedReportRef{result.function, &result.report});
  }
  return ReportDigest(rows, *this);
}

const ClusterReport* FleetReport::Find(std::string_view name) const {
  for (const FleetFunctionResult& result : per_function) {
    if (result.function == name) {
      return &result.report;
    }
  }
  return nullptr;
}

FleetSimulation::FleetSimulation(const WorkloadRegistry& registry, SimOptions options)
    : registry_(registry), options_(options) {}

Status FleetSimulation::AddFunction(FleetFunctionSpec spec) {
  if (spec.name.empty()) {
    return InvalidArgumentError("deployment name must be non-empty");
  }
  if (spec.profile == nullptr || spec.policy == nullptr) {
    return InvalidArgumentError("deployment '" + spec.name +
                                "' needs a profile and a policy");
  }
  if (spec.requests == 0) {
    return InvalidArgumentError("deployment '" + spec.name +
                                "' needs a positive request count");
  }
  for (const FleetFunctionSpec& existing : functions_) {
    if (existing.name == spec.name) {
      return AlreadyExistsError("deployment '" + spec.name + "' already in fleet");
    }
  }
  functions_.push_back(std::move(spec));
  return OkStatus();
}

Result<ClusterReport> FleetSimulation::RunShard(
    const FleetFunctionSpec& spec, const SimOptions& base_options) const {
  // All shard randomness keys off (fleet seed, deployment name) — never off
  // the thread or shard index — so results are schedule-independent.
  const uint64_t function_seed = FunctionSeed(options_.seed, spec.name);
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<EvictionModel> eviction,
                             options_.eviction.Instantiate(function_seed));
  // The shard inherits the fleet's options wholesale (including the obs sink,
  // which is thread-safe) and overrides only its own identity and topology.
  SimOptions cluster_options = base_options;
  cluster_options.seed = function_seed;
  cluster_options.worker_slots = spec.worker_slots;
  cluster_options.exploring_slots = spec.exploring_slots;
  ClusterSimulation cluster(*spec.profile, registry_, *spec.policy, *eviction,
                            cluster_options);
  return cluster.RunClosedLoop(spec.requests);
}

uint64_t FleetSimulation::Fingerprint() const {
  SimFingerprint fingerprint;
  fingerprint.seed = options_.seed;
  fingerprint.topology = 2;  // SimTopology::kFleet.
  for (const FleetFunctionSpec& spec : functions_) {
    fingerprint.AddFunction(spec.name, spec.requests, spec.worker_slots,
                            spec.exploring_slots);
  }
  fingerprint.AddOptions(options_);
  return fingerprint.value();
}

Result<FleetReport> FleetSimulation::Run() const {
  if (functions_.empty()) {
    return FailedPreconditionError("fleet has no deployments");
  }

  // Service mode: all shard environments are clients of one shared live
  // service for the whole run (each deployment still evolves independently —
  // its requests are serialized on its service shard and issued from one
  // client task, so the canonical merge stays schedule-independent).
  SimOptions base_options = options_;
  std::unique_ptr<OrchestratorService> shared_service;
  if (options_.service.enabled && options_.service.instance == nullptr) {
    ServiceConfig config;
    config.shards = options_.service.shards;
    config.queue_capacity = options_.service.queue_capacity;
    config.max_batch = options_.service.max_batch;
    config.flush_interval = options_.service.flush_interval;
    config.journal_dir = options_.service.journal_dir;
    config.shed_deadline_ms = options_.service.shed_deadline_ms;
    config.faults = options_.faults.service;
    config.obs = options_.obs;
    shared_service = std::make_unique<OrchestratorService>(config);
    base_options.service.instance = shared_service.get();
  }

  // The streaming fold: shards merge into the accumulator the moment they
  // complete, in completion order — the digest and every aggregate are
  // order-insensitive by construction, so nothing here depends on the
  // schedule. Peak memory is O(shards in flight + retained-K), never
  // O(functions x requests).
  StreamingAccumulator accumulator(options_.retention);

  // Resume: load the newest valid checkpoint and skip what it covers.
  const SimCheckpointOptions& ckpt_options = options_.sim_checkpoint;
  if (ckpt_options.enabled() && ckpt_options.resume) {
    auto payload = ReadSimCheckpointFile(FleetCheckpointer::FilePath(ckpt_options.dir),
                                         Fingerprint());
    if (payload.ok()) {
      ByteReader reader(*payload);
      PRONGHORN_RETURN_IF_ERROR(accumulator.RestoreState(reader));
      if (!reader.AtEnd()) {
        return DataLossError("trailing bytes after checkpointed accumulator state");
      }
    } else if (payload.status().code() != StatusCode::kNotFound) {
      // A corrupt or mismatched checkpoint must fail loudly, not silently
      // restart the experiment from scratch.
      return payload.status();
    }
  }
  std::optional<FleetCheckpointer> checkpointer;
  if (ckpt_options.enabled()) {
    checkpointer.emplace(ckpt_options, Fingerprint(), accumulator);
  }

  // Sharded execution. One task per deployment; the pool's work-stealing
  // balances wildly uneven shard runtimes. Failures are recorded per slot
  // (tiny — one optional Status per deployment) and reported canonically.
  // Each slot sits on its own cache line so concurrent shard completions
  // never false-share a line (adjacent optional<Status> writes would
  // otherwise ping-pong the line between cores).
  struct alignas(kCacheLineBytes) ShardSlot {
    std::optional<Status> failure;
  };
  std::vector<ShardSlot> slots(functions_.size());
  const auto run_one = [&](size_t i) {
    const FleetFunctionSpec& spec = functions_[i];
    if (accumulator.Contains(spec.name)) {
      return;  // Covered by the resumed checkpoint.
    }
    Result<ClusterReport> shard = RunShard(spec, base_options);
    if (!shard.ok()) {
      slots[i].failure = shard.status();
      return;
    }
    accumulator.Fold(spec.name, *std::move(shard));
    if (checkpointer.has_value()) {
      checkpointer->OnFold();
    }
  };
  // --threads is a parallelism cap, not a demand: shards are CPU-bound, so
  // workers beyond the hardware thread count only add context switches and
  // cache thrash (the old code ran 4 threads ~25% slower than 1 on a
  // single-core host). The caller-assist ParallelFor makes the calling
  // thread one of the execution streams, so `workers` counts it.
  const uint32_t workers = ThreadPool::EffectiveParallelism(options_.threads);
  if (workers <= 1 || functions_.size() == 1) {
    for (size_t i = 0; i < functions_.size(); ++i) {
      run_one(i);
    }
  } else {
    ThreadPoolOptions pool_options;
    pool_options.threads = workers - 1;  // The calling thread participates.
    pool_options.pin_threads = options_.pin_threads;
    ThreadPool pool(pool_options);
    pool.ParallelFor(functions_.size(), run_one);
  }

  // Canonical error report: the first failure in deployment-name order,
  // whatever order the shards actually failed in.
  std::vector<size_t> order(functions_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return functions_[a].name < functions_[b].name;
  });
  for (const size_t index : order) {
    if (slots[index].failure.has_value()) {
      // Persist progress first: the failed deployment can be retried with
      // --resume without re-running its finished peers.
      if (checkpointer.has_value()) {
        (void)checkpointer->Finish();
      }
      return Status(slots[index].failure->code(),
                    "deployment '" + functions_[index].name +
                        "': " + slots[index].failure->message());
    }
  }

  if (checkpointer.has_value()) {
    PRONGHORN_RETURN_IF_ERROR(checkpointer->Finish());
  }

  // Final assembly from the accumulator, in canonical (name) order. Under
  // keep-all retention this reproduces the historical collect-then-merge
  // FleetReport bit-for-bit.
  StreamingAccumulator::Merged merged = accumulator.Take();
  FleetReport fleet;
  static_cast<ReportCore&>(fleet) = merged.core;
  fleet.worker_lifetimes = merged.worker_lifetimes;
  fleet.checkpoints = merged.checkpoints;
  fleet.restores = merged.restores;
  fleet.cold_starts = merged.cold_starts;
  fleet.retention = merged.retention;
  fleet.functions_total = merged.functions_total;
  fleet.invocations_total = merged.invocations_total;
  fleet.latency_hist = merged.latency_hist;
  fleet.streaming_digest = merged.digest;
  fleet.per_function.reserve(merged.retained.size());
  for (auto& [name, report] : merged.retained) {
    if (merged.retention == ReportRetention::kAll) {
      for (const RequestRecord& record : report.records) {
        fleet.fleet_latency.Add(static_cast<double>(record.latency.ToMicros()));
      }
    }
    fleet.per_function.push_back(FleetFunctionResult{name, std::move(report)});
  }
  return fleet;
}

}  // namespace pronghorn
