#include "src/trace/trace_file.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace pronghorn {

Status InvocationTrace::Append(TraceRecord record) {
  if (record.function.empty()) {
    return InvalidArgumentError("trace record needs a function name");
  }
  if (record.function.find(',') != std::string::npos ||
      record.function.find('\n') != std::string::npos) {
    return InvalidArgumentError("function name must not contain ',' or newline");
  }
  if (!records_.empty() && record.arrival < records_.back().arrival) {
    return FailedPreconditionError("trace records must be appended in arrival order");
  }
  records_.push_back(std::move(record));
  return OkStatus();
}

std::vector<TimePoint> InvocationTrace::ArrivalsFor(std::string_view function) const {
  std::vector<TimePoint> arrivals;
  for (const TraceRecord& record : records_) {
    if (record.function == function) {
      arrivals.push_back(record.arrival);
    }
  }
  return arrivals;
}

std::vector<std::string> InvocationTrace::Functions() const {
  std::vector<std::string> names;
  for (const TraceRecord& record : records_) {
    bool seen = false;
    for (const std::string& name : names) {
      if (name == record.function) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      names.push_back(record.function);
    }
  }
  return names;
}

std::string InvocationTrace::ToCsv() const {
  std::string out = "function,arrival_us\n";
  for (const TraceRecord& record : records_) {
    out += record.function;
    out += ',';
    out += std::to_string(record.arrival.ToMicros());
    out += '\n';
  }
  return out;
}

Result<InvocationTrace> InvocationTrace::FromCsv(std::string_view csv) {
  InvocationTrace trace;
  size_t pos = 0;
  size_t line_number = 0;
  while (pos < csv.size()) {
    size_t end = csv.find('\n', pos);
    if (end == std::string_view::npos) {
      end = csv.size();
    }
    const std::string_view line = csv.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line_number == 1) {
      if (line != "function,arrival_us") {
        return DataLossError("bad trace CSV header: '" + std::string(line) + "'");
      }
      continue;
    }
    const size_t comma = line.rfind(',');
    if (comma == std::string_view::npos || comma == 0) {
      return DataLossError("malformed trace CSV line " + std::to_string(line_number));
    }
    TraceRecord record;
    record.function = std::string(line.substr(0, comma));
    const std::string_view number = line.substr(comma + 1);
    int64_t arrival_us = 0;
    const auto [ptr, ec] =
        std::from_chars(number.data(), number.data() + number.size(), arrival_us);
    if (ec != std::errc() || ptr != number.data() + number.size()) {
      return DataLossError("bad arrival time on trace CSV line " +
                           std::to_string(line_number));
    }
    record.arrival = TimePoint::FromMicros(arrival_us);
    PRONGHORN_RETURN_IF_ERROR(trace.Append(std::move(record)));
  }
  return trace;
}

Status InvocationTrace::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << ToCsv();
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

Result<InvocationTrace> InvocationTrace::ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open trace file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromCsv(buffer.str());
}

}  // namespace pronghorn
