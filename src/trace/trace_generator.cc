#include "src/trace/trace_generator.h"

#include <algorithm>
#include <utility>

namespace pronghorn {

TraceGenerator::TraceGenerator(const AzureTraceModel& model, uint64_t seed)
    : model_(model), rng_(HashCombine(seed, 0x7247ULL)) {}

Result<std::vector<TimePoint>> TraceGenerator::GenerateWindow(double percentile,
                                                              Duration window) {
  PRONGHORN_ASSIGN_OR_RETURN(double daily,
                             model_.DailyInvocationsAtPercentile(percentile));
  const double rate_per_second = daily / 86400.0;
  if (rate_per_second <= 0.0) {
    return std::vector<TimePoint>{};
  }

  std::vector<TimePoint> arrivals;
  double t_seconds = 0.0;
  const double horizon = window.ToSeconds();
  while (true) {
    // Exponential gap modulated by a lognormal burstiness factor: clusters
    // of near-simultaneous invocations separated by long quiet stretches,
    // as the Azure characterization reports.
    const double modulation =
        model_.params().burstiness > 0.0
            ? rng_.LogNormal(0.0, model_.params().burstiness)
            : 1.0;
    t_seconds += rng_.Exponential(rate_per_second) * modulation;
    if (t_seconds >= horizon) {
      break;
    }
    arrivals.push_back(TimePoint::FromMicros(static_cast<int64_t>(t_seconds * 1e6)));
  }
  return arrivals;
}

Result<InvocationTrace> TraceGenerator::GenerateTrace(
    const std::vector<std::pair<std::string, double>>& functions, Duration window) {
  std::vector<TraceRecord> merged;
  for (const auto& [name, percentile] : functions) {
    PRONGHORN_ASSIGN_OR_RETURN(std::vector<TimePoint> arrivals,
                               GenerateWindow(percentile, window));
    for (TimePoint arrival : arrivals) {
      merged.push_back(TraceRecord{name, arrival});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  InvocationTrace trace;
  for (TraceRecord& record : merged) {
    PRONGHORN_RETURN_IF_ERROR(trace.Append(std::move(record)));
  }
  return trace;
}

}  // namespace pronghorn
