#include "src/trace/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pronghorn {

TraceGenerator::TraceGenerator(const AzureTraceModel& model, uint64_t seed)
    : model_(model), rng_(HashCombine(seed, 0x7247ULL)) {}

Result<std::vector<TimePoint>> TraceGenerator::GenerateWindow(double percentile,
                                                              Duration window) {
  PRONGHORN_ASSIGN_OR_RETURN(double daily,
                             model_.DailyInvocationsAtPercentile(percentile));
  const double rate_per_second = daily / 86400.0;
  if (rate_per_second <= 0.0) {
    return std::vector<TimePoint>{};
  }

  std::vector<TimePoint> arrivals;
  double t_seconds = 0.0;
  const double horizon = window.ToSeconds();
  while (true) {
    // Exponential gap modulated by a lognormal burstiness factor: clusters
    // of near-simultaneous invocations separated by long quiet stretches,
    // as the Azure characterization reports.
    const double modulation =
        model_.params().burstiness > 0.0
            ? rng_.LogNormal(0.0, model_.params().burstiness)
            : 1.0;
    t_seconds += rng_.Exponential(rate_per_second) * modulation;
    if (t_seconds >= horizon) {
      break;
    }
    arrivals.push_back(TimePoint::FromMicros(static_cast<int64_t>(t_seconds * 1e6)));
  }
  return arrivals;
}

Result<InvocationTrace> TraceGenerator::GenerateTrace(
    const std::vector<std::pair<std::string, double>>& functions, Duration window) {
  std::vector<TraceRecord> merged;
  for (const auto& [name, percentile] : functions) {
    PRONGHORN_ASSIGN_OR_RETURN(std::vector<TimePoint> arrivals,
                               GenerateWindow(percentile, window));
    for (TimePoint arrival : arrivals) {
      merged.push_back(TraceRecord{name, arrival});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.arrival < b.arrival;
                   });
  InvocationTrace trace;
  for (TraceRecord& record : merged) {
    PRONGHORN_RETURN_IF_ERROR(trace.Append(std::move(record)));
  }
  return trace;
}

ArrivalStream::ArrivalStream(const AzureTraceModel& model,
                             const FunctionArrivalSpec& spec, uint64_t seed,
                             Duration window)
    : spec_(spec),
      burstiness_(spec.burstiness),
      horizon_seconds_(window.ToSeconds()),
      rng_(HashCombine(seed, 0x7353ULL)) {
  Result<double> daily = model.DailyInvocationsAtPercentile(spec.percentile);
  if (!daily.ok() || *daily <= 0.0) {
    exhausted_ = true;
    return;
  }
  base_rate_per_second_ = *daily / 86400.0;
  // Clamp the amplitude below 1 so the modulated rate never goes negative
  // and the thinning envelope stays finite.
  const double amplitude =
      std::min(std::max(spec.diurnal_amplitude, 0.0), 0.999);
  spec_.diurnal_amplitude = amplitude;
  peak_rate_per_second_ = base_rate_per_second_ * (1.0 + amplitude);
}

std::optional<TimePoint> ArrivalStream::Next() {
  if (exhausted_) {
    return std::nullopt;
  }
  while (true) {
    // Exponential gap at the PEAK rate, modulated by the lognormal
    // burstiness factor — same draw order as GenerateWindow, so a flat
    // (amplitude-0) stream is the classic bursty-Poisson process.
    const double modulation =
        burstiness_ > 0.0 ? rng_.LogNormal(0.0, burstiness_) : 1.0;
    t_seconds_ += rng_.Exponential(peak_rate_per_second_) * modulation;
    if (t_seconds_ >= horizon_seconds_) {
      exhausted_ = true;
      return std::nullopt;
    }
    if (spec_.diurnal_amplitude > 0.0) {
      // Lewis–Shedler: keep this candidate with probability
      // rate(t)/peak_rate, where rate(t) swings sinusoidally over a day.
      const double phase = 2.0 * 3.14159265358979323846 *
                           (t_seconds_ + spec_.diurnal_phase_s) / 86400.0;
      const double rate = base_rate_per_second_ *
                          (1.0 + spec_.diurnal_amplitude * std::sin(phase));
      if (!rng_.Bernoulli(std::max(rate, 0.0) / peak_rate_per_second_)) {
        continue;  // Thinned out; advance from the candidate's time.
      }
    }
    ++emitted_;
    return TimePoint::FromMicros(static_cast<int64_t>(t_seconds_ * 1e6));
  }
}

FleetArrivalStream::FleetArrivalStream(const AzureTraceModel& model,
                                       std::span<const FunctionArrivalSpec> specs,
                                       uint64_t seed, Duration window) {
  streams_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    streams_.emplace_back(model, specs[i],
                          HashCombine(HashCombine(seed, 0x666cULL), i), window);
    if (std::optional<TimePoint> first = streams_.back().Next();
        first.has_value()) {
      heap_.push(Pending{first->ToMicros(), static_cast<uint32_t>(i)});
    }
  }
}

std::optional<FleetArrival> FleetArrivalStream::Next() {
  if (heap_.empty()) {
    return std::nullopt;
  }
  const Pending head = heap_.top();
  heap_.pop();
  if (std::optional<TimePoint> next = streams_[head.function_index].Next();
      next.has_value()) {
    heap_.push(Pending{next->ToMicros(), head.function_index});
  }
  ++emitted_;
  return FleetArrival{head.function_index,
                      TimePoint::FromMicros(head.arrival_micros)};
}

}  // namespace pronghorn
