#include "src/trace/azure_model.h"

#include <cmath>

#include "src/common/mathutil.h"

namespace pronghorn {

AzureTraceModel::AzureTraceModel(AzureTraceModelParams params) : params_(params) {}

Result<double> AzureTraceModel::DailyInvocationsAtPercentile(double percentile) const {
  if (percentile <= 0.0 || percentile >= 100.0) {
    return InvalidArgumentError("percentile must be in (0, 100)");
  }
  const double z = NormalQuantile(percentile / 100.0);
  return std::pow(10.0, params_.log10_daily_mu + params_.log10_daily_sigma * z);
}

Result<double> AzureTraceModel::ExpectedArrivalsInWindow(double percentile,
                                                         Duration window) const {
  PRONGHORN_ASSIGN_OR_RETURN(double daily, DailyInvocationsAtPercentile(percentile));
  return daily * window.ToSeconds() / 86400.0;
}

}  // namespace pronghorn
