#include "src/trace/azure_model.h"

#include <cmath>

#include "src/common/mathutil.h"

namespace pronghorn {

AzureTraceModel::AzureTraceModel(AzureTraceModelParams params) : params_(params) {}

Result<double> AzureTraceModel::DailyInvocationsAtPercentile(double percentile) const {
  if (percentile <= 0.0 || percentile >= 100.0) {
    return InvalidArgumentError("percentile must be in (0, 100)");
  }
  const double z = NormalQuantile(percentile / 100.0);
  return std::pow(10.0, params_.log10_daily_mu + params_.log10_daily_sigma * z);
}

Result<double> AzureTraceModel::ExpectedArrivalsInWindow(double percentile,
                                                         Duration window) const {
  PRONGHORN_ASSIGN_OR_RETURN(double daily, DailyInvocationsAtPercentile(percentile));
  return daily * window.ToSeconds() / 86400.0;
}

std::string_view ArrivalMixName(ArrivalMix mix) {
  switch (mix) {
    case ArrivalMix::kSteady:
      return "steady";
    case ArrivalMix::kDiurnal:
      return "diurnal";
    case ArrivalMix::kBursty:
      return "bursty";
    case ArrivalMix::kMultiTenant:
      return "multi-tenant";
  }
  return "steady";
}

Result<ArrivalMix> ParseArrivalMix(std::string_view text) {
  if (text == "steady") {
    return ArrivalMix::kSteady;
  }
  if (text == "diurnal") {
    return ArrivalMix::kDiurnal;
  }
  if (text == "bursty") {
    return ArrivalMix::kBursty;
  }
  if (text == "multi-tenant" || text == "multitenant") {
    return ArrivalMix::kMultiTenant;
  }
  return InvalidArgumentError("unknown arrival mix '" + std::string(text) +
                              "' (want steady|diurnal|bursty|multi-tenant)");
}

FunctionArrivalSpec ArrivalSpecFor(ArrivalMix mix, uint64_t seed, uint64_t index,
                                   uint64_t n) {
  // Everything below is a pure function of (mix, seed, index, n): the
  // stratified popularity rank comes from the index, the per-function jitter
  // from an index-keyed substream.
  Rng rng(HashCombine(HashCombine(seed, 0x6d78ULL), index));
  const double rank =
      n <= 1 ? 0.5 : (static_cast<double>(index) + 0.5) / static_cast<double>(n);
  FunctionArrivalSpec spec;
  switch (mix) {
    case ArrivalMix::kSteady:
      spec.percentile = 20.0 + 60.0 * rank;
      spec.burstiness = 0.4;
      break;
    case ArrivalMix::kDiurnal:
      spec.percentile = 20.0 + 60.0 * rank;
      spec.burstiness = 0.4;
      spec.diurnal_amplitude = rng.UniformDouble(0.5, 0.9);
      spec.diurnal_phase_s = rng.UniformDouble(0.0, 86400.0);
      break;
    case ArrivalMix::kBursty:
      spec.percentile = 20.0 + 60.0 * rank;
      spec.burstiness = rng.UniformDouble(1.2, 1.8);
      break;
    case ArrivalMix::kMultiTenant:
      // One function in ten is a heavy tenant near the top of the popularity
      // distribution; the rest form the long quiet tail, half of it diurnal.
      if (index % 10 == 0) {
        spec.percentile = rng.UniformDouble(90.0, 99.0);
      } else {
        spec.percentile = rng.UniformDouble(5.0, 50.0);
      }
      spec.burstiness = rng.UniformDouble(0.3, 0.8);
      spec.diurnal_amplitude = rng.Bernoulli(0.5) ? 0.4 : 0.0;
      spec.diurnal_phase_s = rng.UniformDouble(0.0, 86400.0);
      break;
  }
  return spec;
}

}  // namespace pronghorn
