// Synthetic trace generation from the Azure model.

#ifndef PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_
#define PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/azure_model.h"
#include "src/trace/trace_file.h"

namespace pronghorn {

class TraceGenerator {
 public:
  TraceGenerator(const AzureTraceModel& model, uint64_t seed);

  // Arrival times of one function sampled at the given popularity percentile
  // over [0, window): bursty-Poisson arrivals at the percentile's mean rate.
  // May legitimately return an empty vector for unpopular functions (the
  // paper's "pathological" MST window had only 3 requests).
  Result<std::vector<TimePoint>> GenerateWindow(double percentile, Duration window);

  // Full multi-function trace: one window per (function, percentile) pair,
  // merged into arrival order.
  Result<InvocationTrace> GenerateTrace(
      const std::vector<std::pair<std::string, double>>& functions, Duration window);

 private:
  const AzureTraceModel& model_;
  Rng rng_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_
