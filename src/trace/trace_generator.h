// Synthetic trace generation from the Azure model.

#ifndef PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_
#define PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/azure_model.h"
#include "src/trace/trace_file.h"

namespace pronghorn {

class TraceGenerator {
 public:
  TraceGenerator(const AzureTraceModel& model, uint64_t seed);

  // Arrival times of one function sampled at the given popularity percentile
  // over [0, window): bursty-Poisson arrivals at the percentile's mean rate.
  // May legitimately return an empty vector for unpopular functions (the
  // paper's "pathological" MST window had only 3 requests).
  Result<std::vector<TimePoint>> GenerateWindow(double percentile, Duration window);

  // Full multi-function trace: one window per (function, percentile) pair,
  // merged into arrival order.
  Result<InvocationTrace> GenerateTrace(
      const std::vector<std::pair<std::string, double>>& functions, Duration window);

 private:
  const AzureTraceModel& model_;
  Rng rng_;
};

// Pull-based arrival generator for ONE function: the same bursty-Poisson
// process GenerateWindow draws, produced one arrival at a time with O(1)
// state, plus optional diurnal rate modulation via Lewis–Shedler thinning
// (a non-homogeneous Poisson process sampled at the peak rate, with each
// candidate kept with probability rate(t)/peak — exact, not approximate).
//
// Each stream owns an independent Rng keyed by (seed, its own identity), so
// any subset of a fleet's streams can be generated without generating the
// rest; this is what makes the fleet generator below truly streaming. (The
// substreams differ from TraceGenerator's single shared-Rng sequence, so
// streamed windows are statistically — not byte — equivalent to
// GenerateWindow's.)
class ArrivalStream {
 public:
  // `seed` should already be function-unique (e.g. HashCombine of a fleet
  // seed and the function index).
  ArrivalStream(const AzureTraceModel& model, const FunctionArrivalSpec& spec,
                uint64_t seed, Duration window);

  // The next arrival time in [0, window), or nullopt once exhausted. Invalid
  // percentiles surface as an immediately exhausted stream.
  std::optional<TimePoint> Next();

  uint64_t emitted() const { return emitted_; }

 private:
  FunctionArrivalSpec spec_;
  double burstiness_ = 0.0;
  double peak_rate_per_second_ = 0.0;  // Thinning envelope (= base when flat).
  double base_rate_per_second_ = 0.0;
  double horizon_seconds_ = 0.0;
  double t_seconds_ = 0.0;
  bool exhausted_ = false;
  uint64_t emitted_ = 0;
  Rng rng_;
};

// One fleet arrival: which function (by index into the spec list) and when.
struct FleetArrival {
  uint32_t function_index = 0;
  TimePoint arrival;
};

// Streaming k-way merge of one ArrivalStream per function: emits the whole
// fleet's invocations in global arrival order while holding O(functions)
// state — one pending arrival per stream, never the full invocation list
// (a 50k-function day is tens of millions of arrivals; this never
// materializes them). Ties break by function index, so the sequence is a
// pure function of (specs, seed, window).
class FleetArrivalStream {
 public:
  FleetArrivalStream(const AzureTraceModel& model,
                     std::span<const FunctionArrivalSpec> specs, uint64_t seed,
                     Duration window);

  // The next fleet-wide arrival in time order, or nullopt once every
  // function's window is exhausted.
  std::optional<FleetArrival> Next();

  uint64_t emitted() const { return emitted_; }

 private:
  struct Pending {
    int64_t arrival_micros = 0;
    uint32_t function_index = 0;
    bool operator>(const Pending& other) const {
      return arrival_micros != other.arrival_micros
                 ? arrival_micros > other.arrival_micros
                 : function_index > other.function_index;
    }
  };

  std::vector<ArrivalStream> streams_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> heap_;
  uint64_t emitted_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_TRACE_TRACE_GENERATOR_H_
