// Statistical model of the Azure Functions production traces.
//
// The paper's trace analysis (Figure 6) samples functions by popularity
// percentile (invocations per day) from the Shahrad et al. [58]
// characterization and replays all invocations of one function over a
// fifteen-minute window. The actual trace files are proprietary-scale data we
// do not have; this model regenerates statistically equivalent windows: the
// per-function daily invocation count distribution is heavy-tailed
// (log-normal across functions), and arrivals within a window are Poisson
// with optional burstiness.

#ifndef PRONGHORN_SRC_TRACE_AZURE_MODEL_H_
#define PRONGHORN_SRC_TRACE_AZURE_MODEL_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace pronghorn {

struct AzureTraceModelParams {
  // log10 of daily invocations across functions is ~ Normal(mu, sigma).
  // Defaults put the median function at ~316 invocations/day (≈3 per 15 min,
  // matching the paper's observation for its 50th-percentile sample).
  double log10_daily_mu = 2.5;
  double log10_daily_sigma = 1.5;
  // Short-timescale burstiness: arrival gaps are exponential scaled by a
  // lognormal(0, burstiness) modulation factor redrawn per gap.
  double burstiness = 0.4;
};

class AzureTraceModel {
 public:
  explicit AzureTraceModel(AzureTraceModelParams params = AzureTraceModelParams{});

  // Expected invocations/day for a function at the given popularity
  // percentile (0 < percentile < 100).
  Result<double> DailyInvocationsAtPercentile(double percentile) const;

  // Mean arrivals expected in `window` at the given percentile.
  Result<double> ExpectedArrivalsInWindow(double percentile, Duration window) const;

  const AzureTraceModelParams& params() const { return params_; }

 private:
  AzureTraceModelParams params_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_TRACE_AZURE_MODEL_H_
