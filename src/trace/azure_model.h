// Statistical model of the Azure Functions production traces.
//
// The paper's trace analysis (Figure 6) samples functions by popularity
// percentile (invocations per day) from the Shahrad et al. [58]
// characterization and replays all invocations of one function over a
// fifteen-minute window. The actual trace files are proprietary-scale data we
// do not have; this model regenerates statistically equivalent windows: the
// per-function daily invocation count distribution is heavy-tailed
// (log-normal across functions), and arrivals within a window are Poisson
// with optional burstiness.

#ifndef PRONGHORN_SRC_TRACE_AZURE_MODEL_H_
#define PRONGHORN_SRC_TRACE_AZURE_MODEL_H_

#include <cstdint>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"

namespace pronghorn {

struct AzureTraceModelParams {
  // log10 of daily invocations across functions is ~ Normal(mu, sigma).
  // Defaults put the median function at ~316 invocations/day (≈3 per 15 min,
  // matching the paper's observation for its 50th-percentile sample).
  double log10_daily_mu = 2.5;
  double log10_daily_sigma = 1.5;
  // Short-timescale burstiness: arrival gaps are exponential scaled by a
  // lognormal(0, burstiness) modulation factor redrawn per gap.
  double burstiness = 0.4;
};

class AzureTraceModel {
 public:
  explicit AzureTraceModel(AzureTraceModelParams params = AzureTraceModelParams{});

  // Expected invocations/day for a function at the given popularity
  // percentile (0 < percentile < 100).
  Result<double> DailyInvocationsAtPercentile(double percentile) const;

  // Mean arrivals expected in `window` at the given percentile.
  Result<double> ExpectedArrivalsInWindow(double percentile, Duration window) const;

  const AzureTraceModelParams& params() const { return params_; }

 private:
  AzureTraceModelParams params_;
};

// Fleet arrival-mix presets: how a generated fleet's functions modulate
// their Poisson arrival processes. The Azure characterization reports all
// four regimes coexisting in production; a preset picks which one a
// synthetic fleet leans into.
enum class ArrivalMix : uint8_t {
  kSteady = 0,       // Homogeneous bursty-Poisson (the historical default).
  kDiurnal = 1,      // Sinusoidal day/night rate swing, phase-staggered.
  kBursty = 2,       // Heavy lognormal gap modulation: clustered arrivals.
  kMultiTenant = 3,  // Popularity spread wide open: a few heavy tenants
                     // dominate a long quiet tail, with mixed diurnality.
};

// "steady" / "diurnal" / "bursty" / "multi-tenant".
std::string_view ArrivalMixName(ArrivalMix mix);
Result<ArrivalMix> ParseArrivalMix(std::string_view text);

// Per-function arrival-process parameters drawn from a mix preset.
struct FunctionArrivalSpec {
  double percentile = 50.0;        // Popularity percentile in (0, 100).
  double burstiness = 0.4;         // Lognormal gap-modulation sigma.
  double diurnal_amplitude = 0.0;  // Relative rate swing, in [0, 1).
  double diurnal_phase_s = 0.0;    // Offset of the rate peak, seconds.
};

// The spec for function `index` of a fleet of `n` under `mix` — a pure
// function of its arguments (no RNG state), so any subset of a fleet can be
// generated independently and deterministically.
FunctionArrivalSpec ArrivalSpecFor(ArrivalMix mix, uint64_t seed, uint64_t index,
                                   uint64_t n);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_TRACE_AZURE_MODEL_H_
