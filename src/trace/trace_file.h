// Invocation trace records and CSV persistence.
//
// Format (one invocation per line, header required):
//   function,arrival_us
//   MST,1250000
//   MST,3417221

#ifndef PRONGHORN_SRC_TRACE_TRACE_FILE_H_
#define PRONGHORN_SRC_TRACE_TRACE_FILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"

namespace pronghorn {

struct TraceRecord {
  std::string function;
  TimePoint arrival;

  bool operator==(const TraceRecord&) const = default;
};

// A trace: invocation records sorted by arrival time.
class InvocationTrace {
 public:
  InvocationTrace() = default;

  // Records must be appended in non-decreasing arrival order.
  Status Append(TraceRecord record);

  const std::vector<TraceRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  // Arrival times of all records for `function`.
  std::vector<TimePoint> ArrivalsFor(std::string_view function) const;
  // Distinct function names, in first-appearance order.
  std::vector<std::string> Functions() const;

  // CSV round trip.
  Status WriteCsv(const std::string& path) const;
  static Result<InvocationTrace> ReadCsv(const std::string& path);
  // In-memory CSV (for tests and piping).
  std::string ToCsv() const;
  static Result<InvocationTrace> FromCsv(std::string_view csv);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_TRACE_TRACE_FILE_H_
