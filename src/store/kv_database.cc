#include "src/store/kv_database.h"

#include "src/common/bytes.h"

namespace pronghorn {

Status InMemoryKvDatabase::Put(std::string_view key, std::vector<uint8_t> value) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  accounting_.writes += 1;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(std::string(key), VersionedValue{std::move(value), 1});
  } else {
    it->second.value = std::move(value);
    it->second.version += 1;
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> InMemoryKvDatabase::Get(std::string_view key) {
  PRONGHORN_ASSIGN_OR_RETURN(VersionedValue versioned, GetVersioned(key));
  return std::move(versioned.value);
}

Result<VersionedValue> InMemoryKvDatabase::GetVersioned(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  accounting_.reads += 1;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("no database entry for '" + std::string(key) + "'");
  }
  return it->second;
}

Status InMemoryKvDatabase::CompareAndSwap(std::string_view key,
                                          uint64_t expected_version,
                                          std::vector<uint8_t> value) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  accounting_.cas_attempts += 1;
  auto it = entries_.find(key);
  const uint64_t current_version = it == entries_.end() ? 0 : it->second.version;
  if (current_version != expected_version) {
    accounting_.cas_conflicts += 1;
    return AbortedError("version mismatch for '" + std::string(key) + "': expected " +
                        std::to_string(expected_version) + ", found " +
                        std::to_string(current_version));
  }
  if (it == entries_.end()) {
    entries_.emplace(std::string(key), VersionedValue{std::move(value), 1});
  } else {
    it->second.value = std::move(value);
    it->second.version += 1;
  }
  return OkStatus();
}

Status InMemoryKvDatabase::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  accounting_.writes += 1;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("no database entry for '" + std::string(key) + "'");
  }
  entries_.erase(it);
  return OkStatus();
}

Result<int64_t> InMemoryKvDatabase::Increment(std::string_view key) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  accounting_.writes += 1;
  auto it = entries_.find(key);
  int64_t current = 0;
  if (it != entries_.end()) {
    ByteReader reader(it->second.value);
    PRONGHORN_ASSIGN_OR_RETURN(current, reader.ReadInt64());
  }
  const int64_t next = current + 1;
  ByteWriter writer;
  writer.WriteInt64(next);
  if (it == entries_.end()) {
    entries_.emplace(std::string(key), VersionedValue{writer.TakeData(), 1});
  } else {
    it->second.value = writer.TakeData();
    it->second.version += 1;
  }
  return next;
}

std::vector<std::string> InMemoryKvDatabase::ListKeys(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (const auto& [key, value] : entries_) {
    if (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      keys.push_back(key);
    }
  }
  return keys;
}

KvAccounting InMemoryKvDatabase::accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

}  // namespace pronghorn
