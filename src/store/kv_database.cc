#include "src/store/kv_database.h"

#include <algorithm>

#include "src/common/bytes.h"

namespace pronghorn {

// Counter updates mirror the historical single-mutex version exactly,
// including its quirks: reads/writes count even when the operation then
// fails with kNotFound, and cas_attempts counts conflicted attempts.

Status InMemoryKvDatabase::Put(std::string_view key, std::vector<uint8_t> value) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    stripe.entries.emplace(std::string(key), VersionedValue{std::move(value), 1});
  } else {
    it->second.value = std::move(value);
    it->second.version += 1;
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> InMemoryKvDatabase::Get(std::string_view key) {
  PRONGHORN_ASSIGN_OR_RETURN(VersionedValue versioned, GetVersioned(key));
  return std::move(versioned.value);
}

Result<VersionedValue> InMemoryKvDatabase::GetVersioned(std::string_view key) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    return NotFoundError("no database entry for '" + std::string(key) + "'");
  }
  return it->second;
}

Status InMemoryKvDatabase::CompareAndSwap(std::string_view key,
                                          uint64_t expected_version,
                                          std::vector<uint8_t> value) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  cas_attempts_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  const uint64_t current_version = it == stripe.entries.end() ? 0 : it->second.version;
  if (current_version != expected_version) {
    cas_conflicts_.fetch_add(1, std::memory_order_relaxed);
    return AbortedError("version mismatch for '" + std::string(key) + "': expected " +
                        std::to_string(expected_version) + ", found " +
                        std::to_string(current_version));
  }
  if (it == stripe.entries.end()) {
    stripe.entries.emplace(std::string(key), VersionedValue{std::move(value), 1});
  } else {
    it->second.value = std::move(value);
    it->second.version += 1;
  }
  return OkStatus();
}

Status InMemoryKvDatabase::Delete(std::string_view key) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  if (it == stripe.entries.end()) {
    return NotFoundError("no database entry for '" + std::string(key) + "'");
  }
  stripe.entries.erase(it);
  return OkStatus();
}

Result<int64_t> InMemoryKvDatabase::Increment(std::string_view key) {
  if (key.empty()) {
    return InvalidArgumentError("database key must be non-empty");
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.entries.find(key);
  int64_t current = 0;
  if (it != stripe.entries.end()) {
    ByteReader reader(it->second.value);
    PRONGHORN_ASSIGN_OR_RETURN(current, reader.ReadInt64());
  }
  const int64_t next = current + 1;
  ByteWriter writer;
  writer.WriteInt64(next);
  if (it == stripe.entries.end()) {
    stripe.entries.emplace(std::string(key), VersionedValue{writer.TakeData(), 1});
  } else {
    it->second.value = writer.TakeData();
    it->second.version += 1;
  }
  return next;
}

std::vector<std::string> InMemoryKvDatabase::ListKeys(std::string_view prefix) const {
  // Gather per stripe, then sort once: the old std::map returned keys in
  // lexicographic order and recovery scans rely on it.
  std::vector<std::string> keys;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [key, value] : stripe.entries) {
      if (key.size() >= prefix.size() &&
          key.compare(0, prefix.size(), prefix) == 0) {
        keys.push_back(key);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

KvAccounting InMemoryKvDatabase::accounting() const {
  KvAccounting out;
  out.reads = reads_.load(std::memory_order_relaxed);
  out.writes = writes_.load(std::memory_order_relaxed);
  out.cas_attempts = cas_attempts_.load(std::memory_order_relaxed);
  out.cas_conflicts = cas_conflicts_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace pronghorn
