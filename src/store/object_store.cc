#include "src/store/object_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/bytes.h"

namespace pronghorn {

const std::vector<uint8_t>& ObjectBlob::bytes() const {
  static const std::vector<uint8_t> kEmpty;
  return data == nullptr ? kEmpty : *data;
}

namespace {

void AccountPut(StoreAccounting& acc, uint64_t old_logical, uint64_t new_logical) {
  acc.logical_bytes_stored -= old_logical;
  acc.logical_bytes_stored += new_logical;
  acc.peak_logical_bytes = std::max(acc.peak_logical_bytes, acc.logical_bytes_stored);
  acc.network_bytes_uploaded += new_logical;
  acc.put_count += 1;
}

// A flat store's physical footprint is exactly the encoded payload it holds:
// no chunk sharing, so the flat and physical views coincide.
void AccountPhysicalPut(PhysicalAccounting& phys, uint64_t old_encoded,
                        uint64_t new_encoded) {
  phys.bytes_stored -= old_encoded;
  phys.bytes_stored += new_encoded;
  phys.peak_bytes = std::max(phys.peak_bytes, phys.bytes_stored);
  phys.flat_bytes_stored = phys.bytes_stored;
  phys.peak_flat_bytes = phys.peak_bytes;
}

}  // namespace

Status InMemoryObjectStore::Put(std::string_view key, ObjectBlob blob) {
  if (key.empty()) {
    return InvalidArgumentError("object key must be non-empty");
  }
  const uint64_t new_logical = blob.logical_size;
  const uint64_t new_encoded = blob.bytes().size();
  uint64_t old_logical = 0;
  uint64_t old_encoded = 0;
  {
    Stripe& stripe = stripes_[StripeIndexForKey(key)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.objects.find(key);
    if (it != stripe.objects.end()) {
      old_logical = it->second.logical_size;
      old_encoded = it->second.bytes().size();
      it->second = std::move(blob);
    } else {
      stripe.objects.emplace(std::string(key), std::move(blob));
    }
  }
  AtomicStoreMax(accounting_.peak_logical_bytes,
                 AtomicAddFetch(accounting_.logical_bytes_stored,
                                new_logical - old_logical));
  accounting_.network_bytes_uploaded.fetch_add(new_logical,
                                               std::memory_order_relaxed);
  accounting_.put_count.fetch_add(1, std::memory_order_relaxed);
  AtomicStoreMax(accounting_.physical_peak_bytes,
                 AtomicAddFetch(accounting_.physical_bytes_stored,
                                new_encoded - old_encoded));
  return OkStatus();
}

Result<ObjectBlob> InMemoryObjectStore::Get(std::string_view key) {
  ObjectBlob found;
  {
    Stripe& stripe = stripes_[StripeIndexForKey(key)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.objects.find(key);
    if (it == stripe.objects.end()) {
      return NotFoundError("no object with key '" + std::string(key) + "'");
    }
    found = it->second;  // Shares the stored buffer; no payload copy.
  }
  accounting_.network_bytes_downloaded.fetch_add(found.logical_size,
                                                 std::memory_order_relaxed);
  accounting_.get_count.fetch_add(1, std::memory_order_relaxed);
  accounting_.chunks_fetched.fetch_add(1, std::memory_order_relaxed);
  accounting_.bytes_fetched.fetch_add(found.bytes().size(),
                                      std::memory_order_relaxed);
  return found;
}

Status InMemoryObjectStore::Delete(std::string_view key) {
  uint64_t old_logical = 0;
  uint64_t old_encoded = 0;
  {
    Stripe& stripe = stripes_[StripeIndexForKey(key)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.objects.find(key);
    if (it == stripe.objects.end()) {
      return NotFoundError("no object with key '" + std::string(key) + "'");
    }
    old_logical = it->second.logical_size;
    old_encoded = it->second.bytes().size();
    stripe.objects.erase(it);
  }
  accounting_.logical_bytes_stored.fetch_sub(old_logical,
                                             std::memory_order_relaxed);
  accounting_.delete_count.fetch_add(1, std::memory_order_relaxed);
  accounting_.physical_bytes_stored.fetch_sub(old_encoded,
                                              std::memory_order_relaxed);
  return OkStatus();
}

bool InMemoryObjectStore::Contains(std::string_view key) const {
  const Stripe& stripe = stripes_[StripeIndexForKey(key)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.objects.find(key) != stripe.objects.end();
}

std::vector<std::string> InMemoryObjectStore::ListKeys(std::string_view prefix) const {
  // Gather per stripe, then sort once: the old std::map returned keys in
  // lexicographic order and callers (recovery scans, tests) rely on it.
  std::vector<std::string> keys;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [key, blob] : stripe.objects) {
      if (key.size() >= prefix.size() &&
          key.compare(0, prefix.size(), prefix) == 0) {
        keys.push_back(key);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StoreAccounting InMemoryObjectStore::accounting() const {
  StoreAccounting out;
  out.logical_bytes_stored =
      accounting_.logical_bytes_stored.load(std::memory_order_relaxed);
  out.peak_logical_bytes =
      accounting_.peak_logical_bytes.load(std::memory_order_relaxed);
  out.network_bytes_uploaded =
      accounting_.network_bytes_uploaded.load(std::memory_order_relaxed);
  out.network_bytes_downloaded =
      accounting_.network_bytes_downloaded.load(std::memory_order_relaxed);
  out.put_count = accounting_.put_count.load(std::memory_order_relaxed);
  out.get_count = accounting_.get_count.load(std::memory_order_relaxed);
  out.delete_count = accounting_.delete_count.load(std::memory_order_relaxed);
  // Flat store: the physical view is exactly the encoded payload held.
  out.physical.bytes_stored =
      accounting_.physical_bytes_stored.load(std::memory_order_relaxed);
  out.physical.peak_bytes =
      accounting_.physical_peak_bytes.load(std::memory_order_relaxed);
  out.physical.flat_bytes_stored = out.physical.bytes_stored;
  out.physical.peak_flat_bytes = out.physical.peak_bytes;
  out.physical.chunks_fetched =
      accounting_.chunks_fetched.load(std::memory_order_relaxed);
  out.physical.bytes_fetched =
      accounting_.bytes_fetched.load(std::memory_order_relaxed);
  return out;
}

// --- FileBackedObjectStore --------------------------------------------------

FileBackedObjectStore::FileBackedObjectStore(std::string root_dir)
    : root_dir_(std::move(root_dir)) {}

Result<std::unique_ptr<FileBackedObjectStore>> FileBackedObjectStore::Open(
    std::string root_dir) {
  std::error_code ec;
  std::filesystem::create_directories(root_dir, ec);
  if (ec) {
    return InternalError("cannot create object store root '" + root_dir +
                         "': " + ec.message());
  }
  return std::unique_ptr<FileBackedObjectStore>(
      new FileBackedObjectStore(std::move(root_dir)));
}

std::string FileBackedObjectStore::EscapeKey(std::string_view key) {
  // '/' and '%' are escaped so arbitrary keys map to flat file names.
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (c == '/') {
      out += "%2F";
    } else if (c == '%') {
      out += "%25";
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> FileBackedObjectStore::UnescapeKey(std::string_view file_name) {
  std::string out;
  out.reserve(file_name.size());
  for (size_t i = 0; i < file_name.size(); ++i) {
    if (file_name[i] != '%') {
      out += file_name[i];
      continue;
    }
    if (i + 2 >= file_name.size()) {
      return DataLossError("truncated escape in object file name");
    }
    const std::string_view hex = file_name.substr(i + 1, 2);
    if (hex == "2F") {
      out += '/';
    } else if (hex == "25") {
      out += '%';
    } else {
      return DataLossError("unknown escape in object file name");
    }
    i += 2;
  }
  return out;
}

std::string FileBackedObjectStore::PathForKey(std::string_view key) const {
  return root_dir_ + "/" + EscapeKey(key) + ".obj";
}

Status FileBackedObjectStore::Put(std::string_view key, ObjectBlob blob) {
  if (key.empty()) {
    return InvalidArgumentError("object key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);

  uint64_t old_logical = 0;
  uint64_t old_encoded = 0;
  const std::string path = PathForKey(key);
  if (std::filesystem::exists(path)) {
    // Read the previous logical size for accounting.
    std::ifstream in(path, std::ios::binary);
    uint64_t stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (in) {
      old_logical = stored;
    }
    std::error_code size_ec;
    const auto file_bytes = std::filesystem::file_size(path, size_ec);
    if (!size_ec && file_bytes >= sizeof(uint64_t)) {
      old_encoded = file_bytes - sizeof(uint64_t);
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  const uint64_t logical = blob.logical_size;
  out.write(reinterpret_cast<const char*>(&logical), sizeof(logical));
  out.write(reinterpret_cast<const char*>(blob.bytes().data()),
            static_cast<std::streamsize>(blob.bytes().size()));
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  AccountPut(accounting_, old_logical, logical);
  AccountPhysicalPut(accounting_.physical, old_encoded, blob.bytes().size());
  return OkStatus();
}

Result<ObjectBlob> FileBackedObjectStore::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string path = PathForKey(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  uint64_t logical_size = 0;
  in.read(reinterpret_cast<char*>(&logical_size), sizeof(logical_size));
  if (!in) {
    return DataLossError("corrupt object header at '" + path + "'");
  }
  std::vector<uint8_t> payload{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
  accounting_.network_bytes_downloaded += logical_size;
  accounting_.get_count += 1;
  accounting_.physical.chunks_fetched += 1;
  accounting_.physical.bytes_fetched += payload.size();
  return ObjectBlob(std::move(payload), logical_size);
}

Status FileBackedObjectStore::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string path = PathForKey(key);
  uint64_t old_logical = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return NotFoundError("no object with key '" + std::string(key) + "'");
    }
    in.read(reinterpret_cast<char*>(&old_logical), sizeof(old_logical));
  }
  uint64_t old_encoded = 0;
  std::error_code size_ec;
  const auto file_bytes = std::filesystem::file_size(path, size_ec);
  if (!size_ec && file_bytes >= sizeof(uint64_t)) {
    old_encoded = file_bytes - sizeof(uint64_t);
  }
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec) {
    return InternalError("cannot remove '" + path + "'");
  }
  accounting_.logical_bytes_stored -= old_logical;
  accounting_.delete_count += 1;
  accounting_.physical.bytes_stored -= old_encoded;
  accounting_.physical.flat_bytes_stored = accounting_.physical.bytes_stored;
  return OkStatus();
}

bool FileBackedObjectStore::Contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::filesystem::exists(PathForKey(key));
}

std::vector<std::string> FileBackedObjectStore::ListKeys(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".obj") {
      continue;
    }
    auto key = UnescapeKey(std::string_view(name).substr(0, name.size() - 4));
    if (!key.ok()) {
      continue;  // Skip foreign files.
    }
    if (key->size() >= prefix.size() && key->compare(0, prefix.size(), prefix) == 0) {
      keys.push_back(*std::move(key));
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StoreAccounting FileBackedObjectStore::accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

}  // namespace pronghorn
