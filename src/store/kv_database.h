// Strongly-consistent key-value Database.
//
// The paper's Database (§4) is "a lightweight implementation of a
// general-purpose key-value store ... exposing only strongly-consistent
// atomic read and write operations", explicitly substitutable by Redis or
// Dynamo. This interface reproduces that contract, adds versioned
// compare-and-swap (the primitive a production store would provide for the
// concurrent-orchestrator update in workflow step 4), and an atomic counter
// used to allocate snapshot ids.

#ifndef PRONGHORN_SRC_STORE_KV_DATABASE_H_
#define PRONGHORN_SRC_STORE_KV_DATABASE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/store/striping.h"

namespace pronghorn {

// A value plus its monotonically increasing version (1 on first write).
struct VersionedValue {
  std::vector<uint8_t> value;
  uint64_t version = 0;
};

// Cumulative operation counters (orchestrator-overhead accounting, Fig. 7).
struct KvAccounting {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cas_attempts = 0;
  uint64_t cas_conflicts = 0;
};

class KvDatabase {
 public:
  virtual ~KvDatabase() = default;

  // Unconditional atomic write.
  virtual Status Put(std::string_view key, std::vector<uint8_t> value) = 0;
  // Atomic read; kNotFound when absent.
  virtual Result<std::vector<uint8_t>> Get(std::string_view key) = 0;
  virtual Result<VersionedValue> GetVersioned(std::string_view key) = 0;
  // Writes `value` only if the current version equals `expected_version`
  // (use 0 for "key must not exist"); kAborted on conflict.
  virtual Status CompareAndSwap(std::string_view key, uint64_t expected_version,
                                std::vector<uint8_t> value) = 0;
  virtual Status Delete(std::string_view key) = 0;
  // Atomically increments the int64 counter at `key` (0 when absent) and
  // returns the new value. Used for snapshot-id allocation.
  virtual Result<int64_t> Increment(std::string_view key) = 0;
  virtual std::vector<std::string> ListKeys(std::string_view prefix = "") const = 0;

  virtual KvAccounting accounting() const = 0;
};

// Thread-safe in-memory implementation (the reference Database). Keys are
// lock-striped across kStoreStripes hash maps (see src/store/striping.h);
// per-key atomicity — including versioned CompareAndSwap and Increment — is
// provided by the key's stripe lock, and the operation counters are
// serial-exact atomics. ListKeys still returns lexicographic order.
class InMemoryKvDatabase : public KvDatabase {
 public:
  InMemoryKvDatabase() = default;

  Status Put(std::string_view key, std::vector<uint8_t> value) override;
  Result<std::vector<uint8_t>> Get(std::string_view key) override;
  Result<VersionedValue> GetVersioned(std::string_view key) override;
  Status CompareAndSwap(std::string_view key, uint64_t expected_version,
                        std::vector<uint8_t> value) override;
  Status Delete(std::string_view key) override;
  Result<int64_t> Increment(std::string_view key) override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override;
  KvAccounting accounting() const override;

 private:
  struct alignas(kCacheLineBytes) Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::string, VersionedValue, TransparentStringHash,
                       std::equal_to<>>
        entries;
  };

  std::array<Stripe, kStoreStripes> stripes_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> cas_attempts_{0};
  std::atomic<uint64_t> cas_conflicts_{0};
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_KV_DATABASE_H_
