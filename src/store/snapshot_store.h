// SnapshotStore: the chunk-granular snapshot API.
//
// The flat ObjectStore::Put/Get(key, ObjectBlob) interface cannot express
// chunk-granular or partial access, so the checkpoint/restore path talks to
// this API instead:
//
//   PutSnapshot    -> SnapshotRef (content digest + chunk manifest summary)
//   OpenSnapshot   -> lazy chunk reader (pins the snapshot while open)
//   Pin/Unpin      -> GC protection across reader lifetimes
//   DeleteSnapshot -> drops the manifest; chunk reclaim is deferred to GC
//   CollectGarbage -> reclaims chunks no manifest references
//
// Two implementations:
//
//   FlatSnapshotStore  — compatibility adapter over an existing ObjectStore.
//     One inner operation per call, so every pre-existing driver, fault
//     trajectory, and report digest stays bit-identical.
//
//   DedupSnapshotStore — content-addressed chunk index. Snapshots are split
//     into fixed/CDC chunks (src/store/chunker.h) keyed by content digest
//     with refcounts, so pool snapshots of one function (and identical
//     chunks across functions) deduplicate; CDC chunking is the delta
//     encoding between adjacent pool snapshots. Restores can run lazily,
//     REAP-style: the first open records the transferred chunk set into the
//     snapshot's manifest, later opens prefetch exactly that set and fault
//     the rest in on demand through a bounded host chunk cache.
//
// Accounting contract: the seven digest-covered StoreAccounting fields are
// computed with the *same logical arithmetic* as InMemoryObjectStore, so
// simulation digests are bit-identical whichever implementation backs a run.
// Everything chunk-granular lands in the digest-excluded PhysicalAccounting.

#ifndef PRONGHORN_SRC_STORE_SNAPSHOT_STORE_H_
#define PRONGHORN_SRC_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/obs/sink.h"
#include "src/store/chunker.h"
#include "src/store/object_store.h"

namespace pronghorn {

// What PutSnapshot hands back: enough to audit dedup behavior without
// another store round trip.
struct SnapshotRef {
  std::string key;
  uint64_t logical_size = 0;       // Modeled CRIU image bytes (digest-covered).
  uint64_t encoded_size = 0;       // Actual encoded payload bytes.
  uint32_t chunk_count = 0;
  uint64_t unique_bytes_added = 0; // Chunk bytes this put actually stored.
};

// Lazy chunk reader returned by OpenSnapshot. Holds a pin on the snapshot:
// the manifest and its chunks survive a concurrent DeleteSnapshot until the
// reader is destroyed. Must not outlive the store that opened it.
class SnapshotReader {
 public:
  virtual ~SnapshotReader() = default;

  virtual const SnapshotRef& ref() const = 0;
  // Materializes the full encoded image. Byte-identical to what was put
  // (including any at-rest corruption) regardless of eager/lazy fetching.
  virtual Result<ObjectBlob> ReadAll() = 0;
};

// How a simulation's snapshot store is built (SimOptions::store).
struct SnapshotStoreOptions {
  enum class Kind {
    kFlat = 0,   // FlatSnapshotStore over the environment's ObjectStore.
    kDedup = 1,  // Content-addressed DedupSnapshotStore.
  };
  Kind kind = Kind::kFlat;
  // Chunking geometry (fixed cut size / CDC target average; see chunker.h).
  ChunkerOptions chunker;
  // REAP-style record-then-prefetch restores (kDedup only). Digest-neutral:
  // only the physical fetch counters change.
  bool lazy_restore = false;
  // Host-side restore chunk cache budget for lazy mode.
  uint64_t chunk_cache_bytes = 16ull << 20;
};

class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  // Stores `blob` under `key`, replacing any existing snapshot.
  virtual Result<SnapshotRef> PutSnapshot(std::string_view key, ObjectBlob blob) = 0;
  // Opens a pinned reader. kNotFound for unknown keys; kDataLoss when the
  // manifest fails its integrity check.
  virtual Result<std::unique_ptr<SnapshotReader>> OpenSnapshot(std::string_view key) = 0;
  // Drops the snapshot's manifest. Chunks lose a reference but stay resident
  // until CollectGarbage (or until a pin on the snapshot is released).
  virtual Status DeleteSnapshot(std::string_view key) = 0;
  virtual bool ContainsSnapshot(std::string_view key) const = 0;
  // Keys in lexicographic order, optionally filtered by prefix.
  virtual std::vector<std::string> ListSnapshots(std::string_view prefix = "") const = 0;

  // Explicit GC protection independent of reader lifetimes. Pins nest.
  virtual Status Pin(std::string_view key) = 0;
  virtual Status Unpin(std::string_view key) = 0;
  // Reclaims every unpinned chunk no manifest references; returns how many
  // chunks were collected.
  virtual uint64_t CollectGarbage() = 0;

  virtual StoreAccounting accounting() const = 0;

  // Chaos hooks for chunk-granular fault injection (see fault_injection.h).
  // Flat stores have no chunks or manifests, so the default declines.
  virtual Status CorruptChunk(std::string_view key, Rng& rng);
  virtual Status CorruptManifest(std::string_view key, Rng& rng);

  // Borrowed observability sink; chunk fetches become "chunk_fetch" spans.
  virtual void set_obs(ObsSink* obs, ObsTrack track);
};

// Compatibility adapter: one inner ObjectStore operation per call, so flat
// deployments (including their fault-decorator RNG draw sequences) replay
// bit-identically through the new API. The inner store is borrowed.
class FlatSnapshotStore : public SnapshotStore {
 public:
  explicit FlatSnapshotStore(ObjectStore& inner) : inner_(inner) {}

  Result<SnapshotRef> PutSnapshot(std::string_view key, ObjectBlob blob) override;
  Result<std::unique_ptr<SnapshotReader>> OpenSnapshot(std::string_view key) override;
  Status DeleteSnapshot(std::string_view key) override;
  bool ContainsSnapshot(std::string_view key) const override;
  std::vector<std::string> ListSnapshots(std::string_view prefix) const override;
  Status Pin(std::string_view /*key*/) override { return OkStatus(); }
  Status Unpin(std::string_view /*key*/) override { return OkStatus(); }
  uint64_t CollectGarbage() override { return 0; }
  StoreAccounting accounting() const override { return inner_.accounting(); }

 private:
  ObjectStore& inner_;
};

// Content-addressed deduplicated store. Self-contained (owns its chunk index
// and manifests); thread-safe like the stores it replaces. `clock` (borrowed,
// may be null) only timestamps observability spans — the store never advances
// simulated time, which is what keeps it digest-neutral.
class DedupSnapshotStore : public SnapshotStore {
 public:
  explicit DedupSnapshotStore(SnapshotStoreOptions options, SimClock* clock = nullptr);

  Result<SnapshotRef> PutSnapshot(std::string_view key, ObjectBlob blob) override;
  Result<std::unique_ptr<SnapshotReader>> OpenSnapshot(std::string_view key) override;
  Status DeleteSnapshot(std::string_view key) override;
  bool ContainsSnapshot(std::string_view key) const override;
  std::vector<std::string> ListSnapshots(std::string_view prefix) const override;
  Status Pin(std::string_view key) override;
  Status Unpin(std::string_view key) override;
  uint64_t CollectGarbage() override;
  StoreAccounting accounting() const override;

  // Chaos hooks. CorruptChunk rewrites one uniformly-drawn chunk of `key`'s
  // manifest through copy-on-write (siblings sharing the original chunk are
  // untouched); CorruptManifest flips one bit of the serialized manifest so
  // the next open fails its CRC.
  Status CorruptChunk(std::string_view key, Rng& rng) override;
  Status CorruptManifest(std::string_view key, Rng& rng) override;

  void set_obs(ObsSink* obs, ObsTrack track) override;

  // Audit for tests: every manifest reference resolves, refcount totals
  // match, and the physical byte ledger equals the resident bytes. Returns
  // the first violation found.
  Status CheckInvariants() const;

  // Test introspection.
  uint64_t resident_chunks() const;
  uint64_t unreferenced_chunks() const;

 private:
  struct ChunkEntry {
    std::vector<uint8_t> bytes;
    uint64_t refs = 0;
  };
  struct ManifestEntry {
    uint64_t logical_size = 0;
    uint64_t encoded_size = 0;
    std::vector<ChunkKey> chunks;      // Authoritative refcount ledger.
    std::vector<uint32_t> sizes;
    std::vector<uint8_t> serialized;   // CRC-framed; the read path's input.
    std::vector<uint32_t> working_set; // Chunk indexes transferred at first open.
    bool ws_recorded = false;
    uint64_t pins = 0;
    bool zombie = false;  // Deleted while pinned; released at last unpin.
  };

  class Reader;

  // All Locked helpers require mutex_ held.
  std::shared_ptr<ManifestEntry> FindLocked(std::string_view key) const;
  void SerializeManifestLocked(ManifestEntry& manifest);
  Status ParseManifestLocked(const ManifestEntry& manifest,
                             std::vector<ChunkKey>& chunks,
                             std::vector<uint32_t>& sizes) const;
  // Adds one reference to `key`'s chunk (inserting `bytes` when new);
  // returns bytes actually stored (0 on a dedup hit).
  uint64_t RefChunkLocked(const ChunkKey& key, std::span<const uint8_t> bytes);
  void ReleaseManifestLocked(ManifestEntry& manifest);
  uint64_t CollectLocked();
  void TouchCacheLocked(const ChunkKey& key, uint32_t size);
  bool CachedLocked(const ChunkKey& key) const;
  void CloseReader(const std::shared_ptr<ManifestEntry>& manifest);
  Result<ObjectBlob> ReadAllLocked(const std::shared_ptr<ManifestEntry>& manifest,
                                   const std::vector<ChunkKey>& chunks,
                                   const std::vector<uint32_t>& sizes,
                                   const std::string& key);

  // ChunkKey is itself a 128-bit content digest, so its high word is already
  // a high-quality hash — no re-mixing needed. The chunk index is the hottest
  // map in the store (every put/restore touches it once per chunk); hashed
  // lookup replaces the old std::map's pointer-chasing tree descent. Every
  // iteration over the index computes order-independent totals, so the
  // unordered iteration order is unobservable.
  struct ChunkKeyHash {
    size_t operator()(const ChunkKey& key) const noexcept {
      return static_cast<size_t>(key.hi);
    }
  };

  mutable std::mutex mutex_;
  SnapshotStoreOptions options_;
  SimClock* clock_;
  std::unordered_map<ChunkKey, ChunkEntry, ChunkKeyHash> chunks_;
  std::map<std::string, std::shared_ptr<ManifestEntry>, std::less<>> manifests_;
  // Deleted-while-pinned manifests awaiting their last unpin.
  std::vector<std::shared_ptr<ManifestEntry>> zombies_;
  // Host restore cache (lazy mode): LRU by chunk key, bounded by bytes.
  std::list<ChunkKey> cache_lru_;
  std::unordered_map<ChunkKey, std::pair<std::list<ChunkKey>::iterator, uint32_t>,
                     ChunkKeyHash>
      cache_;
  uint64_t cache_bytes_ = 0;
  // Refcount-0 resident chunks (GC backlog); auto-collected past a bound.
  uint64_t garbage_bytes_ = 0;
  uint64_t garbage_chunks_ = 0;
  // Last snapshot put per key prefix, for adjacent-delta accounting.
  std::map<std::string, std::string> last_put_by_prefix_;
  StoreAccounting accounting_;
  ObsSink* obs_ = nullptr;
  ObsTrack obs_track_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_SNAPSHOT_STORE_H_
