// Lock striping and serial-exact atomic accounting for the in-memory stores.
//
// The in-memory ObjectStore and Database originally guarded one std::map and
// one accounting struct with a single mutex. That is perfectly correct, but
// when a store is shared across threads (service mode shards, concurrency
// stress tests) every operation — including the string hashing and node
// allocation inside the map — serializes on that one lock, and the lock word
// itself ping-pongs between cores. The stores now hash each key to one of
// kStoreStripes independently-locked unordered maps, so operations on
// different keys proceed in parallel and touch disjoint cache lines (each
// stripe is cache-line aligned).
//
// Accounting moves to plain atomics with compare-exchange maxima for the
// peak fields. This is SERIAL-EXACT: any single-threaded operation sequence
// produces an accounting snapshot bit-identical to the old mutex-guarded
// struct, which is what the digest-covered simulations rely on (every
// digest-covered sim drives a store from one thread at a time; see
// tests/fleet_determinism_test.cc). Under true concurrency the counters are
// still exact totals; only the peaks depend on interleaving, exactly as they
// did under the old mutex.

#ifndef PRONGHORN_SRC_STORE_STRIPING_H_
#define PRONGHORN_SRC_STORE_STRIPING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "src/common/thread_pool.h"  // kCacheLineBytes

namespace pronghorn {

// Stripe count for the in-memory stores. Power of two so the stripe index is
// a mask, sized a small multiple of plausible shard counts so two concurrent
// operations rarely collide on a stripe (16 stripes, 4-8 service shards).
inline constexpr size_t kStoreStripes = 16;

// Transparent hash so unordered_map<std::string, ...> lookups take a
// string_view without materializing a temporary std::string (C++20
// heterogeneous lookup; pair with std::equal_to<>).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// Which stripe a key lives on. Derives the index from the same hash the
// stripe's own map uses, so hashing happens once per operation in practice
// (the map re-hashes internally, but both calls hit the same short string).
inline size_t StripeIndexForKey(std::string_view key) {
  return TransparentStringHash{}(key) & (kStoreStripes - 1);
}

// Lock-free running maximum: the atomic analogue of
// `peak = std::max(peak, value)`. Relaxed ordering suffices — peaks are
// accounting data read only by accounting() snapshots, never used for
// synchronization.
inline void AtomicStoreMax(std::atomic<uint64_t>& target, uint64_t value) {
  uint64_t current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

// Adds a possibly-negative delta (two's-complement wraparound on uint64_t)
// and returns the post-add value, the atomic analogue of `total += delta;
// use(total)`.
inline uint64_t AtomicAddFetch(std::atomic<uint64_t>& target, uint64_t delta) {
  return target.fetch_add(delta, std::memory_order_relaxed) + delta;
}

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_STRIPING_H_
