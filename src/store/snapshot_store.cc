#include "src/store/snapshot_store.h"

#include <algorithm>
#include <set>
#include <span>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/crc32.h"

namespace pronghorn {

namespace {

constexpr uint32_t kManifestMagic = 0x504d414e;  // "NAMP"
constexpr uint8_t kManifestVersion = 1;
// Refcount-0 chunks are reclaimed opportunistically once the backlog passes
// this bound, so long fleet runs stay memory-bounded between explicit GCs.
constexpr uint64_t kAutoCollectBytes = 64ull << 20;

// The prefix under which adjacent pool snapshots share content: everything
// up to and including the last '/' ("snapshots/<function>/").
std::string_view KeyPrefix(std::string_view key) {
  const size_t slash = key.rfind('/');
  return slash == std::string_view::npos ? std::string_view{} : key.substr(0, slash + 1);
}

}  // namespace

// --- SnapshotStore defaults --------------------------------------------------

Status SnapshotStore::CorruptChunk(std::string_view key, Rng& rng) {
  (void)key;
  (void)rng;
  return UnimplementedError("store has no chunk granularity");
}

Status SnapshotStore::CorruptManifest(std::string_view key, Rng& rng) {
  (void)key;
  (void)rng;
  return UnimplementedError("store has no manifests");
}

void SnapshotStore::set_obs(ObsSink* obs, ObsTrack track) {
  (void)obs;
  (void)track;
}

// --- FlatSnapshotStore -------------------------------------------------------

namespace {

// Reader over an already-fetched flat blob: the inner Get happened at open
// time (one inner operation per OpenSnapshot, matching the legacy Get).
class FlatReader final : public SnapshotReader {
 public:
  FlatReader(SnapshotRef ref, ObjectBlob blob)
      : ref_(std::move(ref)), blob_(std::move(blob)) {}

  const SnapshotRef& ref() const override { return ref_; }
  Result<ObjectBlob> ReadAll() override { return blob_; }

 private:
  SnapshotRef ref_;
  ObjectBlob blob_;  // Shares the stored buffer; no payload copy.
};

}  // namespace

Result<SnapshotRef> FlatSnapshotStore::PutSnapshot(std::string_view key,
                                                   ObjectBlob blob) {
  SnapshotRef ref;
  ref.key = std::string(key);
  ref.logical_size = blob.logical_size;
  ref.encoded_size = blob.bytes().size();
  ref.chunk_count = blob.bytes().empty() ? 0 : 1;
  ref.unique_bytes_added = ref.encoded_size;
  PRONGHORN_RETURN_IF_ERROR(inner_.Put(key, std::move(blob)));
  return ref;
}

Result<std::unique_ptr<SnapshotReader>> FlatSnapshotStore::OpenSnapshot(
    std::string_view key) {
  PRONGHORN_ASSIGN_OR_RETURN(ObjectBlob blob, inner_.Get(key));
  SnapshotRef ref;
  ref.key = std::string(key);
  ref.logical_size = blob.logical_size;
  ref.encoded_size = blob.bytes().size();
  ref.chunk_count = blob.bytes().empty() ? 0 : 1;
  return std::unique_ptr<SnapshotReader>(
      new FlatReader(std::move(ref), std::move(blob)));
}

Status FlatSnapshotStore::DeleteSnapshot(std::string_view key) {
  return inner_.Delete(key);
}

bool FlatSnapshotStore::ContainsSnapshot(std::string_view key) const {
  return inner_.Contains(key);
}

std::vector<std::string> FlatSnapshotStore::ListSnapshots(
    std::string_view prefix) const {
  return inner_.ListKeys(prefix);
}

// --- DedupSnapshotStore ------------------------------------------------------

class DedupSnapshotStore::Reader final : public SnapshotReader {
 public:
  Reader(DedupSnapshotStore* store, std::shared_ptr<ManifestEntry> manifest,
         SnapshotRef ref, std::vector<ChunkKey> chunks, std::vector<uint32_t> sizes,
         std::string key)
      : store_(store),
        manifest_(std::move(manifest)),
        ref_(std::move(ref)),
        chunks_(std::move(chunks)),
        sizes_(std::move(sizes)),
        key_(std::move(key)) {}

  ~Reader() override { store_->CloseReader(manifest_); }

  const SnapshotRef& ref() const override { return ref_; }

  Result<ObjectBlob> ReadAll() override {
    std::lock_guard<std::mutex> lock(store_->mutex_);
    return store_->ReadAllLocked(manifest_, chunks_, sizes_, key_);
  }

 private:
  DedupSnapshotStore* store_;
  std::shared_ptr<ManifestEntry> manifest_;
  SnapshotRef ref_;
  std::vector<ChunkKey> chunks_;
  std::vector<uint32_t> sizes_;
  std::string key_;
};

DedupSnapshotStore::DedupSnapshotStore(SnapshotStoreOptions options, SimClock* clock)
    : options_(std::move(options)), clock_(clock) {}

void DedupSnapshotStore::set_obs(ObsSink* obs, ObsTrack track) {
  obs_ = obs;
  obs_track_ = track;
}

std::shared_ptr<DedupSnapshotStore::ManifestEntry> DedupSnapshotStore::FindLocked(
    std::string_view key) const {
  const auto it = manifests_.find(key);
  return it == manifests_.end() ? nullptr : it->second;
}

void DedupSnapshotStore::SerializeManifestLocked(ManifestEntry& manifest) {
  ByteWriter writer;
  writer.Reserve(manifest.chunks.size() * 20 + 64);
  writer.WriteUint32(kManifestMagic);
  writer.WriteUint8(kManifestVersion);
  writer.WriteVarint(manifest.logical_size);
  writer.WriteVarint(manifest.encoded_size);
  writer.WriteVarint(manifest.chunks.size());
  for (size_t i = 0; i < manifest.chunks.size(); ++i) {
    writer.WriteUint64(manifest.chunks[i].hi);
    writer.WriteUint64(manifest.chunks[i].lo);
    writer.WriteVarint(manifest.sizes[i]);
  }
  // REAP working set: the chunk indexes the first restore transferred,
  // persisted into the snapshot's metadata so later restores prefetch them.
  writer.WriteUint8(manifest.ws_recorded ? 1 : 0);
  writer.WriteVarint(manifest.working_set.size());
  for (const uint32_t index : manifest.working_set) {
    writer.WriteVarint(index);
  }
  const uint32_t crc = Crc32(writer.data());
  writer.WriteUint32(crc);
  manifest.serialized = writer.TakeData();
}

Status DedupSnapshotStore::ParseManifestLocked(const ManifestEntry& manifest,
                                               std::vector<ChunkKey>& chunks,
                                               std::vector<uint32_t>& sizes) const {
  const std::span<const uint8_t> bytes(manifest.serialized);
  if (bytes.size() < 4) {
    return DataLossError("snapshot manifest truncated");
  }
  const std::span<const uint8_t> body = bytes.first(bytes.size() - 4);
  ByteReader crc_reader(bytes.subspan(bytes.size() - 4));
  PRONGHORN_ASSIGN_OR_RETURN(const uint32_t stored_crc, crc_reader.ReadUint32());
  if (Crc32(body) != stored_crc) {
    return DataLossError("snapshot manifest CRC mismatch");
  }
  ByteReader reader(body);
  PRONGHORN_ASSIGN_OR_RETURN(const uint32_t magic, reader.ReadUint32());
  if (magic != kManifestMagic) {
    return DataLossError("bad snapshot manifest magic");
  }
  PRONGHORN_ASSIGN_OR_RETURN(const uint8_t version, reader.ReadUint8());
  if (version != kManifestVersion) {
    return DataLossError("unsupported snapshot manifest version");
  }
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t logical, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t encoded, reader.ReadVarint());
  (void)logical;
  (void)encoded;
  PRONGHORN_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  chunks.clear();
  sizes.clear();
  chunks.reserve(count);
  sizes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ChunkKey key;
    PRONGHORN_ASSIGN_OR_RETURN(key.hi, reader.ReadUint64());
    PRONGHORN_ASSIGN_OR_RETURN(key.lo, reader.ReadUint64());
    PRONGHORN_ASSIGN_OR_RETURN(const uint64_t size, reader.ReadVarint());
    chunks.push_back(key);
    sizes.push_back(static_cast<uint32_t>(size));
  }
  return OkStatus();
}

uint64_t DedupSnapshotStore::RefChunkLocked(const ChunkKey& key,
                                            std::span<const uint8_t> bytes) {
  auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    if (it->second.refs == 0) {
      // Resurrected from the GC backlog before collection reclaimed it.
      garbage_bytes_ -= it->second.bytes.size();
      garbage_chunks_ -= 1;
    }
    it->second.refs += 1;
    return 0;
  }
  ChunkEntry entry;
  entry.bytes.assign(bytes.begin(), bytes.end());
  entry.refs = 1;
  chunks_.emplace(key, std::move(entry));
  accounting_.physical.bytes_stored += bytes.size();
  accounting_.physical.chunks_stored += 1;
  return bytes.size();
}

void DedupSnapshotStore::ReleaseManifestLocked(ManifestEntry& manifest) {
  for (const ChunkKey& key : manifest.chunks) {
    auto it = chunks_.find(key);
    if (it == chunks_.end() || it->second.refs == 0) {
      continue;  // CheckInvariants() surfaces ledger damage; never underflow.
    }
    it->second.refs -= 1;
    if (it->second.refs == 0) {
      garbage_bytes_ += it->second.bytes.size();
      garbage_chunks_ += 1;
    }
  }
  accounting_.physical.chunk_refs -= manifest.chunks.size();
  accounting_.physical.bytes_stored -= manifest.serialized.size();
  manifest.chunks.clear();
  manifest.sizes.clear();
  manifest.serialized.clear();
  if (garbage_bytes_ > kAutoCollectBytes) {
    (void)CollectLocked();
  }
}

uint64_t DedupSnapshotStore::CollectLocked() {
  uint64_t collected = 0;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs != 0) {
      ++it;
      continue;
    }
    const uint64_t size = it->second.bytes.size();
    accounting_.physical.bytes_stored -= size;
    accounting_.physical.chunks_stored -= 1;
    accounting_.physical.chunks_collected += 1;
    accounting_.physical.bytes_collected += size;
    it = chunks_.erase(it);
    collected += 1;
  }
  garbage_bytes_ = 0;
  garbage_chunks_ = 0;
  return collected;
}

void DedupSnapshotStore::TouchCacheLocked(const ChunkKey& key, uint32_t size) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.first);
    return;
  }
  cache_lru_.push_front(key);
  cache_.emplace(key, std::make_pair(cache_lru_.begin(), size));
  cache_bytes_ += size;
  while (cache_bytes_ > options_.chunk_cache_bytes && cache_lru_.size() > 1) {
    const ChunkKey victim = cache_lru_.back();
    cache_lru_.pop_back();
    const auto victim_it = cache_.find(victim);
    cache_bytes_ -= victim_it->second.second;
    cache_.erase(victim_it);
  }
}

bool DedupSnapshotStore::CachedLocked(const ChunkKey& key) const {
  return cache_.find(key) != cache_.end();
}

void DedupSnapshotStore::CloseReader(const std::shared_ptr<ManifestEntry>& manifest) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (manifest->pins > 0) {
    manifest->pins -= 1;
  }
  if (manifest->pins == 0 && manifest->zombie) {
    ReleaseManifestLocked(*manifest);
    std::erase(zombies_, manifest);
  }
}

Result<ObjectBlob> DedupSnapshotStore::ReadAllLocked(
    const std::shared_ptr<ManifestEntry>& manifest,
    const std::vector<ChunkKey>& chunks, const std::vector<uint32_t>& sizes,
    const std::string& key) {
  PhysicalAccounting& phys = accounting_.physical;
  const uint64_t fetched_before = phys.bytes_fetched;
  const bool lazy = options_.lazy_restore;
  const bool recording = lazy && !manifest->ws_recorded;

  // REAP prefetch: the recorded working set is transferred up front (one
  // batched fetch), so a warm later restore pays only for what the first
  // restore actually touched.
  if (lazy && manifest->ws_recorded) {
    for (const uint32_t index : manifest->working_set) {
      if (index >= chunks.size() || CachedLocked(chunks[index])) {
        continue;
      }
      phys.chunks_fetched += 1;
      phys.chunks_prefetched += 1;
      phys.bytes_fetched += sizes[index];
      TouchCacheLocked(chunks[index], sizes[index]);
    }
  }

  std::vector<uint8_t> assembled;
  std::vector<uint32_t> transferred;
  uint64_t total = 0;
  for (const uint32_t size : sizes) {
    total += size;
  }
  assembled.reserve(total);
  for (size_t i = 0; i < chunks.size(); ++i) {
    const auto it = chunks_.find(chunks[i]);
    if (it == chunks_.end()) {
      return DataLossError("snapshot chunk missing from index");
    }
    if (!lazy) {
      phys.chunks_fetched += 1;
      phys.bytes_fetched += it->second.bytes.size();
    } else if (CachedLocked(chunks[i])) {
      phys.cache_hits += 1;
      TouchCacheLocked(chunks[i], sizes[i]);
    } else {
      phys.chunks_fetched += 1;
      phys.bytes_fetched += it->second.bytes.size();
      TouchCacheLocked(chunks[i], sizes[i]);
      if (recording) {
        transferred.push_back(static_cast<uint32_t>(i));
      } else {
        phys.demand_faults += 1;
      }
    }
    assembled.insert(assembled.end(), it->second.bytes.begin(),
                     it->second.bytes.end());
  }

  if (recording) {
    // First restore: persist the transferred set into the snapshot's
    // metadata so later restores prefetch exactly this set.
    manifest->working_set = std::move(transferred);
    manifest->ws_recorded = true;
    phys.bytes_stored -= manifest->serialized.size();
    SerializeManifestLocked(*manifest);
    phys.bytes_stored += manifest->serialized.size();
    phys.peak_bytes = std::max(phys.peak_bytes, phys.bytes_stored);
  }

  const uint64_t fetched = phys.bytes_fetched - fetched_before;
  if (obs_ != nullptr) {
    obs_->Counter("store.chunk_fetches", 1);
    obs_->Counter("store.chunk_bytes_fetched", fetched);
    // Span duration is a visualization aid (1us per KiB ~ 1 GiB/s), not
    // simulated time: the store never advances the clock.
    obs_->Span(obs_track_, "chunk_fetch", "store",
               clock_ != nullptr ? clock_->now() : TimePoint(),
               Duration::Micros(static_cast<int64_t>(fetched / 1024)));
    (void)key;
  }
  return ObjectBlob(std::move(assembled), manifest->logical_size);
}

Result<SnapshotRef> DedupSnapshotStore::PutSnapshot(std::string_view key,
                                                    ObjectBlob blob) {
  if (key.empty()) {
    return InvalidArgumentError("object key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  PhysicalAccounting& phys = accounting_.physical;

  const auto existing = manifests_.find(key);
  const uint64_t old_logical =
      existing == manifests_.end() ? 0 : existing->second->logical_size;
  const uint64_t old_encoded =
      existing == manifests_.end() ? 0 : existing->second->encoded_size;
  // Digest-covered logical arithmetic: byte-for-byte the same rules as
  // InMemoryObjectStore::Put, so flat and dedup runs report identical
  // logical accounting.
  accounting_.logical_bytes_stored -= old_logical;
  accounting_.logical_bytes_stored += blob.logical_size;
  accounting_.peak_logical_bytes =
      std::max(accounting_.peak_logical_bytes, accounting_.logical_bytes_stored);
  accounting_.network_bytes_uploaded += blob.logical_size;
  accounting_.put_count += 1;

  if (existing != manifests_.end()) {
    std::shared_ptr<ManifestEntry> old = existing->second;
    manifests_.erase(existing);
    if (old->pins > 0) {
      old->zombie = true;
      zombies_.push_back(std::move(old));
    } else {
      ReleaseManifestLocked(*old);
    }
  }

  const std::vector<ChunkSpan> spans = SplitChunks(blob.bytes(), options_.chunker);
  auto manifest = std::make_shared<ManifestEntry>();
  manifest->logical_size = blob.logical_size;
  manifest->encoded_size = blob.bytes().size();
  manifest->chunks.reserve(spans.size());
  manifest->sizes.reserve(spans.size());

  // Adjacent-delta attribution: chunks shared with the previous snapshot of
  // this prefix are the delta-encoding savings between pool neighbors.
  std::set<ChunkKey> previous_chunks;
  const std::string prefix(KeyPrefix(key));
  if (const auto last = last_put_by_prefix_.find(prefix);
      last != last_put_by_prefix_.end()) {
    if (const auto prev = FindLocked(last->second); prev != nullptr) {
      previous_chunks.insert(prev->chunks.begin(), prev->chunks.end());
    }
  }

  uint64_t unique_added = 0;
  const std::span<const uint8_t> payload(blob.bytes());
  for (const ChunkSpan& span : spans) {
    manifest->chunks.push_back(span.key);
    manifest->sizes.push_back(span.size);
    const uint64_t stored =
        RefChunkLocked(span.key, payload.subspan(span.offset, span.size));
    if (stored == 0) {
      phys.dedup_hits += 1;
      phys.dedup_bytes_saved += span.size;
      if (previous_chunks.count(span.key) > 0) {
        phys.delta_bytes_shared += span.size;
      }
    } else {
      unique_added += stored;
    }
  }
  phys.chunk_refs += spans.size();
  last_put_by_prefix_[prefix] = std::string(key);

  SerializeManifestLocked(*manifest);
  phys.bytes_stored += manifest->serialized.size();
  phys.peak_bytes = std::max(phys.peak_bytes, phys.bytes_stored);
  phys.flat_bytes_stored -= old_encoded;
  phys.flat_bytes_stored += manifest->encoded_size;
  phys.peak_flat_bytes = std::max(phys.peak_flat_bytes, phys.flat_bytes_stored);

  SnapshotRef ref;
  ref.key = std::string(key);
  ref.logical_size = manifest->logical_size;
  ref.encoded_size = manifest->encoded_size;
  ref.chunk_count = static_cast<uint32_t>(spans.size());
  ref.unique_bytes_added = unique_added;
  manifests_[ref.key] = std::move(manifest);
  return ref;
}

Result<std::unique_ptr<SnapshotReader>> DedupSnapshotStore::OpenSnapshot(
    std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<ManifestEntry> manifest = FindLocked(key);
  if (manifest == nullptr) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  // Digest-covered logical transfer accounting, mirroring the flat Get.
  accounting_.network_bytes_downloaded += manifest->logical_size;
  accounting_.get_count += 1;

  std::vector<ChunkKey> chunks;
  std::vector<uint32_t> sizes;
  PRONGHORN_RETURN_IF_ERROR(ParseManifestLocked(*manifest, chunks, sizes));

  manifest->pins += 1;  // Released by the reader's destructor.
  SnapshotRef ref;
  ref.key = std::string(key);
  ref.logical_size = manifest->logical_size;
  ref.encoded_size = manifest->encoded_size;
  ref.chunk_count = static_cast<uint32_t>(chunks.size());
  return std::unique_ptr<SnapshotReader>(
      new Reader(this, manifest, std::move(ref), std::move(chunks),
                 std::move(sizes), std::string(key)));
}

Status DedupSnapshotStore::DeleteSnapshot(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = manifests_.find(key);
  if (it == manifests_.end()) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  std::shared_ptr<ManifestEntry> manifest = it->second;
  accounting_.logical_bytes_stored -= manifest->logical_size;
  accounting_.delete_count += 1;
  accounting_.physical.flat_bytes_stored -= manifest->encoded_size;
  manifests_.erase(it);
  if (manifest->pins > 0) {
    manifest->zombie = true;
    zombies_.push_back(std::move(manifest));
  } else {
    ReleaseManifestLocked(*manifest);
  }
  return OkStatus();
}

bool DedupSnapshotStore::ContainsSnapshot(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifests_.find(key) != manifests_.end();
}

std::vector<std::string> DedupSnapshotStore::ListSnapshots(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (const auto& [key, manifest] : manifests_) {
    if (key.size() >= prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      keys.push_back(key);
    }
  }
  return keys;
}

Status DedupSnapshotStore::Pin(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<ManifestEntry> manifest = FindLocked(key);
  if (manifest == nullptr) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  manifest->pins += 1;
  return OkStatus();
}

Status DedupSnapshotStore::Unpin(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<ManifestEntry> manifest = FindLocked(key);
  if (manifest == nullptr) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  if (manifest->pins == 0) {
    return FailedPreconditionError("snapshot '" + std::string(key) +
                                   "' is not pinned");
  }
  manifest->pins -= 1;
  return OkStatus();
}

uint64_t DedupSnapshotStore::CollectGarbage() {
  std::lock_guard<std::mutex> lock(mutex_);
  return CollectLocked();
}

StoreAccounting DedupSnapshotStore::accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

Status DedupSnapshotStore::CorruptChunk(std::string_view key, Rng& rng) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<ManifestEntry> manifest = FindLocked(key);
  if (manifest == nullptr) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  if (manifest->chunks.empty()) {
    return FailedPreconditionError("snapshot has no chunks to corrupt");
  }
  const size_t index =
      static_cast<size_t>(rng.UniformUint64(manifest->chunks.size()));
  const ChunkKey old_key = manifest->chunks[index];
  const auto it = chunks_.find(old_key);
  if (it == chunks_.end()) {
    return DataLossError("chunk index entry missing");
  }
  // Copy-on-write: the corrupted bytes become a *new* content address, so
  // sibling snapshots sharing the original chunk stay healthy.
  std::vector<uint8_t> corrupted = it->second.bytes;
  if (corrupted.empty()) {
    return FailedPreconditionError("cannot corrupt an empty chunk");
  }
  const uint64_t bit = rng.UniformUint64(corrupted.size() * 8);
  corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  const ChunkKey new_key = HashChunk(corrupted);

  if (it->second.refs > 0) {
    it->second.refs -= 1;
    if (it->second.refs == 0) {
      garbage_bytes_ += it->second.bytes.size();
      garbage_chunks_ += 1;
    }
  }
  (void)RefChunkLocked(new_key, corrupted);
  manifest->chunks[index] = new_key;
  accounting_.physical.bytes_stored -= manifest->serialized.size();
  SerializeManifestLocked(*manifest);
  accounting_.physical.bytes_stored += manifest->serialized.size();
  accounting_.physical.peak_bytes =
      std::max(accounting_.physical.peak_bytes, accounting_.physical.bytes_stored);
  return OkStatus();
}

Status DedupSnapshotStore::CorruptManifest(std::string_view key, Rng& rng) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<ManifestEntry> manifest = FindLocked(key);
  if (manifest == nullptr) {
    return NotFoundError("no object with key '" + std::string(key) + "'");
  }
  if (manifest->serialized.empty()) {
    return FailedPreconditionError("snapshot manifest is empty");
  }
  // One flipped bit anywhere in the frame; the manifest CRC catches it at
  // the next open, which surfaces as kDataLoss and feeds the quarantine
  // ledger exactly like a corrupt image would.
  const uint64_t bit = rng.UniformUint64(manifest->serialized.size() * 8);
  manifest->serialized[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  return OkStatus();
}

Status DedupSnapshotStore::CheckInvariants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<ChunkKey, uint64_t> expected;
  uint64_t total_refs = 0;
  uint64_t manifest_bytes = 0;
  const auto fold = [&](const std::shared_ptr<ManifestEntry>& manifest) {
    for (const ChunkKey& key : manifest->chunks) {
      expected[key] += 1;
      total_refs += 1;
    }
    manifest_bytes += manifest->serialized.size();
  };
  for (const auto& [key, manifest] : manifests_) {
    fold(manifest);
  }
  for (const auto& manifest : zombies_) {
    fold(manifest);
  }
  for (const auto& [key, count] : expected) {
    const auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      return InternalError("referenced chunk missing from index");
    }
    if (it->second.refs != count) {
      return InternalError("chunk refcount does not match manifest references");
    }
  }
  uint64_t chunk_bytes = 0;
  uint64_t garbage_chunks = 0;
  for (const auto& [key, entry] : chunks_) {
    chunk_bytes += entry.bytes.size();
    if (entry.refs == 0) {
      garbage_chunks += 1;
    } else if (expected.find(key) == expected.end()) {
      return InternalError("chunk holds references no manifest accounts for");
    }
  }
  if (garbage_chunks != garbage_chunks_) {
    return InternalError("garbage chunk counter out of sync");
  }
  if (accounting_.physical.chunk_refs != total_refs) {
    return InternalError("chunk_refs accounting out of sync");
  }
  if (accounting_.physical.bytes_stored != chunk_bytes + manifest_bytes) {
    return InternalError("physical byte ledger out of sync");
  }
  if (accounting_.physical.chunks_stored != chunks_.size()) {
    return InternalError("chunks_stored accounting out of sync");
  }
  return OkStatus();
}

uint64_t DedupSnapshotStore::resident_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunks_.size();
}

uint64_t DedupSnapshotStore::unreferenced_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return garbage_chunks_;
}

}  // namespace pronghorn
