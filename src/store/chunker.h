// Content-addressed chunking for snapshot images.
//
// Snapshots are split into chunks keyed by a content digest so identical
// regions deduplicate across pool snapshots of one function (and across
// functions). Two splitters are provided:
//
//   - Fixed-size: cut every `chunk_size` bytes. Cheapest, and ideal when
//     adjacent snapshots differ by in-place mutation (our engines re-encode
//     the same layout, so most offsets line up).
//   - Content-defined (CDC, Gear rolling hash): cut where the rolling hash
//     matches a mask, bounded by [min, max]. Survives insertions/deletions
//     that would shift every fixed boundary, at slightly higher CPU cost —
//     this is the delta-encoding mechanism between adjacent pool snapshots.
//
// Chunk identity is a 128-bit composite (FNV-1a 64 over the bytes, plus a
// second independently-mixed stream) so accidental collisions are out of
// reach for any simulation-scale corpus; equality of keys is treated as
// equality of content.

#ifndef PRONGHORN_SRC_STORE_CHUNKER_H_
#define PRONGHORN_SRC_STORE_CHUNKER_H_

#include <cstdint>
#include <span>
#include <vector>

namespace pronghorn {

// Content address of one chunk. Totally ordered so chunk indexes can live in
// ordered containers with deterministic iteration.
struct ChunkKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;
  friend bool operator<(const ChunkKey& a, const ChunkKey& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// One chunk of a split payload: a [offset, offset+size) slice plus its
// content address.
struct ChunkSpan {
  uint64_t offset = 0;
  uint32_t size = 0;
  ChunkKey key;
};

// Content address of `bytes`. Pure function of the byte sequence.
ChunkKey HashChunk(std::span<const uint8_t> bytes);

// Bounds for both splitters. `chunk_size` is the fixed-size cut and the CDC
// target average; CDC additionally enforces [min_size, max_size].
struct ChunkerOptions {
  uint32_t chunk_size = 4096;
  uint32_t min_size = 1024;
  uint32_t max_size = 16384;
  bool cdc = false;  // Content-defined boundaries instead of fixed ones.
};

// Splits `bytes` per `options` and content-addresses every chunk. The spans
// tile the input exactly: concatenating them in order reproduces `bytes`.
// An empty input yields no chunks.
std::vector<ChunkSpan> SplitChunks(std::span<const uint8_t> bytes,
                                   const ChunkerOptions& options);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_CHUNKER_H_
