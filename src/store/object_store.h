// Object store (MinIO stand-in) for snapshot images.
//
// The store distinguishes *physical* bytes (the encoded image actually held)
// from *logical* bytes (the modeled CRIU image size, dominated by heap pages
// that the simulator does not materialize). All storage and network
// accounting — the basis of the paper's Table 5 — is in logical bytes.

#ifndef PRONGHORN_SRC_STORE_OBJECT_STORE_H_
#define PRONGHORN_SRC_STORE_OBJECT_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/store/striping.h"

namespace pronghorn {

// A stored blob plus its modeled size. The payload is held behind a shared
// immutable buffer so stores, retries, and readers pass multi-MB snapshot
// images around by reference count instead of deep copy; anyone needing to
// mutate the bytes (the fault-injection corruption decorator) builds a fresh
// private buffer first.
struct ObjectBlob {
  ObjectBlob() = default;
  ObjectBlob(std::vector<uint8_t> payload, uint64_t logical)
      : data(std::make_shared<const std::vector<uint8_t>>(std::move(payload))),
        logical_size(logical) {}

  // The payload; an empty buffer when default-constructed.
  const std::vector<uint8_t>& bytes() const;

  std::shared_ptr<const std::vector<uint8_t>> data;
  uint64_t logical_size = 0;
};

// Chunk-granular physical accounting (SnapshotStore layer). Tracks the bytes
// a store actually holds and moves, as opposed to the modeled logical (CRIU
// image) bytes of StoreAccounting proper. Deliberately EXCLUDED from report
// digests: SerializeStoreAccounting writes only the seven logical fields, so
// flat and dedup stores produce bit-identical digests while differing here.
struct PhysicalAccounting {
  uint64_t bytes_stored = 0;        // Resident unique chunk + manifest bytes.
  uint64_t peak_bytes = 0;
  uint64_t flat_bytes_stored = 0;   // What a non-deduplicating store would hold.
  uint64_t peak_flat_bytes = 0;
  uint64_t chunks_stored = 0;       // Resident unique chunks.
  uint64_t chunk_refs = 0;          // Live manifest->chunk references.
  uint64_t dedup_hits = 0;          // Put chunks that were already resident.
  uint64_t dedup_bytes_saved = 0;   // Bytes not stored thanks to dedup.
  uint64_t delta_bytes_shared = 0;  // Saved bytes shared with the immediately
                                    // preceding snapshot of the same prefix.
  uint64_t chunks_fetched = 0;      // Physical chunk transfers to restores.
  uint64_t bytes_fetched = 0;
  uint64_t chunks_prefetched = 0;   // Lazy restore: recorded-working-set fetches.
  uint64_t demand_faults = 0;       // Lazy restore: chunks outside the set.
  uint64_t cache_hits = 0;          // Lazy restore: host-cache hits (no fetch).
  uint64_t chunks_collected = 0;    // GC-reclaimed chunks.
  uint64_t bytes_collected = 0;

  // Flat-vs-physical footprint ratio at the high-water mark; 1.0 for a store
  // that never deduplicated anything (or stored nothing).
  double DedupRatio() const {
    if (peak_bytes == 0) {
      return 1.0;
    }
    return static_cast<double>(peak_flat_bytes) / static_cast<double>(peak_bytes);
  }
};

// Cumulative transfer/storage accounting.
struct StoreAccounting {
  uint64_t logical_bytes_stored = 0;    // Current logical footprint.
  uint64_t peak_logical_bytes = 0;      // High-water mark (Table 5 "max storage").
  uint64_t network_bytes_uploaded = 0;  // Cumulative Put traffic.
  uint64_t network_bytes_downloaded = 0;// Cumulative Get traffic.
  uint64_t put_count = 0;
  uint64_t get_count = 0;
  uint64_t delete_count = 0;
  // Digest-excluded physical view (see PhysicalAccounting above).
  PhysicalAccounting physical;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Stores `blob` under `key`, replacing any existing object.
  virtual Status Put(std::string_view key, ObjectBlob blob) = 0;
  // Fetches a copy of the object.
  virtual Result<ObjectBlob> Get(std::string_view key) = 0;
  virtual Status Delete(std::string_view key) = 0;
  virtual bool Contains(std::string_view key) const = 0;
  // Keys in lexicographic order, optionally filtered by prefix.
  virtual std::vector<std::string> ListKeys(std::string_view prefix = "") const = 0;

  virtual StoreAccounting accounting() const = 0;
};

// Thread-safe in-memory implementation. Keys are lock-striped across
// kStoreStripes independently-locked hash maps and accounting is kept in
// serial-exact atomics (see src/store/striping.h), so concurrent operations
// on different keys never contend on a mutex or a cache line. Observable
// behavior is identical to the historical single-mutex std::map version:
// ListKeys still returns lexicographic order, and any serial operation
// sequence yields a bit-identical StoreAccounting.
class InMemoryObjectStore : public ObjectStore {
 public:
  InMemoryObjectStore() = default;

  Status Put(std::string_view key, ObjectBlob blob) override;
  Result<ObjectBlob> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override;
  StoreAccounting accounting() const override;

 private:
  struct alignas(kCacheLineBytes) Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::string, ObjectBlob, TransparentStringHash,
                       std::equal_to<>>
        objects;
  };

  // Serial-exact atomic mirror of StoreAccounting (flat store: the physical
  // view coincides with the encoded payload, so flat == physical here).
  struct AtomicAccounting {
    std::atomic<uint64_t> logical_bytes_stored{0};
    std::atomic<uint64_t> peak_logical_bytes{0};
    std::atomic<uint64_t> network_bytes_uploaded{0};
    std::atomic<uint64_t> network_bytes_downloaded{0};
    std::atomic<uint64_t> put_count{0};
    std::atomic<uint64_t> get_count{0};
    std::atomic<uint64_t> delete_count{0};
    std::atomic<uint64_t> physical_bytes_stored{0};
    std::atomic<uint64_t> physical_peak_bytes{0};
    std::atomic<uint64_t> chunks_fetched{0};
    std::atomic<uint64_t> bytes_fetched{0};
  };

  std::array<Stripe, kStoreStripes> stripes_;
  AtomicAccounting accounting_;
};

// Durable implementation that persists each object as a file under a root
// directory ("<root>/<escaped key>"), with logical sizes in a sidecar header.
// Used by the persistence examples and tests; semantics match the in-memory
// store.
class FileBackedObjectStore : public ObjectStore {
 public:
  // Creates the root directory if needed. Fails if it cannot be created.
  static Result<std::unique_ptr<FileBackedObjectStore>> Open(std::string root_dir);

  Status Put(std::string_view key, ObjectBlob blob) override;
  Result<ObjectBlob> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override;
  StoreAccounting accounting() const override;

 private:
  explicit FileBackedObjectStore(std::string root_dir);

  std::string PathForKey(std::string_view key) const;
  static std::string EscapeKey(std::string_view key);
  static Result<std::string> UnescapeKey(std::string_view file_name);

  mutable std::mutex mutex_;
  std::string root_dir_;
  StoreAccounting accounting_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_OBJECT_STORE_H_
