#include "src/store/fault_injection.h"

namespace pronghorn {

namespace {

// Applies the plan's scheduled windows at the clock's current instant:
// advances the clock through any active latency window and reports whether
// an outage window covers the op. Windows are evaluated against one snapshot
// of `now` so an injected delay cannot silently end the window mid-check.
bool InOutage(const FaultPlan& plan, SimClock* clock, FaultDomain domain,
              FaultInjectionStats& stats) {
  if (clock == nullptr || plan.windows.empty()) {
    return false;
  }
  const TimePoint now = clock->now();
  bool outage = false;
  for (const FaultWindow& window : plan.windows) {
    if (!window.AppliesTo(domain) || !window.Covers(now)) {
      continue;
    }
    if (window.kind == FaultWindow::Kind::kLatency) {
      clock->Advance(window.extra_latency);
      stats.latency_injections += 1;
    } else {
      outage = true;
    }
  }
  return outage;
}

}  // namespace

void FlipRandomBit(std::vector<uint8_t>& bytes, Rng& rng) {
  if (bytes.empty()) {
    return;
  }
  const uint64_t bit = rng.UniformUint64(bytes.size() * 8);
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

bool FaultPlan::Active() const {
  return get_failure_rate > 0.0 || put_failure_rate > 0.0 ||
         delete_failure_rate > 0.0 || metadata_failure_rate > 0.0 ||
         corruption_rate > 0.0 || torn_write_rate > 0.0 ||
         chunk_corruption_rate > 0.0 || manifest_corruption_rate > 0.0 ||
         !windows.empty();
}

// --- FaultyObjectStore -------------------------------------------------------

void FaultyObjectStore::NoteFault(const char* counter, const char* event) const {
  if (obs_ == nullptr) {
    return;
  }
  obs_->Counter(counter, 1);
  if (event != nullptr) {
    obs_->Instant(obs_track_, event, "fault",
                  clock_ != nullptr ? clock_->now() : TimePoint());
  }
}

bool FaultyObjectStore::ShouldFail(double rate) const {
  if (InOutage(plan_, clock_, FaultDomain::kObjectStore, stats_)) {
    stats_.faults_injected += 1;
    stats_.outage_faults += 1;
    NoteFault("faults.store.injected", "fault:store_outage");
    return true;
  }
  if (rng_.Bernoulli(rate)) {
    stats_.faults_injected += 1;
    NoteFault("faults.store.injected", "fault:store");
    return true;
  }
  return false;
}

Status FaultyObjectStore::Put(std::string_view key, ObjectBlob blob) {
  if (ShouldFail(plan_.put_failure_rate)) {
    return UnavailableError("injected object-store put failure");
  }
  if (rng_.Bernoulli(plan_.torn_write_rate) && !blob.bytes().empty()) {
    // Partial upload: half the payload lands, the call still fails. The
    // stored garbage is an orphan until GC (or a successful rewrite) reaps it.
    // The half-payload copy is the fault's own private buffer — the caller's
    // shared bytes are never mutated.
    const std::vector<uint8_t>& payload = blob.bytes();
    std::vector<uint8_t> half(
        payload.begin(),
        payload.begin() + static_cast<std::ptrdiff_t>(payload.size() / 2));
    stats_.torn_puts += 1;
    stats_.faults_injected += 1;
    NoteFault("faults.store.torn_puts", "fault:torn_put");
    (void)inner_.Put(key, ObjectBlob(std::move(half), blob.logical_size / 2));
    return UnavailableError("injected torn object-store put");
  }
  if (rng_.Bernoulli(plan_.corruption_rate) && !blob.bytes().empty()) {
    // Silent bit rot: flip one bit and report success. Only the snapshot
    // image CRC can catch this, at restore time. Copy-on-corrupt: the
    // payload is deep-copied only when this fault actually fires, so the
    // zero-copy fast path stays intact for healthy puts.
    std::vector<uint8_t> corrupted = blob.bytes();
    FlipRandomBit(corrupted, rng_);
    blob = ObjectBlob(std::move(corrupted), blob.logical_size);
    stats_.corrupted_puts += 1;
    NoteFault("faults.store.corrupted_puts", "fault:corrupted_put");
  }
  return inner_.Put(key, std::move(blob));
}

Result<ObjectBlob> FaultyObjectStore::Get(std::string_view key) {
  if (ShouldFail(plan_.get_failure_rate)) {
    return UnavailableError("injected object-store get failure");
  }
  return inner_.Get(key);
}

Status FaultyObjectStore::Delete(std::string_view key) {
  if (ShouldFail(plan_.delete_failure_rate)) {
    return UnavailableError("injected object-store delete failure");
  }
  return inner_.Delete(key);
}

bool FaultyObjectStore::Contains(std::string_view key) const {
  if (ShouldFail(plan_.metadata_failure_rate)) {
    stats_.metadata_faults += 1;
    return false;  // The metadata index is unreachable.
  }
  return inner_.Contains(key);
}

std::vector<std::string> FaultyObjectStore::ListKeys(std::string_view prefix) const {
  if (ShouldFail(plan_.metadata_failure_rate)) {
    stats_.metadata_faults += 1;
    return {};
  }
  return inner_.ListKeys(prefix);
}

// --- FaultySnapshotStore -----------------------------------------------------

void FaultySnapshotStore::NoteFault(const char* counter, const char* event) const {
  if (obs_ == nullptr) {
    return;
  }
  obs_->Counter(counter, 1);
  if (event != nullptr) {
    obs_->Instant(obs_track_, event, "fault",
                  clock_ != nullptr ? clock_->now() : TimePoint());
  }
}

bool FaultySnapshotStore::ShouldFail(double rate) const {
  if (InOutage(plan_, clock_, FaultDomain::kObjectStore, stats_)) {
    stats_.faults_injected += 1;
    stats_.outage_faults += 1;
    NoteFault("faults.store.injected", "fault:store_outage");
    return true;
  }
  if (rng_.Bernoulli(rate)) {
    stats_.faults_injected += 1;
    NoteFault("faults.store.injected", "fault:store");
    return true;
  }
  return false;
}

Result<SnapshotRef> FaultySnapshotStore::PutSnapshot(std::string_view key,
                                                     ObjectBlob blob) {
  // Draw-for-draw the FaultyObjectStore::Put sequence: fail check, torn
  // check, corruption check (+ one bit draw when it fires).
  if (ShouldFail(plan_.put_failure_rate)) {
    return UnavailableError("injected object-store put failure");
  }
  if (rng_.Bernoulli(plan_.torn_write_rate) && !blob.bytes().empty()) {
    const std::vector<uint8_t>& payload = blob.bytes();
    std::vector<uint8_t> half(
        payload.begin(),
        payload.begin() + static_cast<std::ptrdiff_t>(payload.size() / 2));
    stats_.torn_puts += 1;
    stats_.faults_injected += 1;
    NoteFault("faults.store.torn_puts", "fault:torn_put");
    (void)inner_.PutSnapshot(key, ObjectBlob(std::move(half), blob.logical_size / 2));
    return UnavailableError("injected torn object-store put");
  }
  if (rng_.Bernoulli(plan_.corruption_rate) && !blob.bytes().empty()) {
    // Whole-image bit rot *before* chunking: the damaged region lands in a
    // chunk with a new content address (copy-on-write by construction), so
    // siblings sharing the healthy chunk are untouched and the flat-path
    // "image CRC catches it at restore" semantics carry over unchanged.
    std::vector<uint8_t> corrupted = blob.bytes();
    FlipRandomBit(corrupted, rng_);
    blob = ObjectBlob(std::move(corrupted), blob.logical_size);
    stats_.corrupted_puts += 1;
    NoteFault("faults.store.corrupted_puts", "fault:corrupted_put");
  }
  PRONGHORN_ASSIGN_OR_RETURN(SnapshotRef ref, inner_.PutSnapshot(key, std::move(blob)));
  // Chunk-granular at-rest faults fire after a successful put, on their own
  // RNG stream — the shared trajectory above never sees these draws.
  if (chunk_rng_.Bernoulli(plan_.chunk_corruption_rate)) {
    if (inner_.CorruptChunk(key, chunk_rng_).ok()) {
      stats_.corrupted_chunks += 1;
      NoteFault("faults.store.corrupted_chunks", "fault:corrupted_chunk");
    }
  }
  if (chunk_rng_.Bernoulli(plan_.manifest_corruption_rate)) {
    if (inner_.CorruptManifest(key, chunk_rng_).ok()) {
      stats_.corrupted_manifests += 1;
      NoteFault("faults.store.corrupted_manifests", "fault:corrupted_manifest");
    }
  }
  return ref;
}

Result<std::unique_ptr<SnapshotReader>> FaultySnapshotStore::OpenSnapshot(
    std::string_view key) {
  if (ShouldFail(plan_.get_failure_rate)) {
    return UnavailableError("injected object-store get failure");
  }
  return inner_.OpenSnapshot(key);
}

Status FaultySnapshotStore::DeleteSnapshot(std::string_view key) {
  if (ShouldFail(plan_.delete_failure_rate)) {
    return UnavailableError("injected object-store delete failure");
  }
  return inner_.DeleteSnapshot(key);
}

bool FaultySnapshotStore::ContainsSnapshot(std::string_view key) const {
  if (ShouldFail(plan_.metadata_failure_rate)) {
    stats_.metadata_faults += 1;
    return false;
  }
  return inner_.ContainsSnapshot(key);
}

std::vector<std::string> FaultySnapshotStore::ListSnapshots(
    std::string_view prefix) const {
  if (ShouldFail(plan_.metadata_failure_rate)) {
    stats_.metadata_faults += 1;
    return {};
  }
  return inner_.ListSnapshots(prefix);
}

// --- FaultyKvDatabase --------------------------------------------------------

void FaultyKvDatabase::NoteFault(const char* counter, const char* event) const {
  if (obs_ == nullptr) {
    return;
  }
  obs_->Counter(counter, 1);
  if (event != nullptr) {
    obs_->Instant(obs_track_, event, "fault",
                  clock_ != nullptr ? clock_->now() : TimePoint());
  }
}

bool FaultyKvDatabase::ShouldFail(double rate) const {
  if (InOutage(plan_, clock_, FaultDomain::kDatabase, stats_)) {
    stats_.faults_injected += 1;
    stats_.outage_faults += 1;
    NoteFault("faults.db.injected", "fault:db_outage");
    return true;
  }
  if (rng_.Bernoulli(rate)) {
    stats_.faults_injected += 1;
    NoteFault("faults.db.injected", "fault:db");
    return true;
  }
  return false;
}

Status FaultyKvDatabase::MaybeFail(double rate, const char* operation) {
  if (ShouldFail(rate)) {
    return UnavailableError(std::string("injected database failure: ") + operation);
  }
  return OkStatus();
}

Status FaultyKvDatabase::Put(std::string_view key, std::vector<uint8_t> value) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "put"));
  return inner_.Put(key, std::move(value));
}

Result<std::vector<uint8_t>> FaultyKvDatabase::Get(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.get_failure_rate, "get"));
  return inner_.Get(key);
}

Result<VersionedValue> FaultyKvDatabase::GetVersioned(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.get_failure_rate, "get-versioned"));
  return inner_.GetVersioned(key);
}

Status FaultyKvDatabase::CompareAndSwap(std::string_view key, uint64_t expected_version,
                                        std::vector<uint8_t> value) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "compare-and-swap"));
  return inner_.CompareAndSwap(key, expected_version, std::move(value));
}

Status FaultyKvDatabase::Delete(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.delete_failure_rate, "delete"));
  return inner_.Delete(key);
}

Result<int64_t> FaultyKvDatabase::Increment(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "increment"));
  return inner_.Increment(key);
}

std::vector<std::string> FaultyKvDatabase::ListKeys(std::string_view prefix) const {
  if (ShouldFail(plan_.metadata_failure_rate)) {
    stats_.metadata_faults += 1;
    return {};
  }
  return inner_.ListKeys(prefix);
}

}  // namespace pronghorn
