#include "src/store/fault_injection.h"

namespace pronghorn {

Status FaultyObjectStore::Put(std::string_view key, ObjectBlob blob) {
  if (rng_.Bernoulli(plan_.put_failure_rate)) {
    faults_injected_ += 1;
    return UnavailableError("injected object-store put failure");
  }
  return inner_.Put(key, std::move(blob));
}

Result<ObjectBlob> FaultyObjectStore::Get(std::string_view key) {
  if (rng_.Bernoulli(plan_.get_failure_rate)) {
    faults_injected_ += 1;
    return UnavailableError("injected object-store get failure");
  }
  return inner_.Get(key);
}

Status FaultyObjectStore::Delete(std::string_view key) {
  if (rng_.Bernoulli(plan_.delete_failure_rate)) {
    faults_injected_ += 1;
    return UnavailableError("injected object-store delete failure");
  }
  return inner_.Delete(key);
}

Status FaultyKvDatabase::MaybeFail(double rate, const char* operation) {
  if (rng_.Bernoulli(rate)) {
    faults_injected_ += 1;
    return UnavailableError(std::string("injected database failure: ") + operation);
  }
  return OkStatus();
}

Status FaultyKvDatabase::Put(std::string_view key, std::vector<uint8_t> value) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "put"));
  return inner_.Put(key, std::move(value));
}

Result<std::vector<uint8_t>> FaultyKvDatabase::Get(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.get_failure_rate, "get"));
  return inner_.Get(key);
}

Result<VersionedValue> FaultyKvDatabase::GetVersioned(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.get_failure_rate, "get-versioned"));
  return inner_.GetVersioned(key);
}

Status FaultyKvDatabase::CompareAndSwap(std::string_view key, uint64_t expected_version,
                                        std::vector<uint8_t> value) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "compare-and-swap"));
  return inner_.CompareAndSwap(key, expected_version, std::move(value));
}

Status FaultyKvDatabase::Delete(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.delete_failure_rate, "delete"));
  return inner_.Delete(key);
}

Result<int64_t> FaultyKvDatabase::Increment(std::string_view key) {
  PRONGHORN_RETURN_IF_ERROR(MaybeFail(plan_.put_failure_rate, "increment"));
  return inner_.Increment(key);
}

}  // namespace pronghorn
