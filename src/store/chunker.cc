#include "src/store/chunker.h"

#include <algorithm>
#include <array>

namespace pronghorn {

namespace {

// SplitMix64: seeds the Gear table deterministically at namespace scope so
// chunk boundaries are identical across builds and platforms.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::array<uint64_t, 256> MakeGearTable() {
  std::array<uint64_t, 256> table{};
  uint64_t state = 0x9747b28c9747b28cULL;
  for (uint64_t& entry : table) {
    entry = SplitMix64(state);
  }
  return table;
}

constexpr std::array<uint64_t, 256> kGearTable = MakeGearTable();

// Largest power-of-two mask below `target`, so the expected CDC chunk size
// tracks the configured average.
uint64_t CdcMask(uint32_t target) {
  uint64_t mask = 1;
  while ((mask << 1) < target) {
    mask <<= 1;
  }
  return mask - 1;
}

}  // namespace

ChunkKey HashChunk(std::span<const uint8_t> bytes) {
  // Two independent mixes of the same stream: FNV-1a 64 and an xor-rotate
  // accumulator over SplitMix64-style finalization. 128 bits of address
  // space makes accidental collisions irrelevant at simulation scale.
  uint64_t fnv = 0xcbf29ce484222325ULL;
  uint64_t acc = 0x2545f4914f6cdd1dULL ^ (static_cast<uint64_t>(bytes.size()) << 1);
  for (const uint8_t b : bytes) {
    fnv = (fnv ^ b) * 0x100000001b3ULL;
    acc = (acc + b + 1) * 0xd6e8feb86659fd93ULL;
    acc ^= acc >> 32;
  }
  acc ^= static_cast<uint64_t>(bytes.size());
  acc *= 0xd6e8feb86659fd93ULL;
  acc ^= acc >> 32;
  return ChunkKey{fnv, acc};
}

std::vector<ChunkSpan> SplitChunks(std::span<const uint8_t> bytes,
                                   const ChunkerOptions& options) {
  std::vector<ChunkSpan> chunks;
  if (bytes.empty()) {
    return chunks;
  }
  const uint32_t target = std::max<uint32_t>(1, options.chunk_size);
  if (!options.cdc) {
    chunks.reserve(bytes.size() / target + 1);
    for (uint64_t offset = 0; offset < bytes.size(); offset += target) {
      const uint32_t size = static_cast<uint32_t>(
          std::min<uint64_t>(target, bytes.size() - offset));
      chunks.push_back(
          ChunkSpan{offset, size, HashChunk(bytes.subspan(offset, size))});
    }
    return chunks;
  }

  const uint32_t min_size = std::max<uint32_t>(1, std::min(options.min_size, target));
  const uint32_t max_size = std::max(options.max_size, target);
  const uint64_t mask = CdcMask(target);
  uint64_t start = 0;
  uint64_t hash = 0;
  uint32_t length = 0;
  for (uint64_t i = 0; i < bytes.size(); ++i) {
    hash = (hash << 1) + kGearTable[bytes[i]];
    length += 1;
    const bool boundary =
        (length >= min_size && (hash & mask) == mask) || length >= max_size;
    if (boundary) {
      chunks.push_back(ChunkSpan{start, length,
                                 HashChunk(bytes.subspan(start, length))});
      start = i + 1;
      hash = 0;
      length = 0;
    }
  }
  if (length > 0) {
    chunks.push_back(
        ChunkSpan{start, length, HashChunk(bytes.subspan(start, length))});
  }
  return chunks;
}

}  // namespace pronghorn
