// Deterministic fault schedules for the storage layer.
//
// Distributed deployments lose object-store reads and database round trips
// to transient failures, partial uploads, and flipped bits. These decorators
// wrap any ObjectStore/KvDatabase and inject faults from a seeded FaultPlan,
// letting tests and benches verify the orchestrator's degradation behavior
// (restore failures fall back to the next-best snapshot; knowledge writes
// are buffered through outages; corrupt images are quarantined).
//
// Faults come in two flavors:
//   - Per-operation rates: each op kind fails with kUnavailable with a fixed
//     probability, drawn from a seeded Rng (bit-reproducible across runs).
//   - Scheduled windows: [start, end) intervals of *simulated* time during
//     which a whole domain (object store, database, or both) is down
//     (kOutage) or slow (kLatency adds a fixed delay to every op). Windows
//     require the decorator to hold the simulation's clock; without a clock
//     they are ignored.
//
// Object-store writes additionally support two data-integrity faults:
//   - corruption_rate: the stored image gets one bit flipped. The write
//     "succeeds"; the damage is only caught later by the snapshot CRC.
//   - torn_write_rate: a truncated prefix lands in the store and the call
//     still fails with kUnavailable — a partial upload whose garbage blob
//     must eventually be garbage-collected.

#ifndef PRONGHORN_SRC_STORE_FAULT_INJECTION_H_
#define PRONGHORN_SRC_STORE_FAULT_INJECTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/obs/sink.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {

// Flips one uniformly-drawn bit of `bytes` in place; no-op when empty. The
// single-bit-rot primitive behind corruption_rate, shared with the service
// wire-format tests (which reuse it to prove the frame CRC catches every
// one-bit flip).
void FlipRandomBit(std::vector<uint8_t>& bytes, Rng& rng);

// Which storage service a scheduled fault window hits.
enum class FaultDomain {
  kObjectStore = 0,
  kDatabase = 1,
  kBoth = 2,
};

// One scheduled fault interval in simulated time, half-open [start, end).
struct FaultWindow {
  enum class Kind {
    kOutage = 0,   // Every op in the domain fails with kUnavailable.
    kLatency = 1,  // Every op in the domain takes extra_latency longer.
  };

  Kind kind = Kind::kOutage;
  FaultDomain domain = FaultDomain::kBoth;
  TimePoint start;
  TimePoint end;
  Duration extra_latency;  // kLatency only.

  bool Covers(TimePoint t) const { return t >= start && t < end; }
  bool AppliesTo(FaultDomain domain_in) const {
    return domain == FaultDomain::kBoth || domain == domain_in;
  }
};

// Where in a shard's processing loop an injected crash fires, relative to
// the shard's Nth processed envelope.
enum class ServiceCrashStage {
  // Before the envelope is processed: the request is parked, the shard dies,
  // and the supervisor re-queues the envelope at the front after recovery —
  // the client just sees a slow reply.
  kEnqueue = 0,
  // After the envelope is processed (reply already sent) but before its
  // deferred batch flushes: the shard dies taking its in-memory buffers with
  // it, so only the write-ahead journal can save the observations.
  kMidBatch = 1,
  // After a group commit lands in the Database but before the journal
  // truncates: recovery replays records that were already committed,
  // exercising the high-water-mark dedup.
  kPreTruncate = 2,
};

// One scheduled shard crash. Fires exactly once, when shard `shard`
// processes its `at_op`-th envelope (1-based, counted across recoveries).
struct ServiceCrash {
  uint32_t shard = 0;
  uint64_t at_op = 0;
  ServiceCrashStage stage = ServiceCrashStage::kEnqueue;
};

// One scheduled shard stall: the shard sleeps `wall_millis` of host time
// before processing its `at_op`-th envelope. Combined with a small queue and
// a shed deadline this creates deterministic queue-overflow pressure.
struct ServiceStall {
  uint32_t shard = 0;
  uint64_t at_op = 0;
  uint32_t wall_millis = 0;
};

// Service-level faults: scheduled, deterministic by construction (no rates,
// no RNG — a crash either is in the plan or is not), so a crash-injected run
// is reproducible record for record. Carried inside FaultPlan so one chaos
// knob configures the whole stack, but consumed by OrchestratorService, not
// by the storage decorators below.
struct ServiceFaultPlan {
  std::vector<ServiceCrash> crashes;
  std::vector<ServiceStall> stalls;

  bool Active() const { return !crashes.empty() || !stalls.empty(); }
  // Highest shard index any entry names; validation material for drivers
  // that know the service's shard count.
  uint32_t MaxShardNamed() const {
    uint32_t max_shard = 0;
    for (const ServiceCrash& crash : crashes) {
      max_shard = std::max(max_shard, crash.shard);
    }
    for (const ServiceStall& stall : stalls) {
      max_shard = std::max(max_shard, stall.shard);
    }
    return max_shard;
  }
};

struct FaultPlan {
  // Probability that each operation kind fails with kUnavailable.
  double get_failure_rate = 0.0;
  double put_failure_rate = 0.0;
  double delete_failure_rate = 0.0;
  // Metadata/list operations (ObjectStore Contains/ListKeys, KvDatabase
  // ListKeys). These interfaces cannot return a Status, so a metadata fault
  // models an unreachable index: Contains reports false, ListKeys reports
  // nothing.
  double metadata_failure_rate = 0.0;
  // Object-store Put bit-flip corruption (stored image is damaged, write
  // reports success).
  double corruption_rate = 0.0;
  // Object-store Put torn write (truncated blob stored, write reports
  // kUnavailable).
  double torn_write_rate = 0.0;
  // Chunk-granular at-rest faults (DedupSnapshotStore only; flat stores have
  // no chunks, so these rates are ignored for them). Both fire *after* a
  // successful put, from an independent RNG stream, so enabling them never
  // perturbs the flat-store fault trajectory.
  //   chunk_corruption_rate: one chunk of the stored snapshot is rewritten
  //     through copy-on-write with a flipped bit — snapshots sharing the
  //     original chunk stay healthy; the damaged snapshot fails its image
  //     CRC at restore.
  //   manifest_corruption_rate: one bit of the serialized chunk manifest is
  //     flipped — the next OpenSnapshot fails the manifest CRC (kDataLoss)
  //     and feeds the quarantine ledger.
  double chunk_corruption_rate = 0.0;
  double manifest_corruption_rate = 0.0;

  // Scheduled outage/latency windows (simulated time; need a clock).
  std::vector<FaultWindow> windows;

  // Service-level faults (shard crashes, stalls). Consumed by
  // OrchestratorService; the storage decorators ignore them, and they do not
  // count toward Active() — a plan that only crashes shards must not wrap
  // the stores in fault decorators.
  ServiceFaultPlan service;

  uint64_t seed = 0;

  // True when any *storage* fault can ever fire (a zero plan lets
  // simulations skip the decorators entirely, preserving byte-identical
  // no-fault baselines). Service faults are reported by service.Active().
  bool Active() const;
};

// What a decorator injected so far (mirrored into the platform reports).
struct FaultInjectionStats {
  uint64_t faults_injected = 0;  // Ops failed with kUnavailable (rate + outage).
  uint64_t outage_faults = 0;    // Subset of faults_injected from kOutage windows.
  uint64_t metadata_faults = 0;  // Contains/ListKeys deflections (also counted above).
  uint64_t corrupted_puts = 0;
  uint64_t torn_puts = 0;
  uint64_t latency_injections = 0;
  uint64_t corrupted_chunks = 0;     // Chunk-granular at-rest bit rot.
  uint64_t corrupted_manifests = 0;  // Manifest-frame bit rot.
};

// ObjectStore decorator. The inner store is borrowed and must outlive this.
// `clock` (borrowed, may be null) enables scheduled windows and receives the
// injected latency of kLatency windows.
class FaultyObjectStore : public ObjectStore {
 public:
  FaultyObjectStore(ObjectStore& inner, FaultPlan plan, SimClock* clock = nullptr)
      : inner_(inner),
        plan_(std::move(plan)),
        clock_(clock),
        rng_(HashCombine(plan_.seed, 0xfa17ULL)) {}

  Status Put(std::string_view key, ObjectBlob blob) override;
  Result<ObjectBlob> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override;
  StoreAccounting accounting() const override { return inner_.accounting(); }

  const FaultInjectionStats& stats() const { return stats_; }
  uint64_t faults_injected() const { return stats_.faults_injected; }

  // Borrowed observability sink; injected faults become counters plus 'i'
  // instants on `track` at the simulated fault time.
  void set_obs(ObsSink* obs, ObsTrack track) {
    obs_ = obs;
    obs_track_ = track;
  }

 private:
  // Applies windows and the per-op rate; true means the op must fail.
  bool ShouldFail(double rate) const;
  // Emits the counter (and instant, when `event` is non-null) for one
  // injected fault.
  void NoteFault(const char* counter, const char* event) const;

  ObjectStore& inner_;
  FaultPlan plan_;
  SimClock* clock_;
  mutable Rng rng_;
  mutable FaultInjectionStats stats_;
  ObsSink* obs_ = nullptr;
  ObsTrack obs_track_;
};

// SnapshotStore decorator: the chunk-granular sibling of FaultyObjectStore.
// Seeded with the SAME salt and drawing in the SAME order per logical
// operation, so a dedup deployment under chaos replays the exact fault
// trajectory of a flat deployment whose decorator wraps the ObjectStore —
// that equivalence is what keeps simulation digests bit-identical with the
// store swapped. Chunk/manifest faults draw from an independent stream
// (salt 0xc417) after a put succeeds, so enabling them cannot shift the
// shared trajectory either. The inner store is borrowed.
class FaultySnapshotStore : public SnapshotStore {
 public:
  FaultySnapshotStore(SnapshotStore& inner, FaultPlan plan, SimClock* clock = nullptr)
      : inner_(inner),
        plan_(std::move(plan)),
        clock_(clock),
        rng_(HashCombine(plan_.seed, 0xfa17ULL)),
        chunk_rng_(HashCombine(plan_.seed, 0xc417ULL)) {}

  Result<SnapshotRef> PutSnapshot(std::string_view key, ObjectBlob blob) override;
  Result<std::unique_ptr<SnapshotReader>> OpenSnapshot(std::string_view key) override;
  Status DeleteSnapshot(std::string_view key) override;
  bool ContainsSnapshot(std::string_view key) const override;
  std::vector<std::string> ListSnapshots(std::string_view prefix) const override;
  Status Pin(std::string_view key) override { return inner_.Pin(key); }
  Status Unpin(std::string_view key) override { return inner_.Unpin(key); }
  uint64_t CollectGarbage() override { return inner_.CollectGarbage(); }
  StoreAccounting accounting() const override { return inner_.accounting(); }
  Status CorruptChunk(std::string_view key, Rng& rng) override {
    return inner_.CorruptChunk(key, rng);
  }
  Status CorruptManifest(std::string_view key, Rng& rng) override {
    return inner_.CorruptManifest(key, rng);
  }

  const FaultInjectionStats& stats() const { return stats_; }
  uint64_t faults_injected() const { return stats_.faults_injected; }

  // Borrowed observability sink; also forwarded to the inner store so its
  // chunk_fetch spans land on the same track.
  void set_obs(ObsSink* obs, ObsTrack track) override {
    obs_ = obs;
    obs_track_ = track;
    inner_.set_obs(obs, track);
  }

 private:
  bool ShouldFail(double rate) const;
  void NoteFault(const char* counter, const char* event) const;

  SnapshotStore& inner_;
  FaultPlan plan_;
  SimClock* clock_;
  mutable Rng rng_;        // Shared-trajectory stream (salt 0xfa17).
  mutable Rng chunk_rng_;  // Chunk/manifest fault stream (salt 0xc417).
  mutable FaultInjectionStats stats_;
  ObsSink* obs_ = nullptr;
  ObsTrack obs_track_;
};

// KvDatabase decorator. Reads and writes fail independently per the plan
// (CAS and Increment count as writes). The inner database is borrowed.
class FaultyKvDatabase : public KvDatabase {
 public:
  FaultyKvDatabase(KvDatabase& inner, FaultPlan plan, SimClock* clock = nullptr)
      : inner_(inner),
        plan_(std::move(plan)),
        clock_(clock),
        rng_(HashCombine(plan_.seed, 0xfadbULL)) {}

  Status Put(std::string_view key, std::vector<uint8_t> value) override;
  Result<std::vector<uint8_t>> Get(std::string_view key) override;
  Result<VersionedValue> GetVersioned(std::string_view key) override;
  Status CompareAndSwap(std::string_view key, uint64_t expected_version,
                        std::vector<uint8_t> value) override;
  Status Delete(std::string_view key) override;
  Result<int64_t> Increment(std::string_view key) override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override;
  KvAccounting accounting() const override { return inner_.accounting(); }

  const FaultInjectionStats& stats() const { return stats_; }
  uint64_t faults_injected() const { return stats_.faults_injected; }

  // Borrowed observability sink; see FaultyObjectStore::set_obs.
  void set_obs(ObsSink* obs, ObsTrack track) {
    obs_ = obs;
    obs_track_ = track;
  }

 private:
  bool ShouldFail(double rate) const;
  Status MaybeFail(double rate, const char* operation);
  void NoteFault(const char* counter, const char* event) const;

  KvDatabase& inner_;
  FaultPlan plan_;
  SimClock* clock_;
  mutable Rng rng_;
  mutable FaultInjectionStats stats_;
  ObsSink* obs_ = nullptr;
  ObsTrack obs_track_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_FAULT_INJECTION_H_
