// Fault-injecting decorators for the storage layer.
//
// Distributed deployments lose object-store reads and database round trips
// to transient failures. These decorators wrap any ObjectStore/KvDatabase
// and fail a configurable fraction of operations with kUnavailable, letting
// tests and benches verify the orchestrator's degradation behavior (restore
// failures fall back to cold starts; knowledge writes surface errors).

#ifndef PRONGHORN_SRC_STORE_FAULT_INJECTION_H_
#define PRONGHORN_SRC_STORE_FAULT_INJECTION_H_

#include "src/common/rng.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"

namespace pronghorn {

struct FaultPlan {
  // Probability that each operation kind fails with kUnavailable.
  double get_failure_rate = 0.0;
  double put_failure_rate = 0.0;
  double delete_failure_rate = 0.0;

  uint64_t seed = 0;
};

// ObjectStore decorator. The inner store is borrowed and must outlive this.
class FaultyObjectStore : public ObjectStore {
 public:
  FaultyObjectStore(ObjectStore& inner, FaultPlan plan)
      : inner_(inner), plan_(plan), rng_(HashCombine(plan.seed, 0xfa17ULL)) {}

  Status Put(std::string_view key, ObjectBlob blob) override;
  Result<ObjectBlob> Get(std::string_view key) override;
  Status Delete(std::string_view key) override;
  bool Contains(std::string_view key) const override { return inner_.Contains(key); }
  std::vector<std::string> ListKeys(std::string_view prefix) const override {
    return inner_.ListKeys(prefix);
  }
  StoreAccounting accounting() const override { return inner_.accounting(); }

  uint64_t faults_injected() const { return faults_injected_; }

 private:
  ObjectStore& inner_;
  FaultPlan plan_;
  Rng rng_;
  uint64_t faults_injected_ = 0;
};

// KvDatabase decorator. Reads and writes fail independently per the plan
// (CAS counts as a write). The inner database is borrowed.
class FaultyKvDatabase : public KvDatabase {
 public:
  FaultyKvDatabase(KvDatabase& inner, FaultPlan plan)
      : inner_(inner), plan_(plan), rng_(HashCombine(plan.seed, 0xfadbULL)) {}

  Status Put(std::string_view key, std::vector<uint8_t> value) override;
  Result<std::vector<uint8_t>> Get(std::string_view key) override;
  Result<VersionedValue> GetVersioned(std::string_view key) override;
  Status CompareAndSwap(std::string_view key, uint64_t expected_version,
                        std::vector<uint8_t> value) override;
  Status Delete(std::string_view key) override;
  Result<int64_t> Increment(std::string_view key) override;
  std::vector<std::string> ListKeys(std::string_view prefix) const override {
    return inner_.ListKeys(prefix);
  }
  KvAccounting accounting() const override { return inner_.accounting(); }

  uint64_t faults_injected() const { return faults_injected_; }

 private:
  Status MaybeFail(double rate, const char* operation);

  KvDatabase& inner_;
  FaultPlan plan_;
  Rng rng_;
  uint64_t faults_injected_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_STORE_FAULT_INJECTION_H_
