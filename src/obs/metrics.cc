#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace pronghorn {

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<size_t>(value);
  }
  int high_bit =
      static_cast<int>(std::bit_width(value)) - 1;  // >= kSubBucketBits here.
  if (high_bit > 61) {
    high_bit = 61;  // Saturate: everything >= 2^62 lands in the top octave.
    value = (uint64_t{1} << 62) - 1;
  }
  const int shift = high_bit - kSubBucketBits;
  const size_t sub = static_cast<size_t>((value >> shift) & (kSubBuckets - 1));
  return static_cast<size_t>(high_bit - kSubBucketBits + 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < static_cast<size_t>(kSubBuckets)) {
    return index;
  }
  const int high_bit = static_cast<int>(index / kSubBuckets) + kSubBucketBits - 1;
  const uint64_t sub = index % kSubBuckets;
  return (static_cast<uint64_t>(kSubBuckets) + sub) << (high_bit - kSubBucketBits);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < static_cast<size_t>(kSubBuckets)) {
    return index + 1;
  }
  const int high_bit = static_cast<int>(index / kSubBuckets) + kSubBucketBits - 1;
  return BucketLowerBound(index) + (uint64_t{1} << (high_bit - kSubBucketBits));
}

void LatencyHistogram::AddCount(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  buckets_[BucketIndex(value)] += count;
  if (total_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += count;
  sum_ += value * count;
}

void LatencyHistogram::Serialize(ByteWriter& writer) const {
  writer.WriteVarint(total_);
  writer.WriteVarint(sum_);
  writer.WriteVarint(min_);
  writer.WriteVarint(max_);
  // Sparse encoding: fleet histograms populate a tiny fraction of the
  // ~1200-bucket layout.
  uint64_t nonzero = 0;
  for (const uint64_t count : buckets_) {
    nonzero += count != 0 ? 1 : 0;
  }
  writer.WriteVarint(nonzero);
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] != 0) {
      writer.WriteVarint(i);
      writer.WriteVarint(buckets_[i]);
    }
  }
}

Result<LatencyHistogram> LatencyHistogram::Deserialize(ByteReader& reader) {
  LatencyHistogram out;
  PRONGHORN_ASSIGN_OR_RETURN(out.total_, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(out.sum_, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(out.min_, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(out.max_, reader.ReadVarint());
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t nonzero, reader.ReadVarint());
  for (uint64_t n = 0; n < nonzero; ++n) {
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t index, reader.ReadVarint());
    PRONGHORN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    if (index >= kBucketCount) {
      return DataLossError("latency histogram bucket index out of range");
    }
    out.buckets_[index] = count;
  }
  return out;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) {
    return;
  }
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

double LatencyHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 100.0);
  // Hyndman & Fan type 7 (the stats.h convention): the target sits at
  // fractional rank q/100 * (n - 1) in the sorted sample; locate that rank in
  // the cumulative bucket counts and interpolate linearly inside the bucket.
  const double rank = q / 100.0 * static_cast<double>(total_ - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const double first_rank = static_cast<double>(seen);
    seen += buckets_[i];
    if (rank >= static_cast<double>(seen)) {
      continue;
    }
    const double lo = static_cast<double>(std::max(BucketLowerBound(i), min_));
    const double hi =
        static_cast<double>(std::min(BucketUpperBound(i) - 1, max_));
    if (buckets_[i] == 1 || hi <= lo) {
      return lo;
    }
    // Spread the bucket's occupants evenly over its clamped span.
    const double within =
        (rank - first_rank) / static_cast<double>(buckets_[i] - 1);
    return lo + (hi - lo) * std::min(within, 1.0);
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::ToAsciiArt(size_t width) const {
  if (total_ == 0 || width == 0) {
    return "(empty)";
  }
  const size_t first = BucketIndex(min_);
  const size_t last = BucketIndex(max_);
  const size_t span = last - first + 1;
  std::string art(width, ' ');
  static constexpr const char kGlyphs[] = " .:-=+*#%@";
  uint64_t max_count = 1;
  for (size_t i = first; i <= last; ++i) {
    max_count = std::max(max_count, buckets_[i]);
  }
  for (size_t col = 0; col < width; ++col) {
    const size_t begin = first + col * span / width;
    const size_t end = std::max(begin + 1, first + (col + 1) * span / width);
    uint64_t count = 0;
    for (size_t i = begin; i < end && i <= last; ++i) {
      count += buckets_[i];
    }
    const size_t glyph =
        count == 0 ? 0
                   : 1 + static_cast<size_t>(count * (sizeof(kGlyphs) - 3) /
                                             max_count);
    art[col] = kGlyphs[std::min(glyph, sizeof(kGlyphs) - 2)];
  }
  return art;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].Merge(histogram);
  }
}

namespace {

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  char buf[160];
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ": %" PRIu64, value);
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ": %.6g", value);
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %" PRIu64 ", \"min\": %" PRIu64
                  ", \"max\": %" PRIu64
                  ", \"mean\": %.3f, \"p50\": %.1f, \"p90\": %.1f, \"p99\": "
                  "%.1f, \"buckets\": [",
                  histogram.count(), histogram.min(), histogram.max(),
                  histogram.mean(), histogram.Quantile(50),
                  histogram.Quantile(90), histogram.Quantile(99));
    out += buf;
    bool first_bucket = true;
    for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      if (histogram.buckets()[i] == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 ", %" PRIu64 "]",
                    first_bucket ? "" : ", ",
                    LatencyHistogram::BucketLowerBound(i),
                    histogram.buckets()[i]);
      first_bucket = false;
      out += buf;
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

void MetricsRegistry::IncrementCounter(std::string_view name, uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::ObserveLatency(std::string_view histogram,
                                     uint64_t value_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  data_.histograms[std::string(histogram)].Add(value_us);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

}  // namespace pronghorn
