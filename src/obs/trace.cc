#include "src/obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <utility>

namespace pronghorn {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::WallNanosNow() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::Record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  recorded_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
}

void TraceRecorder::RegisterProcess(uint32_t pid, std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

void TraceRecorder::RegisterThread(uint32_t pid, uint32_t tid, std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = std::move(name);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring has wrapped, `next_` points at the oldest.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

uint64_t TraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - ring_.size();
}

namespace {

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::map<uint32_t, std::string> process_names;
  std::map<std::pair<uint32_t, uint32_t>, std::string> thread_names;
  uint64_t dropped_count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    process_names = process_names_;
    thread_names = thread_names_;
    dropped_count = recorded_ - ring_.size();
  }

  std::string out = "{\"displayTimeUnit\": \"ms\", \"droppedEvents\": ";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_count);
  out += buf;
  out += ", \"traceEvents\": [\n";
  bool first = true;
  const auto separator = [&] {
    out += first ? "  " : ",\n  ";
    first = false;
  };
  for (const auto& [pid, name] : process_names) {
    separator();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %u, "
                  "\"tid\": 0, \"args\": {\"name\": ",
                  pid);
    out += buf;
    AppendJsonString(out, name);
    out += "}}";
  }
  for (const auto& [track, name] : thread_names) {
    separator();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %u, "
                  "\"tid\": %u, \"args\": {\"name\": ",
                  track.first, track.second);
    out += buf;
    AppendJsonString(out, name);
    out += "}}";
  }
  for (const TraceEvent& event : events) {
    separator();
    out += "{\"ph\": \"";
    out += event.phase;
    out += "\", \"name\": ";
    AppendJsonString(out, event.name);
    out += ", \"cat\": ";
    AppendJsonString(out, event.category);
    std::snprintf(buf, sizeof(buf), ", \"pid\": %u, \"tid\": %u, \"ts\": %" PRId64,
                  event.pid, event.tid, event.ts_us);
    out += buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ", \"dur\": %" PRId64, event.dur_us);
      out += buf;
    }
    if (event.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    std::snprintf(buf, sizeof(buf), ", \"args\": {\"wall_ns\": %" PRId64 "}}",
                  event.wall_ns);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open '" + path + "' for writing");
  }
  out << ToChromeJson();
  out.flush();
  if (!out) {
    return InternalError("short write to '" + path + "'");
  }
  return OkStatus();
}

namespace {

// Minimal recursive-descent JSON reader for the subset ToChromeJson emits.
// Values become one of: string, double, object (map), array (vector).
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  struct Value;
  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;

  struct Value {
    // Exactly one of these is meaningful, keyed by `kind`.
    enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray } kind =
        Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::shared_ptr<Object> object;
    std::shared_ptr<Array> array;
  };

  Result<Value> Parse() {
    PRONGHORN_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return DataLossError("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return DataLossError("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      Value value;
      value.kind = Value::Kind::kString;
      PRONGHORN_ASSIGN_OR_RETURN(value.text, ParseString());
      return value;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      Value value;
      value.kind = Value::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      Value value;
      value.kind = Value::Kind::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Value{};
    }
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return DataLossError("expected '\"' in JSON");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return DataLossError("truncated \\u escape in JSON string");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return DataLossError("bad \\u escape in JSON string");
            }
          }
          // ToChromeJson only emits \u for control characters.
          out += static_cast<char>(code);
          break;
        }
        default:
          out += escape;  // \" \\ \/ and friends.
      }
    }
    return DataLossError("unterminated JSON string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return DataLossError("expected JSON number");
    }
    Value value;
    value.kind = Value::Kind::kNumber;
    value.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                               nullptr);
    return value;
  }

  Result<Value> ParseObject() {
    if (!Consume('{')) {
      return DataLossError("expected '{' in JSON");
    }
    Value value;
    value.kind = Value::Kind::kObject;
    value.object = std::make_shared<Object>();
    if (Consume('}')) {
      return value;
    }
    while (true) {
      PRONGHORN_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) {
        return DataLossError("expected ':' in JSON object");
      }
      PRONGHORN_ASSIGN_OR_RETURN(Value member, ParseValue());
      value.object->emplace(std::move(key), std::move(member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return DataLossError("expected ',' or '}' in JSON object");
    }
  }

  Result<Value> ParseArray() {
    if (!Consume('[')) {
      return DataLossError("expected '[' in JSON");
    }
    Value value;
    value.kind = Value::Kind::kArray;
    value.array = std::make_shared<Array>();
    if (Consume(']')) {
      return value;
    }
    while (true) {
      PRONGHORN_ASSIGN_OR_RETURN(Value element, ParseValue());
      value.array->push_back(std::move(element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return DataLossError("expected ',' or ']' in JSON array");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

double NumberField(const JsonReader::Object& object, const char* key) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != JsonReader::Value::Kind::kNumber) {
    return 0.0;
  }
  return it->second.number;
}

std::string StringField(const JsonReader::Object& object, const char* key) {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != JsonReader::Value::Kind::kString) {
    return {};
  }
  return it->second.text;
}

}  // namespace

Result<ChromeTrace> ParseChromeTrace(std::string_view json) {
  JsonReader reader(json);
  PRONGHORN_ASSIGN_OR_RETURN(JsonReader::Value root, reader.Parse());
  if (root.kind != JsonReader::Value::Kind::kObject) {
    return DataLossError("trace JSON root must be an object");
  }
  const auto events_it = root.object->find("traceEvents");
  if (events_it == root.object->end() ||
      events_it->second.kind != JsonReader::Value::Kind::kArray) {
    return DataLossError("trace JSON has no traceEvents array");
  }

  ChromeTrace trace;
  for (const JsonReader::Value& entry : *events_it->second.array) {
    if (entry.kind != JsonReader::Value::Kind::kObject) {
      return DataLossError("trace event is not an object");
    }
    const JsonReader::Object& object = *entry.object;
    const std::string phase = StringField(object, "ph");
    if (phase.empty()) {
      return DataLossError("trace event has no ph");
    }
    const uint32_t pid = static_cast<uint32_t>(NumberField(object, "pid"));
    const uint32_t tid = static_cast<uint32_t>(NumberField(object, "tid"));
    if (phase == "M") {
      const auto args_it = object.find("args");
      if (args_it == object.end() ||
          args_it->second.kind != JsonReader::Value::Kind::kObject) {
        continue;
      }
      const std::string track_name = StringField(*args_it->second.object, "name");
      if (StringField(object, "name") == "process_name") {
        trace.process_names[pid] = track_name;
      } else if (StringField(object, "name") == "thread_name") {
        trace.thread_names[{pid, tid}] = track_name;
      }
      continue;
    }
    TraceEvent event;
    event.phase = phase[0];
    event.name = StringField(object, "name");
    event.category = StringField(object, "cat");
    event.pid = pid;
    event.tid = tid;
    event.ts_us = static_cast<int64_t>(NumberField(object, "ts"));
    event.dur_us = static_cast<int64_t>(NumberField(object, "dur"));
    const auto args_it = object.find("args");
    if (args_it != object.end() &&
        args_it->second.kind == JsonReader::Value::Kind::kObject) {
      event.wall_ns = static_cast<int64_t>(
          NumberField(*args_it->second.object, "wall_ns"));
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

}  // namespace pronghorn
