// Lifecycle tracing: a bounded in-memory recorder emitting Chrome
// trace_event JSON.
//
// Every span carries two timelines: `ts_us` is *simulated* time (the
// SimClock instant the event describes) and `wall_ns` is wall-clock
// nanoseconds since the recorder was constructed (where the host actually
// spent its time). The simulated timeline is what chrome://tracing and
// Perfetto render; the wall timeline rides along in each event's args so
// host-side profiling stays available without a second file.
//
// The recorder is a fixed-capacity ring buffer: at fleet scale a run can
// emit millions of spans, and tracing must never grow without bound or
// perturb the simulation. When the ring wraps, the oldest events are
// dropped and counted; `dropped()` makes the truncation visible instead of
// silent.
//
// Wall-clock reads happen ONLY here (and nowhere else in the simulator —
// the determinism contract in src/common/clock.h). Trace output is
// observability, never digest input, so the wall timestamps cannot leak
// into reproducible results.

#ifndef PRONGHORN_SRC_OBS_TRACE_H_
#define PRONGHORN_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace pronghorn {

// One Chrome trace_event. Phase 'X' is a complete span (ts + dur), 'i' an
// instant. Track identity follows the trace_event model: pid groups tracks
// (one per deployment), tid separates lanes within a group.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  uint32_t pid = 0;
  uint32_t tid = 0;
  int64_t ts_us = 0;   // Simulated time.
  int64_t dur_us = 0;  // 'X' only.
  int64_t wall_ns = 0; // Wall clock, relative to recorder construction.
};

// A parsed trace: events plus the track-naming metadata.
struct ChromeTrace {
  std::vector<TraceEvent> events;
  std::map<uint32_t, std::string> process_names;
  std::map<std::pair<uint32_t, uint32_t>, std::string> thread_names;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  // Appends one event; when the ring is full the oldest event is dropped.
  void Record(TraceEvent event);

  void RegisterProcess(uint32_t pid, std::string name);
  void RegisterThread(uint32_t pid, uint32_t tid, std::string name);

  // Retained events, oldest first.
  std::vector<TraceEvent> Events() const;
  uint64_t recorded() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  // Wall-clock nanoseconds since this recorder was constructed. The only
  // wall-clock read in the simulator.
  int64_t WallNanosNow() const;

  // Chrome trace_event JSON ({"displayTimeUnit": ..., "traceEvents": [...]})
  // with metadata events naming every registered track. Loadable in
  // chrome://tracing and Perfetto.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        // Ring write cursor once full.
  uint64_t recorded_ = 0;  // Total Record() calls.
  std::map<uint32_t, std::string> process_names_;
  std::map<std::pair<uint32_t, uint32_t>, std::string> thread_names_;
};

// Parses the subset of Chrome trace JSON that ToChromeJson emits (used by
// the schema round-trip test and offline tooling). Unknown keys are ignored;
// metadata events populate the name maps instead of `events`.
Result<ChromeTrace> ParseChromeTrace(std::string_view json);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_OBS_TRACE_H_
