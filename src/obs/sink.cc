#include "src/obs/sink.h"

namespace pronghorn {

StandardObs::StandardObs() : StandardObs(Options()) {}

StandardObs::StandardObs(Options options)
    : options_(options),
      trace_(options.trace ? options.trace_capacity : 1) {}

uint32_t StandardObs::RegisterProcess(std::string_view name) {
  const uint32_t pid = next_pid_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace) {
    trace_.RegisterProcess(pid, std::string(name));
  }
  return pid;
}

void StandardObs::RegisterThread(ObsTrack track, std::string_view name) {
  if (options_.trace) {
    trace_.RegisterThread(track.pid, track.tid, std::string(name));
  }
}

void StandardObs::Counter(std::string_view name, uint64_t delta) {
  if (options_.metrics) {
    metrics_.IncrementCounter(name, delta);
  }
}

void StandardObs::Gauge(std::string_view name, double value) {
  if (options_.metrics) {
    metrics_.SetGauge(name, value);
  }
}

void StandardObs::Observe(std::string_view histogram, Duration value) {
  if (options_.metrics) {
    const int64_t micros = value.ToMicros();
    metrics_.ObserveLatency(histogram,
                            micros < 0 ? 0 : static_cast<uint64_t>(micros));
  }
}

void StandardObs::Span(ObsTrack track, std::string_view name,
                       std::string_view category, TimePoint begin,
                       Duration duration) {
  if (!options_.trace) {
    return;
  }
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.pid = track.pid;
  event.tid = track.tid;
  event.ts_us = begin.ToMicros();
  event.dur_us = duration.ToMicros();
  event.wall_ns = trace_.WallNanosNow();
  trace_.Record(std::move(event));
}

void StandardObs::Instant(ObsTrack track, std::string_view name,
                         std::string_view category, TimePoint at) {
  if (!options_.trace) {
    return;
  }
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'i';
  event.pid = track.pid;
  event.tid = track.tid;
  event.ts_us = at.ToMicros();
  event.wall_ns = trace_.WallNanosNow();
  trace_.Record(std::move(event));
}

}  // namespace pronghorn
