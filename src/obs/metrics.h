// Observability metrics: named counters, gauges, and exact-merge latency
// histograms.
//
// The paper's evaluation (§4) is entirely about latency *distributions* and
// per-phase orchestration overheads, so the kernel needs a way to accumulate
// them that (a) costs nothing when disabled, (b) merges exactly across fleet
// shards, and (c) never perturbs the simulation's determinism contract.
//
// LatencyHistogram uses a fixed log-linear bucket layout computed with pure
// integer arithmetic (HDR-histogram style): every histogram ever constructed
// has the same bucket boundaries, so merging is element-wise addition —
// exact, commutative, and associative. A fleet report's histograms are
// therefore bit-identical at any --threads, for any shard completion order.
//
// Quantile() follows the same convention as Percentile() in
// src/common/stats.h (linear interpolation between closest ranks, Hyndman &
// Fan type 7), applied at bucket granularity: the rank is located in the
// cumulative bucket counts and interpolated linearly inside the bucket span.

#ifndef PRONGHORN_SRC_OBS_METRICS_H_
#define PRONGHORN_SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace pronghorn {

// Fixed-layout log-linear histogram of non-negative integer values
// (microseconds by convention). Values 0..15 get exact unit buckets; above
// that, each power-of-two octave is split into 16 equal sub-buckets, up to a
// saturation cap of 2^62 (values beyond land in the top bucket).
class LatencyHistogram {
 public:
  // 16 unit buckets + 16 sub-buckets for each octave [2^4, 2^62).
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  static constexpr int kOctaves = 62 - kSubBucketBits;     // 58
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kSubBuckets) * (kOctaves + 1);

  // The bucket index of `value`; identical on every platform (integer-only).
  static size_t BucketIndex(uint64_t value);
  // Inclusive lower bound of bucket `index` in value space.
  static uint64_t BucketLowerBound(size_t index);
  // Exclusive upper bound of bucket `index` in value space.
  static uint64_t BucketUpperBound(size_t index);

  void Add(uint64_t value) { AddCount(value, 1); }
  void AddCount(uint64_t value, uint64_t count);

  // Element-wise bucket addition: exact, order-insensitive, and associative,
  // because every histogram shares one fixed layout.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  uint64_t min() const { return total_ == 0 ? 0 : min_; }
  uint64_t max() const { return total_ == 0 ? 0 : max_; }
  double mean() const;

  // Quantile in [0, 100] under the codebase-wide convention (stats.h):
  // linear interpolation between closest ranks, evaluated on the bucket
  // cumulative counts and interpolated within the winning bucket's span.
  // Returns 0 for an empty histogram.
  double Quantile(double q) const;

  const std::array<uint64_t, kBucketCount>& buckets() const { return buckets_; }

  // Exact binary round trip (sparse bucket encoding plus the scalar state),
  // for simulation checkpoints that must restore a histogram bit-for-bit —
  // Deserialize(Serialize(h)) == h under operator==.
  void Serialize(ByteWriter& writer) const;
  static Result<LatencyHistogram> Deserialize(ByteReader& reader);

  // Compact ASCII sparkline between min and max for logs.
  std::string ToAsciiArt(size_t width = 60) const;

  bool operator==(const LatencyHistogram& other) const = default;

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// A point-in-time copy of a registry's contents. Plain maps so callers can
// serialize, diff, or merge snapshots without holding any lock. Merging sums
// counters and histograms and keeps the last-written gauge per key.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHistogram> histograms;

  void Merge(const MetricsSnapshot& other);
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
  // max, mean, p50, p90, p99, buckets: [[lower_bound, count], ...]}}}.
  std::string ToJson() const;
};

// Thread-safe named-metric accumulator. Instrumentation sites pay one mutex
// acquisition per emission; simulations that do not enable observability
// never construct one (the ObsSink pointer is null and sites skip the call).
class MetricsRegistry {
 public:
  void IncrementCounter(std::string_view name, uint64_t delta);
  void SetGauge(std::string_view name, double value);
  void ObserveLatency(std::string_view histogram, uint64_t value_us);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_OBS_METRICS_H_
