// ObsSink: the single seam between the simulation kernel and observability.
//
// Instrumentation sites throughout SimCore / SimEnvironment / Orchestrator /
// the checkpoint engines / the fault decorators hold a raw `ObsSink*` that is
// null by default. Every emission is guarded by that null check, so a
// simulation without observability pays one pointer compare per site and
// allocates nothing — the zero-cost-when-disabled contract.
//
// The sink is intentionally narrow: counters, gauges, latency observations,
// spans, and instants, plus track registration. It deliberately has no
// accessor for simulated time or randomness — observability is write-only
// from the kernel's perspective, so nothing emitted here can flow back into
// digest-covered state.

#ifndef PRONGHORN_SRC_OBS_SINK_H_
#define PRONGHORN_SRC_OBS_SINK_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pronghorn {

// A (pid, tid) pair identifying one lane in the trace. pid groups lanes (one
// process per deployment); tid separates concurrent activities within it
// (worker slots, the control plane).
struct ObsTrack {
  uint32_t pid = 0;
  uint32_t tid = 0;
};

// Abstract observability sink. All methods must be thread-safe: fleet shards
// emit concurrently into one sink.
class ObsSink {
 public:
  virtual ~ObsSink() = default;

  // Allocates a fresh pid and names it (e.g. one per deployment).
  virtual uint32_t RegisterProcess(std::string_view name) = 0;
  // Names a lane within an existing pid (e.g. "slot 0", "control").
  virtual void RegisterThread(ObsTrack track, std::string_view name) = 0;

  virtual void Counter(std::string_view name, uint64_t delta) = 0;
  virtual void Gauge(std::string_view name, double value) = 0;
  // Records one latency sample into the named histogram.
  virtual void Observe(std::string_view histogram, Duration value) = 0;

  // A complete span on `track`, [begin, begin + duration) in simulated time.
  virtual void Span(ObsTrack track, std::string_view name,
                    std::string_view category, TimePoint begin,
                    Duration duration) = 0;
  // A zero-duration event on `track` at `at` in simulated time.
  virtual void Instant(ObsTrack track, std::string_view name,
                       std::string_view category, TimePoint at) = 0;

  // Harvest hooks for Simulate(): sinks that aggregate metrics or record a
  // trace expose them here so SimReport can carry the results. The defaults
  // (empty snapshot, no trace) suit pure-forwarding or discarding sinks.
  virtual MetricsSnapshot SnapshotMetrics() const { return MetricsSnapshot{}; }
  virtual const TraceRecorder* trace_recorder() const { return nullptr; }
};

// The standard sink: a MetricsRegistry plus a TraceRecorder. Either half can
// be disabled (metrics-only runs skip the ring buffer; trace-only runs skip
// the registry maps) — both halves enabled is the common case for
// `pronghorn_sim --trace-out --metrics-out`.
class StandardObs : public ObsSink {
 public:
  struct Options {
    bool metrics = true;
    bool trace = true;
    size_t trace_capacity = TraceRecorder::kDefaultCapacity;
  };

  StandardObs();
  explicit StandardObs(Options options);

  uint32_t RegisterProcess(std::string_view name) override;
  void RegisterThread(ObsTrack track, std::string_view name) override;
  void Counter(std::string_view name, uint64_t delta) override;
  void Gauge(std::string_view name, double value) override;
  void Observe(std::string_view histogram, Duration value) override;
  void Span(ObsTrack track, std::string_view name, std::string_view category,
            TimePoint begin, Duration duration) override;
  void Instant(ObsTrack track, std::string_view name,
               std::string_view category, TimePoint at) override;

  MetricsSnapshot SnapshotMetrics() const override { return metrics_.Snapshot(); }
  const TraceRecorder* trace_recorder() const override {
    return options_.trace ? &trace_ : nullptr;
  }

  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsSnapshot MetricsNow() const { return metrics_.Snapshot(); }
  const TraceRecorder& trace() const { return trace_; }

 private:
  const Options options_;
  std::atomic<uint32_t> next_pid_{1};
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_OBS_SINK_H_
