#include "src/common/rng.h"

#include <cmath>
#include <numbers>

namespace pronghorn {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(state);
}

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Derive a child seed from the current state and the stream id. Does not
  // perturb this generator.
  uint64_t mixed = HashCombine(state_[0] ^ state_[2], stream_id);
  return Rng(HashCombine(mixed, state_[1] ^ state_[3]));
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t value = NextUint64();
    if (value >= threshold) {
      return value % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  // Box-Muller; draws two uniforms per normal and discards the spare so the
  // stream position is a pure function of the number of calls.
  double u1 = UniformDouble();
  while (u1 <= 0.0) {
    u1 = UniformDouble();
  }
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

double Rng::Exponential(double rate) {
  double u = UniformDouble();
  while (u <= 0.0) {
    u = UniformDouble();
  }
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  if (total <= 0.0) {
    return static_cast<size_t>(UniformUint64(weights.size()));
  }
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) {
      return i;
    }
    target -= w;
  }
  // Floating-point slack: fall back to the last positive-weight element.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  return weights.size() - 1;
}

}  // namespace pronghorn
