// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit across runs and
// platforms. We implement xoshiro256** (public-domain, Blackman & Vigna)
// seeded via SplitMix64 rather than relying on std::mt19937, whose
// distribution implementations are not portable across standard libraries.

#ifndef PRONGHORN_SRC_COMMON_RNG_H_
#define PRONGHORN_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace pronghorn {

// SplitMix64 step: used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

// Mixes two 64-bit values into one; handy for deriving substream seeds.
uint64_t HashCombine(uint64_t a, uint64_t b);

// xoshiro256** generator with portable distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Constructs an Rng for a named substream, so components can derive
  // independent deterministic streams from one experiment seed.
  Rng Fork(uint64_t stream_id) const;

  // Uniform on the full uint64 range.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Gaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Log-normal: exp(Gaussian(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double Exponential(double rate);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Draws an index in [0, weights.size()) with probability proportional to
  // weights[i]. Non-positive weights are treated as zero. If all weights are
  // zero, draws uniformly. weights must be non-empty.
  size_t WeightedIndex(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // Serializable generator state (for checkpointable components).
  std::array<uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<uint64_t, 4>& state) { state_ = state; }

 private:
  std::array<uint64_t, 4> state_{};
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_RNG_H_
