#include "src/common/crc32.h"

#include <array>

namespace pronghorn {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1) ? (0xedb88320u ^ (value >> 1)) : (value >> 1);
    }
    table[i] = value;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data) {
  const auto& table = Table();
  for (uint8_t byte : data) {
    state = table[(state ^ byte) & 0xff] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data));
}

namespace {

// Multiplies the GF(2) 32x32 matrix `mat` (one column per bit) by the bit
// vector `vec`.
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if ((vec & 1u) != 0) {
      sum ^= *mat;
    }
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) {
    square[n] = Gf2MatrixTimes(mat, mat[n]);
  }
}

}  // namespace

uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b) {
  if (len_b == 0) {
    return crc_a;
  }
  // odd = the operator for one zero bit appended (the reflected polynomial),
  // even = its square; repeated squaring walks the bits of len_b, applying
  // the "append 8*len_b zero bits" operator to crc_a.
  uint32_t even[32];
  uint32_t odd[32];
  odd[0] = 0xedb88320u;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // Two zero bits.
  Gf2MatrixSquare(odd, even);  // Four zero bits.
  uint64_t len = len_b;
  do {
    Gf2MatrixSquare(even, odd);  // Doubles the zero-bit count each round.
    if ((len & 1u) != 0) {
      crc_a = Gf2MatrixTimes(even, crc_a);
    }
    len >>= 1;
    if (len == 0) {
      break;
    }
    Gf2MatrixSquare(odd, even);
    if ((len & 1u) != 0) {
      crc_a = Gf2MatrixTimes(odd, crc_a);
    }
    len >>= 1;
  } while (len != 0);
  return crc_a ^ crc_b;
}

}  // namespace pronghorn
