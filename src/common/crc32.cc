#include "src/common/crc32.h"

#include <array>

namespace pronghorn {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1) ? (0xedb88320u ^ (value >> 1)) : (value >> 1);
    }
    table[i] = value;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data) {
  const auto& table = Table();
  for (uint8_t byte : data) {
    state = table[(state ^ byte) & 0xff] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data));
}

}  // namespace pronghorn
