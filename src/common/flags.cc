#include "src/common/flags.h"

#include <charconv>

namespace pronghorn {

void FlagParser::AddFlag(std::string name, std::string default_value,
                         std::string description) {
  Flag flag;
  flag.value = default_value;
  flag.default_value = std::move(default_value);
  flag.description = std::move(description);
  flags_.insert_or_assign(std::move(name), std::move(flag));
}

void FlagParser::AddSwitch(std::string name, std::string description) {
  Flag flag;
  flag.value = "false";
  flag.default_value = "false";
  flag.description = std::move(description);
  flag.is_switch = true;
  flags_.insert_or_assign(std::move(name), std::move(flag));
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() < 2 || arg.substr(0, 2) != "--") {
      // A dash followed by a non-digit is a misspelled flag (`-seed 7`,
      // `-fault-rate`), not a positional; silently collecting it would make
      // the flag a no-op. Lone dashes and negative numbers stay positional.
      if (arg.size() >= 2 && arg[0] == '-' &&
          (arg[1] < '0' || arg[1] > '9') && arg[1] != '.') {
        return InvalidArgumentError("unrecognized argument '" + std::string(arg) +
                                    "' (flags are spelled --" +
                                    std::string(arg.substr(1)) + ")");
      }
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view value;
    bool has_inline_value = false;
    if (const size_t eq = body.find('='); eq != std::string_view::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline_value = true;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + std::string(body));
    }
    Flag& flag = it->second;
    if (flag.is_switch) {
      if (has_inline_value) {
        if (value != "true" && value != "false") {
          return InvalidArgumentError("switch --" + std::string(body) +
                                      " takes true/false, got '" + std::string(value) +
                                      "'");
        }
        flag.value = std::string(value);
      } else {
        flag.value = "true";
      }
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        return InvalidArgumentError("flag --" + std::string(body) + " needs a value");
      }
      value = argv[++i];
    }
    flag.value = std::string(value);
  }
  return OkStatus();
}

Result<std::string> FlagParser::GetString(std::string_view name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return InvalidArgumentError("undeclared flag --" + std::string(name));
  }
  return it->second.value;
}

Result<int64_t> FlagParser::GetInt(std::string_view name) const {
  PRONGHORN_ASSIGN_OR_RETURN(std::string text, GetString(name));
  int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgumentError("flag --" + std::string(name) +
                                " expects an integer, got '" + text + "'");
  }
  return value;
}

Result<double> FlagParser::GetDouble(std::string_view name) const {
  PRONGHORN_ASSIGN_OR_RETURN(std::string text, GetString(name));
  if (text.empty()) {
    return InvalidArgumentError("flag --" + std::string(name) + " expects a number");
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return InvalidArgumentError("flag --" + std::string(name) +
                                " expects a number, got '" + text + "'");
  }
  return value;
}

Result<bool> FlagParser::GetBool(std::string_view name) const {
  PRONGHORN_ASSIGN_OR_RETURN(std::string text, GetString(name));
  if (text == "true" || text == "1") {
    return true;
  }
  if (text == "false" || text == "0") {
    return false;
  }
  return InvalidArgumentError("flag --" + std::string(name) +
                              " expects true/false, got '" + text + "'");
}

std::string FlagParser::UsageText(std::string_view program_name) const {
  std::string out = "usage: " + std::string(program_name) + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    if (!flag.is_switch) {
      out += "=<value>";
    }
    out += "  " + flag.description;
    if (!flag.is_switch && !flag.default_value.empty()) {
      out += " (default: " + flag.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace pronghorn
