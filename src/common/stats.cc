#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace pronghorn {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::span<const double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::min(std::max(q, 0.0), 100.0);
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void DistributionSummary::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void DistributionSummary::AddAll(std::span<const double> values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_valid_ = false;
}

void DistributionSummary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double DistributionSummary::Quantile(double q) const {
  EnsureSorted();
  return Percentile(sorted_, q);
}

double DistributionSummary::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : samples_) {
    sum += v;
  }
  return sum / static_cast<double>(samples_.size());
}

double DistributionSummary::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double DistributionSummary::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

std::vector<DistributionSummary::CdfPoint> DistributionSummary::Cdf(size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(points);
    // Hyndman & Fan type 7, matching Quantile(): interpolate between the two
    // order statistics around the fractional rank instead of flooring.
    const double rank = p * static_cast<double>(sorted_.size() - 1);
    const size_t lo = std::min(static_cast<size_t>(rank), sorted_.size() - 1);
    const size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    out.push_back(CdfPoint{sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac, p});
  }
  return out;
}

LogHistogram::LogHistogram(double log10_min, double log10_max, size_t bins)
    : log10_min_(log10_min),
      log10_max_(log10_max),
      bins_(bins == 0 ? 1 : bins),
      buckets_(bins_ + 2, 0) {}

void LogHistogram::Add(double value) {
  ++total_;
  if (value <= 0.0) {
    ++buckets_.front();
    return;
  }
  const double lg = std::log10(value);
  if (lg < log10_min_) {
    ++buckets_.front();
  } else if (lg >= log10_max_) {
    ++buckets_.back();
  } else {
    const double width = (log10_max_ - log10_min_) / static_cast<double>(bins_);
    size_t idx = static_cast<size_t>((lg - log10_min_) / width);
    idx = std::min(idx, bins_ - 1);
    ++buckets_[idx + 1];
  }
}

double LogHistogram::BucketLowerBound(size_t i) const {
  const double width = (log10_max_ - log10_min_) / static_cast<double>(bins_);
  return std::pow(10.0, log10_min_ + static_cast<double>(i) * width);
}

double LogHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 100.0);
  const double rank = q / 100.0 * static_cast<double>(total_ - 1);
  size_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const double first_rank = static_cast<double>(seen);
    seen += buckets_[i];
    if (rank >= static_cast<double>(seen)) {
      continue;
    }
    if (i == 0) {
      return 0.0;  // Underflow: below the histogram floor.
    }
    if (i + 1 == buckets_.size()) {
      return BucketLowerBound(bins_);  // Overflow: the ceiling is all we know.
    }
    const double lo = BucketLowerBound(i - 1);
    const double hi = BucketLowerBound(i);
    if (buckets_[i] == 1 || hi <= lo) {
      return lo;
    }
    // Spread the bucket's occupants evenly over its value span.
    const double within =
        (rank - first_rank) / static_cast<double>(buckets_[i] - 1);
    return lo + (hi - lo) * std::min(within, 1.0);
  }
  return BucketLowerBound(bins_);
}

std::string LogHistogram::ToAsciiArt(size_t width) const {
  if (total_ == 0 || width == 0) {
    return "(empty)";
  }
  // Collapse the in-range buckets onto `width` columns.
  std::string art(width, ' ');
  static constexpr const char kGlyphs[] = " .:-=+*#%@";
  size_t max_count = 1;
  for (size_t i = 1; i + 1 < buckets_.size(); ++i) {
    max_count = std::max(max_count, buckets_[i]);
  }
  for (size_t col = 0; col < width; ++col) {
    const size_t begin = 1 + col * bins_ / width;
    const size_t end = std::max(begin + 1, 1 + (col + 1) * bins_ / width);
    size_t count = 0;
    for (size_t i = begin; i < end && i + 1 < buckets_.size(); ++i) {
      count += buckets_[i];
    }
    const size_t glyph =
        count == 0 ? 0 : 1 + count * (sizeof(kGlyphs) - 3) / max_count;
    art[col] = kGlyphs[std::min(glyph, sizeof(kGlyphs) - 2)];
  }
  return art;
}

}  // namespace pronghorn
