#include "src/common/mathutil.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PRONGHORN_HAVE_AVX2_PATH 1
#endif

namespace pronghorn {
namespace {

// Runtime CPU dispatch for the element-wise kernels. Every SIMD lane
// performs the same IEEE-754 operation the scalar loop performs on the same
// element, so results are bit-identical whichever path runs — the digest
// tests would catch any deviation.
#ifdef PRONGHORN_HAVE_AVX2_PATH
bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

__attribute__((target("avx2"))) void InverseWeightsAvx2(const double* values,
                                                        size_t n, double mu,
                                                        double* out) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d mus = _mm256_set1_pd(mu);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    _mm256_storeu_pd(out + i, _mm256_div_pd(ones, _mm256_add_pd(v, mus)));
  }
  for (; i < n; ++i) {
    out[i] = 1.0 / (values[i] + mu);
  }
}

__attribute__((target("avx2"))) void ScaleAvx2(double* values, size_t n,
                                               double divisor) {
  const __m256d d = _mm256_set1_pd(divisor);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(values + i, _mm256_div_pd(_mm256_loadu_pd(values + i), d));
  }
  for (; i < n; ++i) {
    values[i] /= divisor;
  }
}

__attribute__((target("avx2"))) double MaxAvx2(const double* values, size_t n) {
  // NaN-free inputs make max associative/commutative, so a lane-wise
  // reduction returns the same value as the ordered scan.
  __m256d best = _mm256_set1_pd(values[0]);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    best = _mm256_max_pd(best, _mm256_loadu_pd(values + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, best);
  double m = std::max(std::max(lanes[0], lanes[1]), std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    m = std::max(m, values[i]);
  }
  return m;
}
#endif  // PRONGHORN_HAVE_AVX2_PATH

void InverseWeightsScalar(const double* values, size_t n, double mu, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = 1.0 / (values[i] + mu);
  }
}

}  // namespace

void InverseWeightsInto(std::span<const double> values, double mu,
                        std::span<double> out) {
#ifdef PRONGHORN_HAVE_AVX2_PATH
  if (HasAvx2()) {
    InverseWeightsAvx2(values.data(), values.size(), mu, out.data());
    return;
  }
#endif
  InverseWeightsScalar(values.data(), values.size(), mu, out.data());
}

double OrderedSum(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum;
}

double MaxValue(std::span<const double> values) {
#ifdef PRONGHORN_HAVE_AVX2_PATH
  if (HasAvx2() && values.size() >= 4) {
    return MaxAvx2(values.data(), values.size());
  }
#endif
  return *std::max_element(values.begin(), values.end());
}

void SoftmaxInto(std::span<const double> logits, double temperature,
                 std::span<double> out) {
  if (logits.empty()) {
    return;
  }
  if (temperature <= 0.0) {
    temperature = 1.0;
  }
  const double max_logit = MaxValue(logits);
  // exp accumulation stays scalar and in order: the total feeds the
  // normalization, and reassociating it would change bits.
  double total = 0.0;
  if (temperature == 1.0) {
    // The policy's only temperature. x / 1.0 == x exactly in IEEE-754, so
    // skipping the division is bit-identical and removes an unpipelined
    // divide from every loop iteration.
    for (size_t i = 0; i < logits.size(); ++i) {
      const double e = std::exp(logits[i] - max_logit);
      out[i] = e;
      total += e;
    }
  } else {
    for (size_t i = 0; i < logits.size(); ++i) {
      const double e = std::exp((logits[i] - max_logit) / temperature);
      out[i] = e;
      total += e;
    }
  }
#ifdef PRONGHORN_HAVE_AVX2_PATH
  if (HasAvx2()) {
    ScaleAvx2(out.data(), out.size(), total);
    return;
  }
#endif
  for (double& p : out) {
    p /= total;
  }
}

std::vector<double> Softmax(std::span<const double> logits, double temperature) {
  std::vector<double> out(logits.size());
  SoftmaxInto(logits, temperature, out);
  return out;
}

double EwmaUpdate(double old_value, double sample, double alpha) {
  return alpha * sample + (1.0 - alpha) * old_value;
}

double InverseWeight(double value, double mu) {
  return 1.0 / (value + mu);
}

double GeometricMean(std::span<const double> values) {
  double log_sum = 0.0;
  size_t count = 0;
  for (double v : values) {
    if (v > 0.0) {
      log_sum += std::log(v);
      ++count;
    }
  }
  if (count == 0) {
    return 0.0;
  }
  return std::exp(log_sum / static_cast<double>(count));
}

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Clamp(double value, double lo, double hi) {
  return std::min(std::max(value, lo), hi);
}

double NormalQuantile(double p) {
  // Peter Acklam's inverse-normal approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  p = Clamp(p, 1e-12, 1.0 - 1e-12);
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

Duration CappedExponentialBackoff(Duration base, double multiplier, int attempt,
                                  Duration cap) {
  const double scaled =
      static_cast<double>(base.ToMicros()) *
      std::pow(multiplier, static_cast<double>(std::max(attempt, 0)));
  // `scaled` may be inf (huge attempt) or nan (pathological inputs); the
  // negated comparison routes both to the cap, so the int64 conversion below
  // only ever sees values strictly inside the cap.
  if (!(scaled < static_cast<double>(cap.ToMicros()))) {
    return cap;
  }
  return Duration::Micros(static_cast<int64_t>(scaled));
}

}  // namespace pronghorn
