// Minimal leveled logger.
//
// Logging goes to stderr with printf-style formatting. The level is a global
// setting; benches run at kWarning so exhibit output stays clean, tests may
// raise verbosity when debugging.

#ifndef PRONGHORN_SRC_COMMON_LOGGING_H_
#define PRONGHORN_SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace pronghorn {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Logs a printf-formatted line at `level` if the global level permits.
void LogImpl(LogLevel level, const char* file, int line, const char* format, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace pronghorn

#define PRONGHORN_LOG_DEBUG(...) \
  ::pronghorn::LogImpl(::pronghorn::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define PRONGHORN_LOG_INFO(...) \
  ::pronghorn::LogImpl(::pronghorn::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define PRONGHORN_LOG_WARNING(...) \
  ::pronghorn::LogImpl(::pronghorn::LogLevel::kWarning, __FILE__, __LINE__, __VA_ARGS__)
#define PRONGHORN_LOG_ERROR(...) \
  ::pronghorn::LogImpl(::pronghorn::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

#endif  // PRONGHORN_SRC_COMMON_LOGGING_H_
