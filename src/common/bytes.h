// Binary serialization primitives.
//
// ByteWriter/ByteReader implement a little-endian wire format used by the
// snapshot codec, the policy-state codec, and the stores. Reads are fully
// validated: a truncated or corrupt buffer yields kDataLoss/kOutOfRange
// rather than undefined behavior.

#ifndef PRONGHORN_SRC_COMMON_BYTES_H_
#define PRONGHORN_SRC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace pronghorn {

// Appends fixed-width little-endian scalars, varints, and length-prefixed
// blobs to an owned byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteUint8(uint8_t value);
  void WriteUint32(uint32_t value);
  void WriteUint64(uint64_t value);
  void WriteInt64(int64_t value);
  // IEEE-754 bit pattern, little-endian.
  void WriteDouble(double value);
  // LEB128-style unsigned varint.
  void WriteVarint(uint64_t value);
  // Varint length prefix followed by raw bytes.
  void WriteBytes(std::span<const uint8_t> bytes);
  void WriteString(std::string_view text);

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t> TakeData() { return std::move(data_); }
  size_t size() const { return data_.size(); }

  // Reserves capacity up front when the final size is roughly known.
  void Reserve(size_t bytes) { data_.reserve(bytes); }

  // Drops the contents but keeps the capacity, so a long-lived writer can
  // re-encode repeatedly without re-growing its buffer (the policy-state
  // store's per-request encode path).
  void Clear() { data_.clear(); }

 private:
  std::vector<uint8_t> data_;
};

// Reads the format produced by ByteWriter. All methods return an error Status
// instead of reading past the end of the buffer. The reader borrows the
// buffer; the caller keeps it alive.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadUint8();
  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<int64_t> ReadInt64();
  Result<double> ReadDouble();
  Result<uint64_t> ReadVarint();
  Result<std::vector<uint8_t>> ReadBytes();
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  // Fails with kOutOfRange unless `count` more bytes are available.
  Status Require(size_t count) const;

  std::span<const uint8_t> data_;
  size_t offset_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_BYTES_H_
