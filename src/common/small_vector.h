// A vector with inline storage for its first N elements.
//
// Decision-path containers (restore-candidate lists, snapshot-weight
// scratch) are bounded in practice by the snapshot pool capacity (12 + 1
// in-flight), so a vector that keeps its first N elements inline never
// touches the heap on the steady state — the remaining std::vector-shaped
// API spills transparently for the rare oversized case. Only the operations
// the hot paths need are provided; this is deliberately not a full
// std::vector replacement.

#ifndef PRONGHORN_SRC_COMMON_SMALL_VECTOR_H_
#define PRONGHORN_SRC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pronghorn {

template <typename T, size_t N>
class SmallVector {
 public:
  static_assert(N > 0, "inline capacity must be positive");
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) {
      push_back(v);
    }
  }

  template <typename InputIt>
  SmallVector(InputIt first, InputIt last) {
    assign(first, last);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  // True while elements live in the inline buffer (test introspection).
  bool is_inline() const { return data_ == InlineData(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t want) {
    if (want > capacity_) {
      Grow(want);
    }
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) {
      data_[i].~T();
    }
    size_ = 0;
  }

  // Shrinks or value-initializes up to `count` (the decision scratch uses
  // resize + index writes for SoA fills).
  void resize(size_t count) {
    if (count < size_) {
      for (size_t i = count; i < size_; ++i) {
        data_[i].~T();
      }
      size_ = count;
      return;
    }
    reserve(count);
    while (size_ < count) {
      ::new (static_cast<void*>(data_ + size_)) T();
      ++size_;
    }
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    reserve(static_cast<size_t>(std::distance(first, last)));
    for (; first != last; ++first) {
      push_back(*first);
    }
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_storage_); }

  void Grow(size_t want) {
    const size_t new_capacity = std::max(want, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(new_capacity * sizeof(T),
                                              std::align_val_t(alignof(T))));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void Destroy() {
    clear();
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = InlineData();
      capacity_ = N;
    }
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.data_ != other.InlineData()) {
      // Steal the heap buffer.
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
      return;
    }
    data_ = InlineData();
    capacity_ = N;
    size_ = other.size_;
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_SMALL_VECTOR_H_
