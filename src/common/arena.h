// Bump-pointer arena for per-slot simulation scratch.
//
// The steady-state decision path (policy scoring, softmax scratch, candidate
// ranking) used to allocate short-lived vectors on every worker start. The
// arena replaces those with pointer bumps into a retained block: allocation
// is an add + bounds check, Reset() rewinds the cursor without returning
// memory to the heap, and after one warm cycle the steady state performs
// zero heap allocations (tests/alloc_hook_test.cc pins this).
//
// Only trivially-destructible payloads belong here — Reset() never runs
// destructors. The arena is NOT thread-safe; each shard thread / worker slot
// owns its own instance (DESIGN.md §15 has the lifetime map).

#ifndef PRONGHORN_SRC_COMMON_ARENA_H_
#define PRONGHORN_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace pronghorn {

class Arena {
 public:
  // `block_bytes` sizes the first block; allocations larger than a block get
  // a dedicated oversized block (the large-allocation fallback).
  explicit Arena(size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Returns `bytes` of storage aligned to `alignment` (a power of two,
  // at most alignof(std::max_align_t) unless the caller knows the block
  // allocator provides more — blocks are new[]-aligned). Never returns null;
  // grows by appending blocks when the current block runs dry.
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t));

  // Typed span of `count` default-initialized (i.e. uninitialized for
  // arithmetic types) elements. T must be trivially destructible — Reset()
  // runs no destructors.
  template <typename T>
  std::span<T> AllocateSpan(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (count == 0) {
      return {};
    }
    void* raw = Allocate(count * sizeof(T), alignof(T));
    return std::span<T>(static_cast<T*>(raw), count);
  }

  // Rewinds the arena to empty. Keeps one retained block sized to the
  // high-water mark of the previous cycles, so a steady-state
  // allocate/Reset loop settles into a single block and never touches the
  // heap again.
  void Reset();

  // Bytes handed out since the last Reset (including alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Largest bytes_allocated() observed across all cycles.
  size_t high_water_bytes() const { return high_water_; }
  // Blocks currently owned (1 in the steady state).
  size_t block_count() const { return blocks_.size(); }

  static constexpr size_t kDefaultBlockBytes = 16 * 1024;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  // Appends a block of at least `min_bytes` and makes it current.
  void AddBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;       // Index of the block being bumped.
  size_t cursor_ = 0;        // Offset of the next free byte in blocks_[current_].
  size_t block_bytes_;       // Nominal block size.
  size_t bytes_allocated_ = 0;
  size_t high_water_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_ARENA_H_
