#include "src/common/arena.h"

#include <algorithm>

namespace pronghorn {

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max<size_t>(block_bytes, 64)) {}

void Arena::AddBlock(size_t min_bytes) {
  Block block;
  block.size = std::max(block_bytes_, min_bytes);
  block.data = std::make_unique<std::byte[]>(block.size);
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  cursor_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (bytes == 0) {
    bytes = 1;  // Distinct non-null pointers for zero-byte requests.
  }
  while (true) {
    if (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
      const size_t misalign = (base + cursor_) & (alignment - 1);
      const size_t pad = misalign == 0 ? 0 : alignment - misalign;
      if (cursor_ + pad + bytes <= block.size) {
        void* out = block.data.get() + cursor_ + pad;
        cursor_ += pad + bytes;
        bytes_allocated_ += pad + bytes;
        high_water_ = std::max(high_water_, bytes_allocated_);
        return out;
      }
      // Current block exhausted: move on (a later block may already exist
      // after growth within one cycle).
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        cursor_ = 0;
        continue;
      }
    }
    AddBlock(bytes + alignment);
  }
}

void Arena::Reset() {
  high_water_ = std::max(high_water_, bytes_allocated_);
  if (blocks_.size() > 1) {
    // Coalesce: retain a single block big enough for the whole observed
    // working set, so the next cycle bumps through one block and the
    // steady state never allocates again.
    const size_t want = std::max(high_water_, block_bytes_);
    blocks_.clear();
    AddBlock(want);
  }
  current_ = 0;
  cursor_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace pronghorn
