// Work-stealing thread pool for sharded simulations.
//
// The fleet simulation partitions independent function deployments into
// shards and runs each shard's discrete-event loop on its own thread. Shard
// runtimes vary by orders of magnitude (a 2000-request JVM cluster vs a
// 50-request PyPy one), so a static partition would leave threads idle;
// instead each worker owns a deque and steals from its peers when it runs
// dry. Determinism is unaffected: tasks carry their own RNG substreams, so
// which thread runs a task never influences results.

#ifndef PRONGHORN_SRC_COMMON_THREAD_POOL_H_
#define PRONGHORN_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pronghorn {

class ThreadPool {
 public:
  // Hard ceiling on the worker count, applied to any requested size.
  static constexpr uint32_t kMaxThreads = 256;

  // Spawns `threads` workers; 0 means DefaultThreadCount(). Requests above
  // kMaxThreads are clamped.
  explicit ThreadPool(uint32_t threads = 0);

  // Drains every queued task, then joins the workers. Submitting from a task
  // that outlives the destructor call is a programming error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()); }

  // Hardware concurrency, clamped to at least 1 (hardware_concurrency() may
  // legally report 0).
  static uint32_t DefaultThreadCount();

  // Enqueues `fn` and returns a future for its result. Exceptions thrown by
  // `fn` are captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Push([task]() { (*task)(); });
    return future;
  }

  // Runs fn(i) for every i in [0, n), blocking until all complete. The first
  // exception (in index order) is rethrown after every task has finished.
  // Must be called from outside the pool's worker threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  // One deque per worker; submissions are distributed round-robin and idle
  // workers steal from the opposite end of their peers' queues.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void Push(std::function<void()> task);
  void WorkerLoop(size_t self);
  // Pops own work (LIFO) or steals (FIFO); true when a task was run.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake coordination. `queued_` counts tasks pushed but not yet
  // popped; workers only exit when stopping and the count is zero, so the
  // destructor drains queued work instead of dropping it.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<uint64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_THREAD_POOL_H_
