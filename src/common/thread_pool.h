// Work-stealing thread pool for sharded simulations.
//
// The fleet simulation partitions independent function deployments into
// shards and runs each shard's discrete-event loop on its own thread. Shard
// runtimes vary by orders of magnitude (a 2000-request JVM cluster vs a
// 50-request PyPy one), so a static partition would leave threads idle;
// instead each worker owns a deque and steals from its peers when it runs
// dry. Determinism is unaffected: tasks carry their own RNG substreams, so
// which thread runs a task never influences results.

#ifndef PRONGHORN_SRC_COMMON_THREAD_POOL_H_
#define PRONGHORN_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pronghorn {

// Cache-line size assumed for alignment of per-thread slots. x86-64 and most
// AArch64 parts use 64-byte lines; over-aligning on a platform with smaller
// lines is harmless. (std::hardware_destructive_interference_size exists but
// triggers -Winterference-size ABI warnings on GCC, so the constant is
// pinned here.)
inline constexpr std::size_t kCacheLineBytes = 64;

// Construction knobs beyond the worker count.
struct ThreadPoolOptions {
  // Worker count; 0 means DefaultThreadCount().
  uint32_t threads = 0;
  // Pins worker i to hardware CPU (i mod hardware threads) on platforms
  // that support thread affinity (Linux). Keeps a shard's working set on
  // one core's private caches instead of migrating between cores; a no-op
  // elsewhere. (NUMA-aware placement — spreading shards across sockets
  // before hyperthread siblings — is the open ROADMAP follow-up.)
  bool pin_threads = false;
};

class ThreadPool {
 public:
  // Hard ceiling on the worker count, applied to any requested size.
  static constexpr uint32_t kMaxThreads = 256;

  // Spawns `threads` workers; 0 means DefaultThreadCount(). Requests above
  // kMaxThreads are clamped.
  explicit ThreadPool(uint32_t threads = 0) : ThreadPool(ThreadPoolOptions{threads}) {}

  explicit ThreadPool(ThreadPoolOptions options);

  // Drains every queued task, then joins the workers. Submitting from a task
  // that outlives the destructor call is a programming error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()); }

  // Hardware concurrency, clamped to at least 1 (hardware_concurrency() may
  // legally report 0).
  static uint32_t DefaultThreadCount();

  // The worker count that actually helps for CPU-bound work: `requested`
  // (0 = default) clamped to the hardware thread count. Oversubscribing
  // CPU-bound shards past the core count only adds context-switch and
  // cache-thrash overhead — the committed BENCH_fleet_wallclock baseline
  // measured 4 threads running ~25% *slower* than 1 on a single-core host.
  // Callers treat a --threads request as a parallelism cap, not a demand;
  // results never depend on it (determinism is schedule-independent).
  static uint32_t EffectiveParallelism(uint32_t requested);

  // Enqueues `fn` and returns a future for its result. Exceptions thrown by
  // `fn` are captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Push([task]() { (*task)(); });
    return future;
  }

  // Runs fn(i) for every i in [0, n), blocking until all complete. The first
  // exception (in index order) is rethrown after every task has finished.
  // Must be called from outside the pool's worker threads. The calling
  // thread participates: while waiting it drains queued tasks instead of
  // sleeping, so a pool of W workers delivers W+1 execution streams.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Runs one queued task on the calling thread if any is immediately
  // available; returns false when every queue is empty. Safe from any
  // thread; this is the caller-assist primitive behind ParallelFor.
  bool TryRunOnePending();

 private:
  // One deque per worker; submissions are distributed round-robin and idle
  // workers steal from the opposite end of their peers' queues.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void Push(std::function<void()> task);
  void WorkerLoop(size_t self);
  // Pops own work (LIFO) or steals (FIFO); true when a task was run.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake coordination. `queued_` counts tasks pushed but not yet
  // popped; workers only exit when stopping and the count is zero, so the
  // destructor drains queued work instead of dropping it.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<uint64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_THREAD_POOL_H_
