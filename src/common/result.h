// Result<T>: value-or-Status, the return type of fallible factory and lookup
// operations (equivalent in spirit to absl::StatusOr<T>).

#ifndef PRONGHORN_SRC_COMMON_RESULT_H_
#define PRONGHORN_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace pronghorn {

// Holds either a T or a non-OK Status. Accessing the value of an error Result
// is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps call
  // sites terse: `return value;` / `return NotFoundError(...);`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result<T> must not be built from an OK Status");
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace pronghorn

// Assigns the value of a fallible expression to `lhs`, or propagates its
// error Status. Usage: PRONGHORN_ASSIGN_OR_RETURN(auto v, MakeThing());
#define PRONGHORN_ASSIGN_OR_RETURN(lhs, expr)                 \
  PRONGHORN_ASSIGN_OR_RETURN_IMPL_(                           \
      PRONGHORN_MACRO_CONCAT_(result_tmp_, __LINE__), lhs, expr)

#define PRONGHORN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  lhs = std::move(tmp).value()

#define PRONGHORN_MACRO_CONCAT_(a, b) PRONGHORN_MACRO_CONCAT_IMPL_(a, b)
#define PRONGHORN_MACRO_CONCAT_IMPL_(a, b) a##b

#endif  // PRONGHORN_SRC_COMMON_RESULT_H_
