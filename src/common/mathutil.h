// Numeric helpers used by the orchestration policy: numerically stable
// softmax, EWMA updates, inverse-latency weighting, and summary means.

#ifndef PRONGHORN_SRC_COMMON_MATHUTIL_H_
#define PRONGHORN_SRC_COMMON_MATHUTIL_H_

#include <span>
#include <vector>

#include "src/common/clock.h"

namespace pronghorn {

// Numerically stable softmax: subtracts the max before exponentiating, so
// arbitrarily large inverse-latency weights cannot overflow. Returns an empty
// vector for empty input. `temperature` scales the input logits; 1.0 is the
// paper's formulation, larger values flatten the distribution.
std::vector<double> Softmax(std::span<const double> logits, double temperature = 1.0);

// Allocation-free softmax into caller-provided storage (out.size() must equal
// logits.size()). Bit-for-bit identical to Softmax(): the max scan and the
// final normalization are element-wise IEEE operations (vectorized where the
// CPU supports it — per-element division and max round identically in SIMD
// and scalar form), while the exp accumulation keeps the scalar left-to-right
// order the report digests pin. tests/vector_math_test.cc holds the
// equivalence property across random inputs, temperatures, and sizes.
void SoftmaxInto(std::span<const double> logits, double temperature,
                 std::span<double> out);

// out[i] = 1 / (values[i] + mu) for every i. Element-wise (no cross-lane
// arithmetic), so the SIMD path is bit-identical to the scalar loop; this is
// the bulk form of InverseWeight used by the weight-vector caches and folds.
void InverseWeightsInto(std::span<const double> values, double mu,
                        std::span<double> out);

// Strict left-to-right scalar sum — the fold order every digest-covered
// accumulation must preserve (never vectorized: reassociation changes bits).
double OrderedSum(std::span<const double> values);

// Maximum over a non-empty span. Values must be NaN-free; equal to
// *std::max_element for such inputs whichever lanes the reduction uses.
double MaxValue(std::span<const double> values);

// EWMA update used by the policy's knowledge step (Algorithm 1, part 3):
// new = alpha * sample + (1 - alpha) * old.
double EwmaUpdate(double old_value, double sample, double alpha);

// Inverse weighting 1 / (value + mu) from the paper's probability map D.
// `mu` is the tiny positive constant that makes unexplored (zero) entries
// receive enormous weight.
double InverseWeight(double value, double mu);

// Geometric mean of strictly positive values; returns 0 for empty input and
// ignores non-positive entries (they would otherwise poison the log-sum).
double GeometricMean(std::span<const double> values);

// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> values);

// Clamps `value` to [lo, hi].
double Clamp(double value, double lo, double hi);

// Inverse CDF of the standard normal distribution (Acklam's rational
// approximation, |relative error| < 1.15e-9). `p` must be in (0, 1).
double NormalQuantile(double p);

// Capped exponential backoff: base * multiplier^attempt, saturating at `cap`.
// The product is formed and compared against the cap entirely in doubles, so
// large attempt counts (a CAS livelock, a retry storm) saturate cleanly at
// `cap` instead of overflowing Duration's int64 microseconds — with
// multiplier 2.0 the naive Duration multiply is already undefined behavior
// near attempt 50. Below the cap the result is bit-identical to
// `base * multiplier^attempt` computed through Duration::operator*(double).
// Negative attempts are treated as 0.
Duration CappedExponentialBackoff(Duration base, double multiplier, int attempt,
                                  Duration cap);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_MATHUTIL_H_
