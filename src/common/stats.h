// Streaming and batch statistics used by the metrics collector and the
// benchmark harnesses (percentiles, CDFs, summary rows).

#ifndef PRONGHORN_SRC_COMMON_STATS_H_
#define PRONGHORN_SRC_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pronghorn {

// Welford-style streaming moments plus min/max.
class OnlineStats {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch percentile over a copy of the samples. `q` in [0, 100]. Returns 0
// for empty input.
//
// Quantile convention (repo-wide): Hyndman & Fan type 7 — the target sits at
// fractional rank q/100 * (n - 1) in the sorted sample and is linearly
// interpolated between the two closest order statistics (numpy/R default).
// DistributionSummary::Quantile/Cdf, LogHistogram::Quantile, and the obs
// layer's LatencyHistogram::Quantile all use this same definition, so
// summaries computed from raw samples and from histogram buckets agree up to
// bucket resolution (they previously disagreed at small sample counts, where
// nearest-rank flooring and interpolation diverge most).
double Percentile(std::span<const double> samples, double q);

// Accumulates samples and renders distribution summaries. The benchmark
// harnesses use this to print CDF series the way the paper plots them.
class DistributionSummary {
 public:
  void Add(double value);
  void AddAll(std::span<const double> values);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double Quantile(double q) const;  // q in [0, 100].
  double Median() const { return Quantile(50.0); }
  double Mean() const;
  double Min() const;
  double Max() const;

  // CDF sampled at `points` evenly spaced probabilities in (0, 1]; each entry
  // is {value, cumulative_probability}. Values follow the same Hyndman & Fan
  // type 7 interpolation as Quantile(), so Cdf(k) and Quantile(q) agree
  // wherever their grids coincide.
  struct CdfPoint {
    double value = 0.0;
    double probability = 0.0;
  };
  std::vector<CdfPoint> Cdf(size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  // Sorted cache; invalidated on Add.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-bin histogram over log10-spaced bins, matching the log-scale x axes
// of the paper's CDF figures.
class LogHistogram {
 public:
  // Bins span [10^log10_min, 10^log10_max) split into `bins` equal log-width
  // buckets, plus an underflow and an overflow bucket.
  LogHistogram(double log10_min, double log10_max, size_t bins);

  void Add(double value);
  size_t total() const { return total_; }
  // Counts per bucket, index 0 = underflow, last = overflow.
  const std::vector<size_t>& buckets() const { return buckets_; }
  // Lower bound (in value space) of in-range bucket `i` (0-based).
  double BucketLowerBound(size_t i) const;

  // Approximate quantile from the bucket counts, `q` in [0, 100], using the
  // repo-wide Hyndman & Fan type 7 convention (see Percentile): the target
  // rank is q/100 * (n - 1) and occupants are spread evenly across their
  // bucket's value span. Ranks landing in the underflow bucket report 0
  // (values below the floor are indistinguishable); ranks in the overflow
  // bucket report the overflow lower edge. Agrees with Percentile() over the
  // same samples up to bucket resolution. Returns 0 when empty.
  double Quantile(double q) const;

  // Renders a compact ASCII sparkline of the distribution for logs.
  std::string ToAsciiArt(size_t width = 60) const;

 private:
  double log10_min_;
  double log10_max_;
  size_t bins_;
  std::vector<size_t> buckets_;
  size_t total_ = 0;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_STATS_H_
