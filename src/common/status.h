// Lightweight status type for error handling without exceptions.
//
// Library code in this project never throws across module boundaries; fallible
// operations return a Status (or a Result<T>, see result.h). This mirrors the
// error-handling idiom of large os-systems codebases (Fuchsia, Abseil) while
// keeping the dependency footprint at zero.

#ifndef PRONGHORN_SRC_COMMON_STATUS_H_
#define PRONGHORN_SRC_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace pronghorn {

// Canonical error space, a deliberately small subset of the Abseil canonical
// codes that covers every failure mode in this codebase.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   // Caller passed a value outside the documented domain.
  kNotFound = 2,          // Key / object / snapshot does not exist.
  kAlreadyExists = 3,     // Insert would overwrite under exclusive semantics.
  kFailedPrecondition = 4,// Object is in the wrong state for the operation.
  kOutOfRange = 5,        // Index or cursor beyond the valid range.
  kDataLoss = 6,          // Corruption detected (bad checksum, truncation).
  kResourceExhausted = 7, // Capacity limit hit (pool, store quota).
  kUnimplemented = 8,     // Feature intentionally not provided.
  kInternal = 9,          // Invariant violation; indicates a bug.
  kAborted = 10,          // Concurrency conflict (e.g. CAS version mismatch).
  kUnavailable = 11,      // Transient failure, safe to retry (fault injection).
};

// Human-readable name for a code ("kOk" -> "OK").
std::string_view StatusCodeName(StatusCode code);

// Value type carrying a code plus an optional message. Ok statuses are cheap
// (no allocation); error statuses carry a descriptive message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Convenience constructors, mirroring absl::InvalidArgumentError etc.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status AbortedError(std::string message);
Status UnavailableError(std::string message);

}  // namespace pronghorn

// Propagates an error Status from a fallible expression, mirroring
// RETURN_IF_ERROR in Abseil-style codebases.
#define PRONGHORN_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::pronghorn::Status status_macro_tmp_ = (expr);  \
    if (!status_macro_tmp_.ok()) {                   \
      return status_macro_tmp_;                      \
    }                                                \
  } while (false)

#endif  // PRONGHORN_SRC_COMMON_STATUS_H_
