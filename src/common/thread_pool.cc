#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pronghorn {

uint32_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

uint32_t ThreadPool::EffectiveParallelism(uint32_t requested) {
  const uint32_t hardware = DefaultThreadCount();
  return std::min(requested == 0 ? hardware : requested, hardware);
}

ThreadPool::ThreadPool(ThreadPoolOptions options) {
  // Cap at kMaxThreads: beyond any plausible core count, more OS threads only
  // add scheduling overhead, and an accidental huge request (e.g. a negative
  // flag value cast to unsigned) must not try to spawn billions of threads.
  const uint32_t count = std::min(
      options.threads == 0 ? DefaultThreadCount() : options.threads, kMaxThreads);
  queues_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
#if defined(__linux__)
  if (options.pin_threads) {
    const uint32_t hardware = DefaultThreadCount();
    for (uint32_t i = 0; i < count; ++i) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(i % hardware, &set);
      // Best effort: a restricted affinity mask (cgroup, taskset) can refuse
      // some CPUs; the pool still works unpinned.
      (void)pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set), &set);
    }
  }
#else
  (void)options.pin_threads;
#endif
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Push(std::function<void()> task) {
  const size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // The count must change under idle_mutex_: a worker that just evaluated
    // its wait predicate would otherwise miss this notification and sleep
    // through available work.
    std::lock_guard<std::mutex> lock(idle_mutex_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    // Own queue first, newest task (LIFO keeps the working set warm).
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from peers, scanning from the next queue over so
    // contention spreads instead of piling onto queue 0.
    for (size_t offset = 1; offset < queues_.size() && !task; ++offset) {
      WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) {
    return false;
  }
  queued_.fetch_sub(1, std::memory_order_release);
  task();  // packaged_task captures any exception into the future.
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (RunOneTask(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [this]() {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (queued_.load(std::memory_order_acquire) == 0 &&
        stop_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

bool ThreadPool::TryRunOnePending() {
  std::function<void()> task;
  for (size_t i = 0; i < queues_.size() && !task; ++i) {
    WorkerQueue& queue = *queues_[i];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (!queue.tasks.empty()) {
      task = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
  }
  if (!task) {
    return false;
  }
  queued_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    // Caller assist: the calling thread is an idle core while it waits, so
    // drain queued tasks instead of blocking — only sleep on the future once
    // every queue is empty (the remaining tasks are in flight on workers).
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready &&
           TryRunOnePending()) {
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace pronghorn
