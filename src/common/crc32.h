// CRC-32 (IEEE 802.3 polynomial), used to detect snapshot image corruption.

#ifndef PRONGHORN_SRC_COMMON_CRC32_H_
#define PRONGHORN_SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace pronghorn {

// One-shot CRC-32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: seed with kCrc32Init, feed chunks, finalize.
inline constexpr uint32_t kCrc32Init = 0xffffffffu;
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xffffffffu; }

// Combines two finalized CRCs: given crc_a = Crc32(A) and crc_b = Crc32(B),
// returns Crc32(A || B) where `len_b` is B's length in bytes. O(log len_b)
// via GF(2) matrix exponentiation (the zlib crc32_combine construction).
// This is what lets a streaming accumulator keep only (crc, length) per
// fragment and still reproduce the digest of the full concatenation exactly,
// in any fold order — Crc32Combine(Crc32({}), c, n) == c, and the operation
// is associative over ordered fragment sequences.
uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_CRC32_H_
