// CRC-32 (IEEE 802.3 polynomial), used to detect snapshot image corruption.

#ifndef PRONGHORN_SRC_COMMON_CRC32_H_
#define PRONGHORN_SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace pronghorn {

// One-shot CRC-32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: seed with kCrc32Init, feed chunks, finalize.
inline constexpr uint32_t kCrc32Init = 0xffffffffu;
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xffffffffu; }

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_CRC32_H_
