#include "src/common/clock.h"

#include <cstdio>

namespace pronghorn {

std::string Duration::ToString() const {
  char buf[48];
  if (micros_ >= 1000000 || micros_ <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds());
  } else if (micros_ >= 1000 || micros_ <= -1000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMillis());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros_));
  }
  return buf;
}

void SimClock::Advance(Duration d) {
  if (d > Duration::Zero()) {
    now_ = now_ + d;
  }
}

void SimClock::AdvanceTo(TimePoint t) {
  if (t > now_) {
    now_ = t;
  }
}

}  // namespace pronghorn
