#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace pronghorn {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Trims a path like ".../src/core/policy.cc" to "core/policy.cc".
const char* ShortFileName(const char* file) {
  const char* last = file;
  const char* prev = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      prev = last;
      last = p + 1;
    }
  }
  return prev;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void LogImpl(LogLevel level, const char* file, int line, const char* format, ...) {
  if (static_cast<int>(level) < g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), ShortFileName(file), line,
               message);
}

}  // namespace pronghorn
