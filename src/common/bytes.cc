#include "src/common/bytes.h"

#include <cstring>

namespace pronghorn {

void ByteWriter::WriteUint8(uint8_t value) { data_.push_back(value); }

void ByteWriter::WriteUint32(uint32_t value) {
  // One resize + unrolled byte stores instead of per-byte push_back: the
  // fixed-width writers dominate the policy-state and snapshot encode paths,
  // and the explicit shifts keep the wire format endian-independent.
  const size_t offset = data_.size();
  data_.resize(offset + 4);
  for (size_t i = 0; i < 4; ++i) {
    data_[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void ByteWriter::WriteUint64(uint64_t value) {
  const size_t offset = data_.size();
  data_.resize(offset + 8);
  for (size_t i = 0; i < 8; ++i) {
    data_[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void ByteWriter::WriteInt64(int64_t value) {
  WriteUint64(static_cast<uint64_t>(value));
}

void ByteWriter::WriteDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  WriteUint64(bits);
}

void ByteWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    data_.push_back(static_cast<uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  data_.push_back(static_cast<uint8_t>(value));
}

void ByteWriter::WriteBytes(std::span<const uint8_t> bytes) {
  WriteVarint(bytes.size());
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(std::string_view text) {
  WriteVarint(text.size());
  data_.insert(data_.end(), text.begin(), text.end());
}

Status ByteReader::Require(size_t count) const {
  if (data_.size() - offset_ < count) {
    return OutOfRangeError("read past end of buffer");
  }
  return OkStatus();
}

Result<uint8_t> ByteReader::ReadUint8() {
  PRONGHORN_RETURN_IF_ERROR(Require(1));
  return data_[offset_++];
}

Result<uint32_t> ByteReader::ReadUint32() {
  PRONGHORN_RETURN_IF_ERROR(Require(4));
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(data_[offset_++]) << shift;
  }
  return value;
}

Result<uint64_t> ByteReader::ReadUint64() {
  PRONGHORN_RETURN_IF_ERROR(Require(8));
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(data_[offset_++]) << shift;
  }
  return value;
}

Result<int64_t> ByteReader::ReadInt64() {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t bits, ReadUint64());
  return static_cast<int64_t>(bits);
}

Result<double> ByteReader::ReadDouble() {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t bits, ReadUint64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    PRONGHORN_RETURN_IF_ERROR(Require(1));
    const uint8_t byte = data_[offset_++];
    if (shift >= 63 && byte > 1) {
      return DataLossError("varint overflows 64 bits");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
    if (shift > 63) {
      return DataLossError("varint too long");
    }
  }
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes() {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  PRONGHORN_RETURN_IF_ERROR(Require(length));
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(offset_),
                           data_.begin() + static_cast<ptrdiff_t>(offset_ + length));
  offset_ += length;
  return out;
}

Result<std::string> ByteReader::ReadString() {
  PRONGHORN_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  PRONGHORN_RETURN_IF_ERROR(Require(length));
  std::string out(reinterpret_cast<const char*>(data_.data()) + offset_, length);
  offset_ += length;
  return out;
}

}  // namespace pronghorn
