// Minimal command-line flag parsing for the CLI tools.
//
// Supports `--name value` and `--name=value` forms plus boolean switches
// (`--verbose`). Unknown flags are an error (catches typos), and so are
// single-dash flag spellings like `-seed 7` — silently treating those as
// positionals would turn the flag into a no-op. Other positional arguments
// (including negative numbers) are collected in order.

#ifndef PRONGHORN_SRC_COMMON_FLAGS_H_
#define PRONGHORN_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace pronghorn {

class FlagParser {
 public:
  FlagParser() = default;

  // Declares a flag. `description` feeds the usage text. Every flag has a
  // string default; typed getters parse on access.
  void AddFlag(std::string name, std::string default_value, std::string description);
  // Declares a boolean switch (present => true).
  void AddSwitch(std::string name, std::string description);

  // Parses argv (excluding argv[0]). Fails on unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  // Typed access; kInvalidArgument when the value does not parse.
  Result<std::string> GetString(std::string_view name) const;
  Result<int64_t> GetInt(std::string_view name) const;
  Result<double> GetDouble(std::string_view name) const;
  Result<bool> GetBool(std::string_view name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formats the flag table for --help output.
  std::string UsageText(std::string_view program_name) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string description;
    bool is_switch = false;
  };

  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_FLAGS_H_
