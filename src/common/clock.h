// Simulated time.
//
// All latencies, costs, and arrival times in the simulator are Durations and
// TimePoints in microseconds. Library code never reads the wall clock; a
// SimClock owned by the simulation environment is the single source of time.

#ifndef PRONGHORN_SRC_COMMON_CLOCK_H_
#define PRONGHORN_SRC_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace pronghorn {

// A span of simulated time, in microseconds. A thin strong-typedef over
// int64_t: arithmetic is explicit and unit confusion is a compile error.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t ToMicros() const { return micros_; }
  constexpr double ToMillis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Duration operator+(Duration other) const {
    return Duration(micros_ + other.micros_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(micros_ - other.micros_);
  }
  constexpr Duration operator*(double factor) const {
    return Duration(static_cast<int64_t>(static_cast<double>(micros_) * factor));
  }
  Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    micros_ -= other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  // "12.345ms" style rendering for logs and tables.
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t micros) : micros_(micros) {}

  int64_t micros_ = 0;
};

// An instant of simulated time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }

  constexpr int64_t ToMicros() const { return micros_; }
  constexpr double ToSeconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(micros_ + d.ToMicros());
  }
  constexpr Duration operator-(TimePoint other) const {
    return Duration::Micros(micros_ - other.micros_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  explicit constexpr TimePoint(int64_t micros) : micros_(micros) {}

  int64_t micros_ = 0;
};

// Monotonic simulated clock. The simulation environment advances it as events
// complete; components read it to timestamp metadata.
class SimClock {
 public:
  SimClock() = default;

  TimePoint now() const { return now_; }

  // Advances the clock by `d`. Negative advances are clamped to zero so a
  // buggy cost model can never move time backwards.
  void Advance(Duration d);

  // Jumps the clock forward to `t` if `t` is in the future; otherwise no-op.
  void AdvanceTo(TimePoint t);

 private:
  TimePoint now_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_COMMON_CLOCK_H_
