// Client-side input perturbation model (§5.1 "Benchmarks"): zero-mean
// Gaussian noise in the log of input sizes, up to an order of magnitude.

#ifndef PRONGHORN_SRC_WORKLOADS_INPUT_MODEL_H_
#define PRONGHORN_SRC_WORKLOADS_INPUT_MODEL_H_

#include "src/common/rng.h"
#include "src/workloads/workload_profile.h"

namespace pronghorn {

// Draws multiplicative input-size factors for requests against a workload.
// The factor is lognormal(0, sigma) clipped to [kMinScale, kMaxScale], so a
// pathological draw can never produce a zero-cost or unbounded request.
class InputModel {
 public:
  // `enable_noise` off yields a constant factor of 1 (used by warm-up-curve
  // exhibits where the paper plots noiseless convergence).
  InputModel(const WorkloadProfile& profile, bool enable_noise);

  // Input-size factor for the next request, drawn from `rng` (the load
  // generator's stream, so server-side JIT randomness stays independent).
  double NextScale(Rng& rng) const;

  static constexpr double kMinScale = 0.08;
  static constexpr double kMaxScale = 12.0;

 private:
  double sigma_;
  bool enabled_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_WORKLOADS_INPUT_MODEL_H_
