// Workload profiles for the 13 serverless benchmarks of the paper (Table 3).
//
// The paper's benchmarks enter the evaluation only through (a) their
// end-to-end latency as a function of JIT maturity, (b) their input-size
// variance, and (c) their checkpoint/restore costs and snapshot sizes. A
// WorkloadProfile captures exactly those quantities, calibrated to the
// paper's Figure 1 (warm-up curves), Table 1 (Java speedups), Figure 4/5
// (latency ranges) and Table 4 (checkpoint/restore/snapshot costs).

#ifndef PRONGHORN_SRC_WORKLOADS_WORKLOAD_PROFILE_H_
#define PRONGHORN_SRC_WORKLOADS_WORKLOAD_PROFILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"

namespace pronghorn {

// The two optimizing runtimes the paper evaluates (§5.1).
enum class RuntimeFamily : uint8_t {
  kJvm = 0,   // OpenJDK HotSpot 17: slower warm-up, larger converged speedup.
  kPyPy = 1,  // PyPy 3.7: faster warm-up, smaller snapshots? (larger, per Table 4).
};

std::string_view RuntimeFamilyName(RuntimeFamily family);

// Static description of one benchmark. All latencies are noiseless baselines;
// the JIT simulator and the load generator layer stochastic effects on top.
struct WorkloadProfile {
  std::string name;
  RuntimeFamily family = RuntimeFamily::kPyPy;

  // --- Latency structure -----------------------------------------------
  // Compute part of one request when fully interpreted (JIT maturity 0).
  Duration compute_base;
  // Compute speedup at full JIT convergence: converged compute latency is
  // compute_base / converged_speedup.
  double converged_speedup = 1.0;
  // JIT-independent I/O part (network, disk, native libraries).
  Duration io_base;
  // Lognormal sigma of run-to-run I/O jitter.
  double io_noise_sigma = 0.1;
  // Lognormal sigma of the client-side input-size perturbation (§5.1: up to
  // an order of magnitude); applied by the load generator.
  double input_noise_sigma = 0.3;
  // Compute latency scales as input_scale ^ input_scale_exponent.
  double input_scale_exponent = 1.0;
  // Fraction of the input scale that also affects the I/O part (file sizes).
  double io_input_coupling = 0.0;

  // --- Warm-up shape ----------------------------------------------------
  // Requests until the optimizing tier has compiled every hot method
  // (Figure 1: ~1000 for PyPy, ~2500 for JVM on DynamicHTML).
  uint32_t convergence_requests = 1000;
  // Number of hot methods the tiered-compilation model tracks.
  uint32_t hot_method_count = 12;
  // Fraction of the converged speedup granted by the cheap baseline tier
  // (reached within the first few dozen requests).
  double baseline_speedup_fraction = 0.55;
  // Per-request probability of a deoptimization event once optimized.
  double deopt_rate = 0.002;
  // Garbage-collection pause model: per-request pause probability and the
  // mean pause length (lognormal-distributed around it). Contributes the
  // occasional latency spike real managed runtimes exhibit.
  double gc_pause_probability = 0.0;
  Duration gc_pause_mean;
  // Input-class sensitivity of speculative optimizations (§6 workload- and
  // input-awareness). Optimized code specializes to the input class it was
  // profiled on; serving a request of a different class multiplies that
  // method's deopt probability by (1 + class_sensitivity). 0 = the workload's
  // code paths do not depend on the input class (the Table 3 default).
  double class_sensitivity = 0.0;

  // --- Cost model (Table 4) ----------------------------------------------
  // Runtime cold-start initialization (process spawn + runtime boot).
  Duration cold_init;
  // Extra one-off cost folded into the very first request (lazy init of
  // interpreter / JIT data structures, §5.1 Orchestration policies note).
  Duration lazy_init_cost;
  Duration checkpoint_mean;
  Duration checkpoint_stddev;
  Duration restore_mean;
  Duration restore_stddev;
  // Uncompressed snapshot image size.
  double snapshot_mb = 50.0;

  // True when the workload is dominated by I/O (Compression, Uploader,
  // Thumbnailer, Video) — used by harness summaries, not by the policy.
  bool io_bound = false;

  // True for profiles outside the paper's 13-benchmark evaluation set of
  // Table 3 (e.g. the JSON parser of Table 1, which comes from the authors'
  // earlier HotOS paper [23]). Auxiliary profiles are available by name but
  // excluded from "all benchmarks" sweeps.
  bool auxiliary = false;

  // Converged noiseless end-to-end latency (io + compute/speedup).
  Duration ConvergedLatency() const;
  // Interpreted noiseless end-to-end latency (io + compute).
  Duration InterpretedLatency() const;
};

// Immutable registry of benchmark profiles keyed by name. The default
// registry carries the paper's 13 benchmarks; tests may build custom ones.
class WorkloadRegistry {
 public:
  // Builds the 13-benchmark registry of Table 3.
  static const WorkloadRegistry& Default();

  // Registry from an explicit profile list (names must be unique).
  static Result<WorkloadRegistry> Create(std::vector<WorkloadProfile> profiles);

  Result<const WorkloadProfile*> Find(std::string_view name) const;
  std::span<const WorkloadProfile> profiles() const { return profiles_; }

  // The paper's Table 3 evaluation set (profiles not marked auxiliary).
  std::vector<const WorkloadProfile*> EvaluationSet() const;

  // Names of all non-auxiliary profiles for a runtime family, in registry
  // order.
  std::vector<std::string> NamesForFamily(RuntimeFamily family) const;

 private:
  WorkloadRegistry() = default;

  std::vector<WorkloadProfile> profiles_;
};

}  // namespace pronghorn

#endif  // PRONGHORN_SRC_WORKLOADS_WORKLOAD_PROFILE_H_
