#include "src/workloads/input_model.h"

#include "src/common/mathutil.h"

namespace pronghorn {

InputModel::InputModel(const WorkloadProfile& profile, bool enable_noise)
    : sigma_(profile.input_noise_sigma), enabled_(enable_noise) {}

double InputModel::NextScale(Rng& rng) const {
  if (!enabled_ || sigma_ <= 0.0) {
    return 1.0;
  }
  return Clamp(rng.LogNormal(0.0, sigma_), kMinScale, kMaxScale);
}

}  // namespace pronghorn
