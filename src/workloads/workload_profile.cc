#include "src/workloads/workload_profile.h"

#include <unordered_map>
#include <utility>

namespace pronghorn {

std::string_view RuntimeFamilyName(RuntimeFamily family) {
  switch (family) {
    case RuntimeFamily::kJvm:
      return "JVM";
    case RuntimeFamily::kPyPy:
      return "PyPy";
  }
  return "UNKNOWN";
}

Duration WorkloadProfile::ConvergedLatency() const {
  return io_base + compute_base * (1.0 / converged_speedup);
}

Duration WorkloadProfile::InterpretedLatency() const { return io_base + compute_base; }

namespace {

// Shared per-family cost defaults; per-benchmark figures below come from the
// paper's Table 4 (checkpoint/restore ms and snapshot MB, mean values).
constexpr int64_t kJvmColdInitMs = 450;
constexpr int64_t kPyPyColdInitMs = 180;

struct CostRow {
  double checkpoint_ms;
  double checkpoint_sd;
  double restore_ms;
  double restore_sd;
  double snapshot_mb;
};

WorkloadProfile MakeJavaProfile(std::string name, int64_t compute_ms, double speedup,
                                int64_t lazy_init_ms, double input_sigma,
                                double input_exponent, uint32_t convergence,
                                const CostRow& cost) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.family = RuntimeFamily::kJvm;
  p.compute_base = Duration::Millis(compute_ms);
  p.converged_speedup = speedup;
  p.io_base = Duration::Zero();
  p.io_noise_sigma = 0.05;
  p.input_noise_sigma = input_sigma;
  p.input_scale_exponent = input_exponent;
  p.convergence_requests = convergence;
  p.hot_method_count = 20;
  p.baseline_speedup_fraction = 0.55;
  p.deopt_rate = 0.003;
  p.gc_pause_probability = 0.012;
  p.gc_pause_mean = Duration::Millis(15);
  p.cold_init = Duration::Millis(kJvmColdInitMs);
  p.lazy_init_cost = Duration::Millis(lazy_init_ms);
  p.checkpoint_mean = Duration::Millis(static_cast<int64_t>(cost.checkpoint_ms));
  p.checkpoint_stddev = Duration::Millis(static_cast<int64_t>(cost.checkpoint_sd));
  p.restore_mean = Duration::Millis(static_cast<int64_t>(cost.restore_ms));
  p.restore_stddev = Duration::Millis(static_cast<int64_t>(cost.restore_sd));
  p.snapshot_mb = cost.snapshot_mb;
  return p;
}

WorkloadProfile MakePythonComputeProfile(std::string name, int64_t compute_ms,
                                         double speedup, double input_sigma,
                                         uint32_t convergence, const CostRow& cost) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.family = RuntimeFamily::kPyPy;
  p.compute_base = Duration::Millis(compute_ms);
  p.converged_speedup = speedup;
  p.io_base = Duration::Zero();
  p.io_noise_sigma = 0.05;
  p.input_noise_sigma = input_sigma;
  p.input_scale_exponent = 1.0;
  p.convergence_requests = convergence;
  p.hot_method_count = 12;
  p.baseline_speedup_fraction = 0.7;
  p.deopt_rate = 0.002;
  p.gc_pause_probability = 0.008;
  p.gc_pause_mean = Duration::Millis(8);
  p.cold_init = Duration::Millis(kPyPyColdInitMs);
  p.lazy_init_cost = Duration::Millis(compute_ms / 2);
  p.checkpoint_mean = Duration::Millis(static_cast<int64_t>(cost.checkpoint_ms));
  p.checkpoint_stddev = Duration::Millis(static_cast<int64_t>(cost.checkpoint_sd));
  p.restore_mean = Duration::Millis(static_cast<int64_t>(cost.restore_ms));
  p.restore_stddev = Duration::Millis(static_cast<int64_t>(cost.restore_sd));
  p.snapshot_mb = cost.snapshot_mb;
  return p;
}

WorkloadProfile MakePythonIoProfile(std::string name, int64_t io_ms, double io_sigma,
                                    int64_t compute_ms, double speedup,
                                    double io_coupling, const CostRow& cost) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.family = RuntimeFamily::kPyPy;
  p.compute_base = Duration::Millis(compute_ms);
  p.converged_speedup = speedup;
  p.io_base = Duration::Millis(io_ms);
  p.io_noise_sigma = io_sigma;
  p.input_noise_sigma = 0.45;
  p.input_scale_exponent = 1.0;
  p.io_input_coupling = io_coupling;
  p.convergence_requests = 900;
  p.hot_method_count = 10;
  p.baseline_speedup_fraction = 0.6;
  p.deopt_rate = 0.002;
  p.gc_pause_probability = 0.008;
  p.gc_pause_mean = Duration::Millis(8);
  p.cold_init = Duration::Millis(kPyPyColdInitMs);
  p.lazy_init_cost = Duration::Millis(compute_ms / 2 + io_ms / 10);
  p.checkpoint_mean = Duration::Millis(static_cast<int64_t>(cost.checkpoint_ms));
  p.checkpoint_stddev = Duration::Millis(static_cast<int64_t>(cost.checkpoint_sd));
  p.restore_mean = Duration::Millis(static_cast<int64_t>(cost.restore_ms));
  p.restore_stddev = Duration::Millis(static_cast<int64_t>(cost.restore_sd));
  p.snapshot_mb = cost.snapshot_mb;
  p.io_bound = true;
  return p;
}

std::vector<WorkloadProfile> BuildDefaultProfiles() {
  std::vector<WorkloadProfile> out;
  out.reserve(13);

  // --- Java / JVM (Table 3, calibrated to Table 1 and Figure 5) ----------
  // Table 4 cost rows: checkpoint ms +- sd, restore ms +- sd, snapshot MB.
  out.push_back(MakeJavaProfile("HTMLRendering", /*compute_ms=*/140, /*speedup=*/5.0,
                                /*lazy_init_ms=*/500, /*input_sigma=*/0.9,
                                /*input_exponent=*/1.0, /*convergence=*/2500,
                                CostRow{70.7, 25, 50.4, 5.8, 10.5}));
  out.push_back(MakeJavaProfile("MatrixMult", 150, 6.0, 150, 0.8, 1.5, 2200,
                                CostRow{66.1, 11, 51.5, 3.9, 10.6}));
  out.push_back(MakeJavaProfile("Hash", 22, 2.5, 5, 0.9, 1.0, 1500,
                                CostRow{60.6, 13, 52.5, 3.8, 10.6}));
  out.push_back(MakeJavaProfile("WordCount", 55, 3.4, 9, 0.9, 1.0, 1800,
                                CostRow{67.9, 18, 55.2, 4.0, 13.3}));

  // --- Python / PyPy, compute-bound (graph workloads + DynamicHTML) ------
  out.push_back(MakePythonComputeProfile("BFS", 90, 3.5, 1.4, 950,
                                         CostRow{85.6, 21, 73.8, 9.5, 55.5}));
  out.push_back(MakePythonComputeProfile("DFS", 40, 3.2, 1.4, 850,
                                         CostRow{85.7, 21, 70.8, 13, 55.8}));
  out.push_back(MakePythonComputeProfile("MST", 60, 3.0, 1.4, 900,
                                         CostRow{79.6, 23, 77.1, 2.1, 56.1}));
  {
    WorkloadProfile p = MakePythonComputeProfile("DynamicHTML", 10, 2.0, 0.7, 1000,
                                                 CostRow{74.4, 22, 75.3, 6.5, 54.1});
    out.push_back(std::move(p));
  }
  out.push_back(MakePythonComputeProfile("PageRank", 140, 4.0, 1.4, 1000,
                                         CostRow{74.4, 16, 80.5, 7.2, 64.0}));

  // --- Python / PyPy, I/O-bound ------------------------------------------
  // Uploader calls out to a native C library; JIT benefit is marginal
  // (speedup ~1.05), matching the paper's explanation of why it does not
  // profit from Pronghorn.
  out.push_back(MakePythonIoProfile("Uploader", /*io_ms=*/280, /*io_sigma=*/0.5,
                                    /*compute_ms=*/25, /*speedup=*/1.05,
                                    /*io_coupling=*/0.8,
                                    CostRow{100.2, 13, 30.2, 2.4, 61.2}));
  out.push_back(MakePythonIoProfile("Thumbnailer", 350, 0.4, 50, 1.25, 0.6,
                                    CostRow{100.7, 14, 67.0, 6.3, 62.0}));
  out.push_back(MakePythonIoProfile("Video", 2200, 0.4, 250, 1.2, 0.7,
                                    CostRow{91.1, 12, 40.4, 2.4, 60.1}));
  out.push_back(MakePythonIoProfile("Compression", 2000, 0.4, 400, 1.35, 0.7,
                                    CostRow{105.0, 8, 39.1, 1.3, 61.0}));

  // --- Auxiliary: the JSON parser of Table 1 (from the authors' HotOS'21
  // paper [23]; not part of the Table 3 evaluation set). Request #1 is
  // 360 ms and the speedup peaks at 5.9x around request 400 before dipping
  // again (deoptimization rounds).
  {
    WorkloadProfile p = MakeJavaProfile("JSONParse", /*compute_ms=*/340,
                                        /*speedup=*/5.9, /*lazy_init_ms=*/20,
                                        /*input_sigma=*/0.9, /*input_exponent=*/1.0,
                                        /*convergence=*/2000,
                                        CostRow{68.0, 15, 52.0, 4.0, 11.2});
    p.deopt_rate = 0.006;  // Table 1 shows pronounced non-monotonicity.
    p.auxiliary = true;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

const WorkloadRegistry& WorkloadRegistry::Default() {
  static const WorkloadRegistry* registry = [] {
    auto result = Create(BuildDefaultProfiles());
    // The default profile list is statically valid.
    return new WorkloadRegistry(std::move(result).value());
  }();
  return *registry;
}

Result<WorkloadRegistry> WorkloadRegistry::Create(std::vector<WorkloadProfile> profiles) {
  std::unordered_map<std::string_view, int> seen;
  for (const WorkloadProfile& p : profiles) {
    if (p.name.empty()) {
      return InvalidArgumentError("workload profile with empty name");
    }
    if (p.converged_speedup < 1.0) {
      return InvalidArgumentError("converged_speedup must be >= 1 for " + p.name);
    }
    if (p.hot_method_count == 0 || p.convergence_requests == 0) {
      return InvalidArgumentError("degenerate warm-up shape for " + p.name);
    }
    if (++seen[p.name] > 1) {
      return AlreadyExistsError("duplicate workload profile: " + p.name);
    }
  }
  WorkloadRegistry registry;
  registry.profiles_ = std::move(profiles);
  return registry;
}

Result<const WorkloadProfile*> WorkloadRegistry::Find(std::string_view name) const {
  for (const WorkloadProfile& p : profiles_) {
    if (p.name == name) {
      return &p;
    }
  }
  return NotFoundError("no workload profile named '" + std::string(name) + "'");
}

std::vector<const WorkloadProfile*> WorkloadRegistry::EvaluationSet() const {
  std::vector<const WorkloadProfile*> out;
  for (const WorkloadProfile& p : profiles_) {
    if (!p.auxiliary) {
      out.push_back(&p);
    }
  }
  return out;
}

std::vector<std::string> WorkloadRegistry::NamesForFamily(RuntimeFamily family) const {
  std::vector<std::string> names;
  for (const WorkloadProfile& p : profiles_) {
    if (p.family == family && !p.auxiliary) {
      names.push_back(p.name);
    }
  }
  return names;
}

}  // namespace pronghorn
