// Chaos exhibit: graceful degradation of the request-centric policy under an
// injected fault schedule.
//
// The paper's evaluation runs on a healthy control plane; this exhibit asks
// what the policy's headline properties cost when the control plane is not
// healthy. We sweep the transient fault rate applied to every Database and
// Object Store operation (plus a small corruption rate on stored images) and
// report, per rate: the converged median latency, the Table-4 convergence
// request, and what the recovery machinery had to do (fallback restores,
// quarantined snapshots, degraded starts, skipped checkpoints).
//
// Expected shape: at transient fault rates up to ~10% the policy still
// converges within W+100 requests and the median stays near the fault-free
// value — retries, ranked fallback restores, and the quarantine ledger absorb
// the faults off the user path. Past ~20% the convergence point drifts and
// cold starts reappear as restores exhaust their candidate lists.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 600;
constexpr uint32_t kEvictionK = 4;
constexpr uint64_t kSeed = 42;
constexpr size_t kConvergenceWindow = 20;
constexpr double kConvergenceTolerance = 0.02;

void Row(const WorkloadProfile& profile, double fault_rate) {
  const PolicyConfig config = PaperConfig(profile, kEvictionK);
  const auto policy = MakePolicy(PolicyKind::kRequestCentric, config);

  SimOptions options;
  options.seed = kSeed;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  options.faults.get_failure_rate = fault_rate;
  options.faults.put_failure_rate = fault_rate;
  options.faults.delete_failure_rate = fault_rate;
  options.faults.metadata_failure_rate = fault_rate;
  // A fifth of the fault rate as image bit-flips: corruption is rarer than
  // transient unavailability but is the failure the CRC + quarantine path
  // exists for.
  options.faults.corruption_rate = fault_rate / 5.0;
  SimFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = policy.get();
  spec.requests = kRequests;
  auto result = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  const SimulationReport* report = &result->flat();

  const auto convergence =
      ConvergenceRequest(report->records, kConvergenceWindow, kConvergenceTolerance);
  char converged[32];
  if (convergence.has_value()) {
    std::snprintf(converged, sizeof(converged), "%8llu",
                  static_cast<unsigned long long>(*convergence));
  } else {
    std::snprintf(converged, sizeof(converged), "%8s", "never");
  }
  const FaultRecoveryStats& faults = report->faults;
  std::printf("  %4.0f%%  %9.0f  %s  %5llu %9llu %11llu %9llu %8llu %9llu\n",
              fault_rate * 100.0, report->MedianLatencyUs(), converged,
              static_cast<unsigned long long>(report->cold_starts),
              static_cast<unsigned long long>(faults.restore_fallbacks),
              static_cast<unsigned long long>(faults.snapshots_quarantined),
              static_cast<unsigned long long>(faults.degraded_starts),
              static_cast<unsigned long long>(faults.checkpoints_skipped),
              static_cast<unsigned long long>(faults.store_faults + faults.db_faults));
}

void Run() {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const uint64_t budget =
      PaperConfig(profile, kEvictionK).max_checkpoint_request + 100;
  std::printf("Chaos degradation: DynamicHTML, request-centric, every-%u eviction, "
              "%llu requests\n",
              kEvictionK, static_cast<unsigned long long>(kRequests));
  std::printf("(expected: converges within W+100 = %llu at fault rates <= 10%%)\n",
              static_cast<unsigned long long>(budget));
  PrintRule();
  std::printf("  rate   median_us  converged  colds fallbacks quarantined  degraded "
              "ckpt_skip  injected\n");
  PrintRule();
  for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    Row(profile, rate);
  }
  PrintRule();
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  pronghorn::bench::Run();
  return 0;
}
