// Ablation (paper §6 "Lifetime estimation"): what happens when the cloud
// operator's worker-lifetime estimate beta diverges from the true eviction
// behavior. An underestimate checkpoints earlier than ideal (slower
// exploration per the paper); an overestimate plans checkpoints at request
// numbers the worker may never reach.
//
// We run two eviction regimes. Under DETERMINISTIC every-k eviction, a hard
// overestimate can deadlock exploration: once the first k request numbers are
// explored, all checkpoint probability mass sits beyond reach and no snapshot
// is ever taken. Under GEOMETRIC eviction with mean k — the realistic reading
// of beta as an average — some workers live long enough to reach the planned
// request, which is exactly the paper's §6 argument ("most likely some of
// them will regularly reach the predicted lifetime").

#include "bench/exhibit_common.h"
#include "src/platform/function_simulation.h"

namespace pronghorn::bench {
namespace {

constexpr uint32_t kTrueMeanLifetime = 8;
constexpr uint64_t kRequests = 500;

void Row(const WorkloadProfile& profile, uint32_t assumed_beta, bool geometric) {
  PolicyConfig config = PaperConfig(profile, kTrueMeanLifetime);
  config.beta = assumed_beta;
  const auto policy = MakePolicy(PolicyKind::kRequestCentric, config);

  std::unique_ptr<EvictionModel> eviction;
  if (geometric) {
    auto model = GeometricEviction::Create(kTrueMeanLifetime, /*seed=*/55);
    if (!model.ok()) {
      std::exit(1);
    }
    eviction = *std::move(model);
  } else {
    auto model = EveryKRequestsEviction::Create(kTrueMeanLifetime);
    if (!model.ok()) {
      std::exit(1);
    }
    eviction = *std::move(model);
  }

  SimOptions options;
  options.seed = 77;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, *eviction,
                         options);
  auto report = sim.RunClosedLoop(kRequests);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  const char* relation = assumed_beta < kTrueMeanLifetime   ? "under-estimate"
                         : assumed_beta > kTrueMeanLifetime ? "over-estimate"
                                                            : "exact";
  std::printf("  beta=%-3u (%-14s)  median %9.0f us   checkpoints %4llu   "
              "restores %4llu\n",
              assumed_beta, relation, report->MedianLatencyUs(),
              static_cast<unsigned long long>(report->checkpoints),
              static_cast<unsigned long long>(report->restores));
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Ablation: worker-lifetime (beta) mis-estimation ===\n");
  std::printf("true mean lifetime: %u requests; BFS, %llu requests\n", kTrueMeanLifetime,
              static_cast<unsigned long long>(kRequests));
  const auto& profile = MustFind("BFS");

  std::printf("\ndeterministic every-%u eviction (no lifetime variance):\n",
              kTrueMeanLifetime);
  for (uint32_t beta : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    Row(profile, beta, /*geometric=*/false);
  }
  std::printf("  -> hard over-estimates can strand all checkpoint probability mass\n"
              "     beyond the workers' reach (0 checkpoints): an exploration\n"
              "     deadlock the paper's variance argument implicitly rules out.\n");

  std::printf("\ngeometric eviction, mean %u (realistic lifetime variance):\n",
              kTrueMeanLifetime);
  for (uint32_t beta : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    Row(profile, beta, /*geometric=*/true);
  }
  std::printf("  -> with variance, long-lived workers keep reaching planned\n"
              "     checkpoints; both under- and over-estimates degrade gently\n"
              "     (paper §6).\n");
  return 0;
}
