// Ablation (paper §6 "Tuning Pronghorn"): sensitivity of the request-centric
// policy to its learning knobs — the EWMA proportion alpha, the pool
// capacity C, the retention split p/gamma, and the softmax temperature.
// DESIGN.md calls these out as the design choices worth ablating.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint32_t kEvictionK = 1;
constexpr uint64_t kRequests = 500;

double MedianFor(const WorkloadProfile& profile, const PolicyConfig& config,
                 uint64_t seed) {
  const auto policy = MakePolicy(PolicyKind::kRequestCentric, config);
  SimOptions options;
  options.seed = seed;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  SimFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = policy.get();
  spec.requests = kRequests;
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  return report->flat().MedianLatencyUs();
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn;
  using namespace pronghorn::bench;
  const auto& profile = MustFind("DynamicHTML");
  const PolicyConfig base = PaperConfig(profile, kEvictionK);
  std::printf("=== Ablation: policy parameter sensitivity (DynamicHTML, eviction 1, "
              "500 requests) ===\n");
  std::printf("paper defaults: alpha=%.2f  C=%u  p=%.0f%%  gamma=%.0f%%  tau=%.1f\n\n",
              base.alpha, base.pool_capacity, base.retain_top_percent,
              base.retain_random_percent, base.softmax_temperature);

  std::printf("EWMA proportion alpha (learning speed vs stability):\n");
  for (double alpha : {0.05, 0.1, 0.3, 0.5, 0.9, 1.0}) {
    PolicyConfig config = base;
    config.alpha = alpha;
    std::printf("  alpha=%.2f   median %9.0f us\n", alpha,
                MedianFor(profile, config, 5));
  }

  std::printf("\nsnapshot pool capacity C (storage vs search breadth; the paper\n"
              "suggests C=2 as the cheap configuration):\n");
  for (uint32_t capacity : {1u, 2u, 4u, 8u, 12u, 24u}) {
    PolicyConfig config = base;
    config.pool_capacity = capacity;
    std::printf("  C=%-3u       median %9.0f us\n", capacity,
                MedianFor(profile, config, 6));
  }

  std::printf("\nretention split p/gamma at pool eviction:\n");
  struct Split {
    double p;
    double gamma;
  };
  for (Split split : {Split{40, 10}, Split{40, 0}, Split{80, 10}, Split{10, 10},
                      Split{10, 50}}) {
    PolicyConfig config = base;
    config.retain_top_percent = split.p;
    config.retain_random_percent = split.gamma;
    std::printf("  p=%3.0f%% gamma=%3.0f%%   median %9.0f us\n", split.p, split.gamma,
                MedianFor(profile, config, 7));
  }

  std::printf("\nsoftmax temperature (exploit sharpness):\n");
  for (double tau : {0.1, 0.5, 1.0, 5.0, 50.0}) {
    PolicyConfig config = base;
    config.softmax_temperature = tau;
    std::printf("  tau=%-5.1f    median %9.0f us\n", tau,
                MedianFor(profile, config, 8));
  }

  std::printf("\n(expected shape: broad plateaus around the paper's defaults --\n"
              " the policy is not hypersensitive; tiny pools and very cold/hot\n"
              " temperatures cost a few percent.)\n");
  return 0;
}
