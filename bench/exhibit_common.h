// Shared helpers for the exhibit harnesses (one binary per paper table or
// figure). Each harness prints the rows/series of its exhibit; absolute
// numbers come from the simulated substrate, so the *shape* (who wins, by
// roughly what factor, where crossovers fall) is the comparison target, not
// the paper's testbed-specific values.

#ifndef PRONGHORN_BENCH_EXHIBIT_COMMON_H_
#define PRONGHORN_BENCH_EXHIBIT_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/analysis.h"
#include "src/platform/simulate.h"

namespace pronghorn::bench {

// --- Measurement discipline -------------------------------------------------
//
// Every wall-clock number a bench emits goes through warmup + median-of-N:
// the first rep(s) pay cold caches, lazy page faults, and branch-predictor
// training, and any single rep can eat a scheduler preemption. The median is
// robust to those one-sided outliers where a mean is not; min/max are kept so
// the JSON records how noisy the machine was (a wide spread says "rerun
// before trusting a small delta").

struct TimingSample {
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  // Half the min..max width as a fraction of the median — the "±" the
  // comparison tool weighs a delta against.
  double SpreadFraction() const {
    if (median_seconds <= 0.0) {
      return 0.0;
    }
    return (max_seconds - min_seconds) / (2.0 * median_seconds);
  }
};

// Times `fn` `reps` times after `warmup` untimed runs; returns the median
// with the min/max envelope. `fn` must be idempotent (each rep repeats the
// same work).
template <typename Fn>
TimingSample MeasureMedianSeconds(int warmup, int reps, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    seconds.push_back(std::chrono::duration<double>(end - start).count());
  }
  std::sort(seconds.begin(), seconds.end());
  TimingSample sample;
  sample.min_seconds = seconds.front();
  sample.max_seconds = seconds.back();
  sample.median_seconds = seconds[seconds.size() / 2];
  if (seconds.size() % 2 == 0) {
    sample.median_seconds =
        (seconds[seconds.size() / 2 - 1] + seconds[seconds.size() / 2]) / 2.0;
  }
  return sample;
}

// --- Machine metadata -------------------------------------------------------
//
// Committed BENCH_*.json baselines are only comparable to reruns on the same
// class of machine, so every writer stamps what it ran on. A baseline from a
// 1-core container and a rerun on a 32-core workstation should be visibly
// incomparable from the JSON alone.

struct MachineInfo {
  uint32_t hardware_threads = 0;
  std::string cpu_governor;  // "unknown" when sysfs is unreadable (containers).
};

inline MachineInfo QueryMachineInfo() {
  MachineInfo info;
  info.hardware_threads = ThreadPool::DefaultThreadCount();
  std::ifstream governor("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (!governor || !std::getline(governor, info.cpu_governor) ||
      info.cpu_governor.empty()) {
    info.cpu_governor = "unknown";
  }
  return info;
}

// Emits `"machine": {...},` (with trailing comma) at `indent`.
inline void EmitMachineJson(std::FILE* out, const char* indent) {
  const MachineInfo info = QueryMachineInfo();
  std::fprintf(out,
               "%s\"machine\": {\"hardware_threads\": %u, "
               "\"cpu_governor\": \"%s\"},\n",
               indent, info.hardware_threads, info.cpu_governor.c_str());
}

// The evaluation's policy parameters (§5.1 "Orchestration policies"):
// p = 40%, gamma = 10%, C = 12, W = 100 (PyPy) / 200 (JVM), beta = the
// eviction interval under test.
inline PolicyConfig PaperConfig(const WorkloadProfile& profile, uint32_t eviction_k) {
  PolicyConfig config;
  config.beta = eviction_k;
  config.pool_capacity = 12;
  config.max_checkpoint_request = profile.family == RuntimeFamily::kJvm ? 200 : 100;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  return config;
}

inline const WorkloadProfile& MustFind(const char* name) {
  auto profile = WorkloadRegistry::Default().Find(name);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown benchmark %s: %s\n", name,
                 profile.status().ToString().c_str());
    std::exit(1);
  }
  return **profile;
}

enum class PolicyKind { kCold, kAfterFirst, kRequestCentric };

inline const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCold:
      return "Cold";
    case PolicyKind::kAfterFirst:
      return "Checkpoint after 1st";
    case PolicyKind::kRequestCentric:
      return "Request-centric";
  }
  return "?";
}

inline std::unique_ptr<OrchestrationPolicy> MakePolicy(PolicyKind kind,
                                                       const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kCold:
      return std::make_unique<ColdStartPolicy>(config);
    case PolicyKind::kAfterFirst:
      return std::make_unique<CheckpointAfterFirstPolicy>(config);
    case PolicyKind::kRequestCentric: {
      auto policy = RequestCentricPolicy::Create(config);
      if (!policy.ok()) {
        std::fprintf(stderr, "bad policy config: %s\n",
                     policy.status().ToString().c_str());
        std::exit(1);
      }
      return std::make_unique<RequestCentricPolicy>(*std::move(policy));
    }
  }
  return nullptr;
}

// Runs one closed-loop experiment (the §5.1 measurement protocol) through
// the unified Simulate() entry point in its single-function configuration
// (one worker slot, sub-seed = seed — the historical FunctionSimulation).
inline SimulationReport RunClosedLoop(const WorkloadProfile& profile, PolicyKind kind,
                                      uint32_t eviction_k, uint64_t requests,
                                      uint64_t seed, bool input_noise = true) {
  const PolicyConfig config = PaperConfig(profile, eviction_k);
  const auto policy = MakePolicy(kind, config);
  SimOptions options;
  options.seed = seed;
  options.input_noise = input_noise;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = eviction_k;
  SimFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = policy.get();
  spec.requests = requests;
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report->per_function.front().report);
}

// Prints a percentile row of a latency distribution in microseconds.
inline void PrintPercentileRow(const char* label, const DistributionSummary& summary) {
  std::printf("  %-22s p10=%9.0f  p25=%9.0f  p50=%9.0f  p75=%9.0f  p90=%9.0f  "
              "p99=%9.0f\n",
              label, summary.Quantile(10), summary.Quantile(25), summary.Quantile(50),
              summary.Quantile(75), summary.Quantile(90), summary.Quantile(99));
}

// Renders the distribution as an ASCII density over a log-scale latency axis
// (the visual analogue of the paper's log-x CDF panels). `log10_lo/hi` bound
// the axis in log10(microseconds).
inline void PrintAsciiDensity(const char* label, const DistributionSummary& summary,
                              double log10_lo, double log10_hi) {
  LogHistogram histogram(log10_lo, log10_hi, 60);
  for (double v : summary.samples()) {
    histogram.Add(v);
  }
  std::printf("  %-22s |%s| 1e%.0f..1e%.0f us\n", label,
              histogram.ToAsciiArt(60).c_str(), log10_lo, log10_hi);
}

// Shared log-axis bounds covering both distributions.
inline std::pair<double, double> SharedLogBounds(const DistributionSummary& a,
                                                 const DistributionSummary& b) {
  const double lo = std::min(a.Quantile(1), b.Quantile(1));
  const double hi = std::max(a.Quantile(99), b.Quantile(99));
  const double log_lo = std::floor(std::log10(std::max(lo, 1.0)));
  const double log_hi = std::ceil(std::log10(std::max(hi, 10.0)));
  return {log_lo, log_hi};
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------------"
              "-----------------------------\n");
}

}  // namespace pronghorn::bench

#endif  // PRONGHORN_BENCH_EXHIBIT_COMMON_H_
