// Figure 4: CDFs of end-to-end request latency (microseconds) for the nine
// Python benchmarks across the three orchestration strategies and three
// container eviction rates (1, 4, 20 requests per worker), 500 invocations
// each with high input variance (§5.1).
//
// Also prints the §5.2 headline aggregation: per-benchmark median improvement
// of the request-centric policy over checkpoint-after-1st, and the geometric
// mean over winning benchmarks per eviction rate.

#include <map>

#include "bench/exhibit_common.h"
#include "src/common/mathutil.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 500;
constexpr uint32_t kEvictionRates[] = {1, 4, 20};
constexpr PolicyKind kPolicies[] = {PolicyKind::kCold, PolicyKind::kAfterFirst,
                                    PolicyKind::kRequestCentric};

const char* kBenchmarks[] = {"BFS",      "DFS",         "DynamicHTML",
                             "MST",      "PageRank",    "Compression",
                             "Uploader", "Thumbnailer", "Video"};

void RunExhibit() {
  // improvement[k] -> per-benchmark median improvement (RC vs after-1st).
  std::map<uint32_t, std::vector<double>> winners;
  std::map<uint32_t, int> on_par_count;
  std::map<uint32_t, int> worse_count;

  for (const char* benchmark : kBenchmarks) {
    const WorkloadProfile& profile = MustFind(benchmark);
    std::printf("\n%s\n", benchmark);
    for (uint32_t k : kEvictionRates) {
      std::printf(" eviction: every %u request(s)\n", k);
      double after_first_median = 0.0;
      double request_centric_median = 0.0;
      std::vector<DistributionSummary> summaries;
      for (PolicyKind kind : kPolicies) {
        const SimulationReport report =
            RunClosedLoop(profile, kind, k, kRequests, /*seed=*/91u + k);
        summaries.push_back(report.LatencySummary());
        const DistributionSummary& summary = summaries.back();
        PrintPercentileRow(PolicyKindName(kind), summary);
        if (kind == PolicyKind::kAfterFirst) {
          after_first_median = summary.Median();
        } else if (kind == PolicyKind::kRequestCentric) {
          request_centric_median = summary.Median();
        }
      }
      const auto [log_lo, log_hi] = SharedLogBounds(summaries[1], summaries[2]);
      for (size_t s = 0; s < summaries.size(); ++s) {
        PrintAsciiDensity(PolicyKindName(kPolicies[s]), summaries[s], log_lo, log_hi);
      }
      const double improvement =
          (after_first_median - request_centric_median) / after_first_median * 100.0;
      std::printf("  -> request-centric median improvement over after-1st: %+.1f%%\n",
                  improvement);
      if (improvement > 5.0) {
        winners[k].push_back(improvement);
      } else if (improvement >= -5.0) {
        on_par_count[k] += 1;
      } else {
        worse_count[k] += 1;
      }
    }
  }

  std::printf("\n=== Headline aggregation (paper §5.2) ===\n");
  for (uint32_t k : kEvictionRates) {
    const double geomean = GeometricMean(winners[k]);
    std::printf("eviction %2u: %zu/9 better (geomean improvement %.1f%%), "
                "%d on-par (within 5%%), %d worse\n",
                k, winners[k].size(), geomean, on_par_count[k], worse_count[k]);
  }
  std::printf("(paper: geomean 37.2%% at eviction 1, 22.5%% at 4, 13.5%% at 20,\n"
              " across Python+Java winners; Uploader worse at eviction 1 and 4)\n");
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Figure 4: Python benchmark latency CDFs (us) ===\n");
  pronghorn::bench::RunExhibit();
  return 0;
}
