// Ablation (paper §7 related work): keep-alive versus checkpoint-restore.
//
// "Existing approaches that keep containers alive necessarily incur high
// costs to the cloud provider ... Pronghorn provides high performance to
// the end-user while still retaining cloud providers' flexibility on when to
// evict containers." We quantify both sides of that trade on a sparse
// Poisson arrival stream (~1 request/minute): longer idle timeouts keep
// workers warm (low latency, high memory-time); short timeouts with the
// request-centric policy get hot-start latency at a fraction of the
// provider-side occupancy.

#include "bench/exhibit_common.h"
#include "src/platform/function_simulation.h"
#include "src/trace/trace_generator.h"

namespace pronghorn::bench {
namespace {

std::vector<TimePoint> SparseArrivals(uint64_t seed) {
  // ~1 request per 10 minutes over 24 hours => ~144 requests. The paper's
  // Azure data: ~75% of functions see at most one invocation per 10 minutes.
  Rng rng(seed);
  std::vector<TimePoint> arrivals;
  double t = 0.0;
  while (t < 24.0 * 3600.0) {
    t += rng.Exponential(1.0 / 600.0);
    arrivals.push_back(TimePoint::FromMicros(static_cast<int64_t>(t * 1e6)));
  }
  return arrivals;
}

void Row(const WorkloadProfile& profile, PolicyKind kind, int64_t idle_timeout_s) {
  const PolicyConfig config = PaperConfig(profile, /*eviction_k=*/1);
  const auto policy = MakePolicy(kind, config);
  IdleTimeoutEviction eviction(Duration::Seconds(static_cast<double>(idle_timeout_s)));
  SimOptions options;
  options.seed = 42;
  options.lifecycle.idle_resource_hold = eviction.timeout();
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, eviction,
                         options);
  const std::vector<TimePoint> arrivals = SparseArrivals(9);
  auto report = sim.RunTrace(arrivals);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  const double gb_minutes = report->worker_memory_time_mb_s / 1024.0 / 60.0;
  std::printf("  %-22s idle-timeout %5llds   median %8.0f us   lifetimes %4llu   "
              "memory-time %7.1f GB-min\n",
              PolicyKindName(kind), static_cast<long long>(idle_timeout_s),
              report->MedianLatencyUs(),
              static_cast<unsigned long long>(report->worker_lifetimes), gb_minutes);
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Ablation: keep-alive vs checkpoint-restore cost trade ===\n");
  std::printf("BFS, Poisson arrivals ~1 per 10 minutes over 24 hours\n\n");
  const auto& profile = MustFind("BFS");

  std::printf("keep-alive strategies (no checkpointing, pay idle memory):\n");
  for (int64_t timeout_s : {600, 1800, 7200}) {
    Row(profile, PolicyKind::kCold, timeout_s);
  }
  std::printf("\ncheckpoint-restore with aggressive eviction:\n");
  for (int64_t timeout_s : {30, 120}) {
    Row(profile, PolicyKind::kAfterFirst, timeout_s);
    Row(profile, PolicyKind::kRequestCentric, timeout_s);
  }
  std::printf("\n(expected shape: very long keep-alive approaches warm latency but\n"
              " holds GBs of idle memory; the request-centric policy reaches\n"
              " comparable medians at a fraction of the memory-time, preserving the\n"
              " provider's freedom to evict aggressively.)\n");
  return 0;
}
