// Figure 1: Dynamic HTML generation workload latency over ~2500 successive
// requests on the two optimizing runtimes (PyPy and the JVM), with the
// latency at the premature snapshot point (existing solutions: request 1)
// versus an ideal late snapshot (Pronghorn's target).
//
// The paper reports latency reductions of 33.33% (PyPy) and 75.60% (JVM).

#include "bench/exhibit_common.h"
#include "src/jit/runtime_process.h"

namespace pronghorn::bench {
namespace {

void PlotWarmup(const char* benchmark, uint64_t requests) {
  const WorkloadProfile& profile = MustFind(benchmark);
  // A single long-lived worker, noiseless inputs: the pure warm-up curve.
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, /*seed=*/2024);
  std::vector<double> latencies_us;
  latencies_us.reserve(requests);
  for (uint64_t i = 0; i < requests; ++i) {
    latencies_us.push_back(
        static_cast<double>(process.Execute({i, 1.0}).latency.ToMicros()));
  }

  std::printf("\n%s on %s (%llu successive requests, noiseless inputs)\n",
              benchmark, std::string(RuntimeFamilyName(profile.family)).c_str(),
              static_cast<unsigned long long>(requests));
  std::printf("  %-18s %14s\n", "request window", "median (us)");
  const uint64_t buckets = 25;
  const uint64_t width = requests / buckets;
  for (uint64_t b = 0; b < buckets; ++b) {
    const uint64_t lo = b * width;
    const uint64_t hi = std::min(lo + width, requests);
    std::vector<double> window(latencies_us.begin() + static_cast<ptrdiff_t>(lo),
                               latencies_us.begin() + static_cast<ptrdiff_t>(hi));
    std::printf("  [%5llu, %5llu)    %14.0f\n", static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi), Percentile(window, 50.0));
  }

  // Existing solutions snapshot at request 1 (serving maturity ~2 forever);
  // Pronghorn targets the converged region.
  // "Existing solutions" snapshot right after request 1; restored workers
  // then serve at that maturity, i.e. the latency of the first few requests.
  const double premature = Percentile(
      std::span<const double>(latencies_us.data() + 1, 4), 50.0);
  const double ideal = Percentile(
      std::span<const double>(latencies_us.data() + requests - 200, 200), 50.0);
  std::printf("  existing solutions (snapshot at request 1): %10.0f us\n", premature);
  std::printf("  Pronghorn target (converged snapshot):      %10.0f us\n", ideal);
  std::printf("  latency reduction: %.2f%%   (paper: %s)\n",
              (premature - ideal) / premature * 100.0,
              profile.family == RuntimeFamily::kPyPy ? "33.33%" : "75.60%");
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Figure 1: warm-up curves for Dynamic HTML generation ===\n");
  // Figure 1(a): PyPy 3.7 took ~1000 requests to converge.
  pronghorn::bench::PlotWarmup("DynamicHTML", 2000);
  // Figure 1(b): OpenJDK 17 took ~2500 requests.
  pronghorn::bench::PlotWarmup("HTMLRendering", 2600);
  return 0;
}
