// Ablation (paper §5.3 "Bounding system costs"): exploration amortized over
// a worker fleet. "Only a nonempty subset of containers running a given
// application need to be exploring in order to realize performance benefits
// ... with the degree of amortization chosen by the cloud provider." We
// sweep the number of exploring slots in an 8-slot cluster and report the
// cluster-wide median latency against the checkpointing cost incurred.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint32_t kWorkerSlots = 8;
constexpr uint64_t kRequests = 1600;
constexpr uint32_t kEvictionK = 4;

void Row(const WorkloadProfile& profile, uint32_t exploring_slots) {
  const PolicyConfig config = PaperConfig(profile, kEvictionK);
  auto policy = RequestCentricPolicy::Create(config);
  if (!policy.ok()) {
    std::exit(1);
  }
  SimOptions options;
  options.worker_slots = kWorkerSlots;
  options.exploring_slots = exploring_slots;
  options.seed = 21;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  SimFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = &*policy;
  spec.requests = kRequests;
  auto result = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  const SimulationReport& report = result->flat();
  const double cluster_median = report.LatencySummary().Median();
  const double exploit_median = report.exploiting_latency.empty()
                                    ? 0.0
                                    : report.exploiting_latency.Median();
  std::printf("  exploring %u/%u   cluster median %9.0f us   exploit-only median "
              "%9.0f us   checkpoints %4llu\n",
              exploring_slots, kWorkerSlots, cluster_median, exploit_median,
              static_cast<unsigned long long>(report.checkpoints));
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Ablation: fleet exploration amortization ===\n");
  std::printf("BFS, %u concurrent workers, eviction every %u requests, %llu total "
              "requests\n\n",
              kWorkerSlots, kEvictionK, static_cast<unsigned long long>(kRequests));
  const auto& profile = MustFind("BFS");
  for (uint32_t exploring : {0u, 1u, 2u, 4u, 8u}) {
    Row(profile, exploring);
  }
  std::printf("\n(expected shape: 0 exploring workers = no snapshots, cold fleet;\n"
              " a single exploring worker already delivers most of the latency\n"
              " benefit to the other 7 at ~1/8 of the checkpointing cost; more\n"
              " explorers buy faster convergence, not better steady state.)\n");
  return 0;
}
