// Ablation: worker provisioning on vs off the request critical path.
//
// The paper's measurements (and our default) keep restore/cold-init off the
// critical path: the platform re-provisions workers asynchronously after
// eviction, so client CDFs only see function execution. Platforms without a
// ready pool pay provisioning on the first request of every lifetime. This
// bench quantifies that regime: checkpoint-restore policies then win twice —
// restore (~tens of ms) is far cheaper than a cold runtime boot (~hundreds
// of ms) AND the restored code is JIT-warm.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 400;

void Section(const char* benchmark, uint32_t eviction_k) {
  const WorkloadProfile& profile = MustFind(benchmark);
  std::printf("\n%s, eviction every %u request(s):\n", benchmark, eviction_k);
  for (bool on_path : {false, true}) {
    std::printf("  startup %s critical path:\n", on_path ? "ON" : "off");
    for (PolicyKind kind :
         {PolicyKind::kCold, PolicyKind::kAfterFirst, PolicyKind::kRequestCentric}) {
      const PolicyConfig config = PaperConfig(profile, eviction_k);
      const auto policy = MakePolicy(kind, config);
      SimOptions options;
      options.seed = 303;
      options.worker_slots = 1;
      options.exploring_slots = 1;
      options.lifecycle.startup_on_critical_path = on_path;
      options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
      options.eviction.k = eviction_k;
      SimFunctionSpec spec;
      spec.name = profile.name;
      spec.profile = &profile;
      spec.policy = policy.get();
      spec.requests = kRequests;
      auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                             std::span<const SimFunctionSpec>(&spec, 1), options);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        std::exit(1);
      }
      const DistributionSummary summary = report->flat().LatencySummary();
      std::printf("    %-22s median %9.0f us   p99 %9.0f us\n", PolicyKindName(kind),
                  summary.Median(), summary.Quantile(99));
    }
  }
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Ablation: provisioning on vs off the critical path ===\n");
  pronghorn::bench::Section("DynamicHTML", 1);
  pronghorn::bench::Section("HTMLRendering", 1);
  pronghorn::bench::Section("DynamicHTML", 20);
  std::printf("\n(expected shape: off-path matches the paper's figures; on-path at\n"
              " eviction 1 adds the full provisioning cost to every request --\n"
              " cold-start pays runtime boot, snapshot policies pay only restore,\n"
              " so checkpoint-restore dominates even before JIT effects.)\n");
  return 0;
}
