// Unified perf-regression suite: one binary, five sections, one versioned
// JSON. CI runs this and diffs BENCH_perf_suite.json against the committed
// baseline with tools/bench_compare.py, so a PR that quietly regresses a hot
// path by more than the per-metric budget fails the perf-regression job.
//
// Sections (each warmup + median-of-N; see exhibit_common.h):
//   fleet_wallclock    end-to-end simulator throughput, 1 thread and the
//                      hardware-clamped worker count; also re-proves the
//                      standing invariant that digests are bit-identical at
//                      --threads {1, 2, 8} both clean and under chaos.
//   micro_policy_ops   the vectorized kernels vs their scalar-reference
//                      reimplementations (softmax n=13, weight-fold n=200).
//   service_throughput the live-service mode end to end through Simulate.
//   fleet_scale        a bounded-retention many-function fleet (decision
//                      throughput at scale).
//   storage_dedup      DedupSnapshotStore put+restore bandwidth.
//
// Every metric row carries {name, value, unit, direction, spread_pct}:
// `direction` tells the comparator which way regressions point, and
// `spread_pct` is the min..max envelope of the timed reps so the comparator
// can refuse to trust a delta inside the noise floor.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/store/snapshot_store.h"

namespace pronghorn::bench {
namespace {

constexpr const char* kJsonPath = "BENCH_perf_suite.json";
constexpr uint64_t kSeed = 42;

struct Metric {
  std::string name;
  double value = 0.0;
  const char* unit = "";
  // "higher" = bigger is better (throughput); "lower" = smaller is better.
  const char* direction = "higher";
  double spread_pct = 0.0;
};

std::vector<Metric> g_metrics;
bool g_determinism_ok = true;

void AddMetric(const std::string& name, double value, const char* unit,
               const char* direction, double spread_pct) {
  g_metrics.push_back(Metric{name, value, unit, direction, spread_pct});
  std::printf("  %-38s %14.1f %-10s (spread ±%.1f%%)\n", name.c_str(), value, unit,
              spread_pct);
}

// --- Section: fleet_wallclock ----------------------------------------------

struct FleetFixture {
  std::vector<const WorkloadProfile*> profiles;
  std::vector<std::unique_ptr<OrchestrationPolicy>> policies;
  std::vector<SimFunctionSpec> specs;
  uint64_t total_requests = 0;

  FleetFixture(size_t fleet_size, uint64_t requests_per_function,
               uint32_t eviction_k) {
    const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
    profiles.reserve(fleet_size);
    policies.reserve(fleet_size);
    specs.reserve(fleet_size);
    for (size_t i = 0; i < fleet_size; ++i) {
      const auto* profile = evaluation[i % evaluation.size()];
      profiles.push_back(profile);
      policies.push_back(MakePolicy(PolicyKind::kRequestCentric,
                                    PaperConfig(*profile, eviction_k)));
      SimFunctionSpec spec;
      char name[48];
      std::snprintf(name, sizeof(name), "f%03zu-%s", i, profile->name.c_str());
      spec.name = name;
      spec.profile = profile;
      spec.policy = policies.back().get();
      spec.requests = requests_per_function;
      specs.push_back(std::move(spec));
    }
    total_requests = fleet_size * requests_per_function;
  }
};

uint32_t RunFleetOnce(const FleetFixture& fixture, const SimOptions& options) {
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kFleet,
                         fixture.specs, options);
  if (!report.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return report->Digest();
}

SimOptions FleetOptions(uint32_t threads, bool chaos) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = threads;
  options.worker_slots = 4;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = 4;
  if (chaos) {
    options.faults.get_failure_rate = 0.01;
    options.faults.put_failure_rate = 0.01;
    options.faults.corruption_rate = 0.002;
    options.faults.seed = 7;
  }
  return options;
}

void SectionFleetWallclock() {
  std::printf("\n[fleet_wallclock]\n");
  FleetFixture fixture(32, 160, 4);

  // Role-named metrics (not thread-count-named): on a 1-core host the
  // clamped "all cores" run degenerates to 1 worker and the names must not
  // collide with the serial row.
  const struct {
    const char* name;
    uint32_t threads;
  } configs[] = {
      {"fleet_wallclock_rps_serial", 1},
      {"fleet_wallclock_rps_allcores", 0},
  };
  for (const auto& config : configs) {
    const SimOptions options = FleetOptions(config.threads, /*chaos=*/false);
    const TimingSample timing = MeasureMedianSeconds(
        1, 5, [&]() { (void)RunFleetOnce(fixture, options); });
    const double rps =
        static_cast<double>(fixture.total_requests) / timing.median_seconds;
    AddMetric(config.name, rps, "req/s", "higher",
              timing.SpreadFraction() * 100.0);
  }

  // Standing invariant: digests bit-identical at --threads {1, 2, 8}, clean
  // and under chaos. A perf suite that silently traded determinism for speed
  // must fail here, not in a downstream experiment.
  for (const bool chaos : {false, true}) {
    uint32_t reference = 0;
    bool first = true;
    for (const uint32_t threads : {1u, 2u, 8u}) {
      const uint32_t digest =
          RunFleetOnce(fixture, FleetOptions(threads, chaos));
      if (first) {
        reference = digest;
        first = false;
      } else if (digest != reference) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: digest %08x at %u threads != %08x "
                     "(chaos=%d)\n",
                     digest, threads, reference, chaos ? 1 : 0);
        g_determinism_ok = false;
      }
    }
    std::printf("  digests across threads {1,2,8}%s: %s\n",
                chaos ? " under chaos" : "",
                g_determinism_ok ? "bit-identical" : "DIVERGED");
  }
}

// --- Section: micro_policy_ops ----------------------------------------------

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.UniformDouble() * 20.0;
  }
  return values;
}

// The pre-optimization softmax, verbatim: allocate per call, scalar loops.
std::vector<double> SoftmaxScalarReference(std::span<const double> logits,
                                           double temperature) {
  std::vector<double> out;
  if (logits.empty()) {
    return out;
  }
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  out.reserve(logits.size());
  double total = 0.0;
  for (double logit : logits) {
    const double e = std::exp((logit - max_logit) / temperature);
    out.push_back(e);
    total += e;
  }
  for (double& p : out) {
    p /= total;
  }
  return out;
}

void SectionMicroPolicyOps() {
  std::printf("\n[micro_policy_ops]\n");
  constexpr int kIters = 200000;

  // Softmax at the policy's candidate count (pool capacity 12 + cold start).
  {
    const auto logits = RandomValues(13, 11);
    std::vector<double> out(logits.size());
    const TimingSample optimized = MeasureMedianSeconds(1, 5, [&]() {
      for (int i = 0; i < kIters; ++i) {
        SoftmaxInto(logits, 1.0, out);
      }
    });
    volatile double sink = 0.0;
    const TimingSample scalar = MeasureMedianSeconds(1, 5, [&]() {
      for (int i = 0; i < kIters; ++i) {
        auto probs = SoftmaxScalarReference(logits, 1.0);
        sink = sink + probs[0];
      }
    });
    const double mops = kIters / optimized.median_seconds / 1e6;
    AddMetric("softmax13_optimized_mops", mops, "Mops/s", "higher",
              optimized.SpreadFraction() * 100.0);
    AddMetric("softmax13_speedup_vs_scalar",
              scalar.median_seconds / optimized.median_seconds, "x", "higher",
              (optimized.SpreadFraction() + scalar.SpreadFraction()) * 100.0);
  }

  // The weight-fold kernel over the JVM learning window W = 200.
  {
    const auto values = RandomValues(200, 12);
    std::vector<double> out(values.size());
    const TimingSample optimized = MeasureMedianSeconds(1, 5, [&]() {
      for (int i = 0; i < kIters; ++i) {
        InverseWeightsInto(values, 0.01, out);
      }
    });
    const TimingSample scalar = MeasureMedianSeconds(1, 5, [&]() {
      for (int i = 0; i < kIters; ++i) {
        for (size_t j = 0; j < values.size(); ++j) {
          out[j] = InverseWeight(values[j], 0.01);
        }
      }
    });
    const double melem =
        kIters * static_cast<double>(values.size()) / optimized.median_seconds / 1e6;
    AddMetric("weight_fold200_optimized_melems", melem, "Melem/s", "higher",
              optimized.SpreadFraction() * 100.0);
    AddMetric("weight_fold200_speedup_vs_scalar",
              scalar.median_seconds / optimized.median_seconds, "x", "higher",
              (optimized.SpreadFraction() + scalar.SpreadFraction()) * 100.0);
  }
}

// --- Section: service_throughput --------------------------------------------

void SectionServiceThroughput() {
  std::printf("\n[service_throughput]\n");
  FleetFixture fixture(16, 120, 4);
  SimOptions options = FleetOptions(0, /*chaos=*/false);
  options.service.enabled = true;
  options.service.shards = 4;
  const TimingSample timing =
      MeasureMedianSeconds(1, 3, [&]() { (void)RunFleetOnce(fixture, options); });
  AddMetric("service_mode_rps",
            static_cast<double>(fixture.total_requests) / timing.median_seconds,
            "req/s", "higher", timing.SpreadFraction() * 100.0);
}

// --- Section: fleet_scale ---------------------------------------------------

void SectionFleetScale() {
  std::printf("\n[fleet_scale]\n");
  FleetFixture fixture(600, 24, 4);
  SimOptions options = FleetOptions(0, /*chaos=*/false);
  options.retention.mode = ReportRetention::kTopLatency;
  options.retention.k = 32;
  const TimingSample timing =
      MeasureMedianSeconds(1, 3, [&]() { (void)RunFleetOnce(fixture, options); });
  AddMetric("fleet_scale_600fn_rps",
            static_cast<double>(fixture.total_requests) / timing.median_seconds,
            "req/s", "higher", timing.SpreadFraction() * 100.0);
}

// --- Section: storage_dedup -------------------------------------------------

void SectionStorageDedup() {
  std::printf("\n[storage_dedup]\n");
  constexpr size_t kImages = 48;
  constexpr size_t kImageBytes = 192 * 1024;
  constexpr size_t kMutationBytes = 4096;

  // Synthetic snapshot lineage: each image is the previous one with a small
  // dirty region, the dedup store's designed-for workload.
  Rng rng(kSeed);
  std::vector<std::vector<uint8_t>> images;
  images.reserve(kImages);
  std::vector<uint8_t> base(kImageBytes);
  for (uint8_t& b : base) {
    b = static_cast<uint8_t>(rng.UniformUint64(256));
  }
  for (size_t i = 0; i < kImages; ++i) {
    const size_t offset =
        rng.UniformUint64(kImageBytes - kMutationBytes);
    for (size_t j = 0; j < kMutationBytes; ++j) {
      base[offset + j] = static_cast<uint8_t>(rng.UniformUint64(256));
    }
    images.push_back(base);
  }

  SnapshotStoreOptions store_options;
  store_options.kind = SnapshotStoreOptions::Kind::kDedup;
  const double total_mb = static_cast<double>(kImages * kImageBytes) / (1024.0 * 1024.0);

  const TimingSample put_timing = MeasureMedianSeconds(1, 5, [&]() {
    DedupSnapshotStore store(store_options);
    for (size_t i = 0; i < kImages; ++i) {
      auto ref = store.PutSnapshot("snapshots/bench/" + std::to_string(i),
                                   ObjectBlob(std::vector<uint8_t>(images[i]),
                                              images[i].size()));
      if (!ref.ok()) {
        std::fprintf(stderr, "put failed: %s\n", ref.status().ToString().c_str());
        std::exit(1);
      }
    }
  });
  AddMetric("dedup_put_mbps", total_mb / put_timing.median_seconds, "MB/s",
            "higher", put_timing.SpreadFraction() * 100.0);

  DedupSnapshotStore store(store_options);
  for (size_t i = 0; i < kImages; ++i) {
    auto ref = store.PutSnapshot("snapshots/bench/" + std::to_string(i),
                                 ObjectBlob(std::vector<uint8_t>(images[i]),
                                            images[i].size()));
    if (!ref.ok()) {
      std::exit(1);
    }
  }
  const TimingSample restore_timing = MeasureMedianSeconds(1, 5, [&]() {
    for (size_t i = 0; i < kImages; ++i) {
      auto reader = store.OpenSnapshot("snapshots/bench/" + std::to_string(i));
      if (!reader.ok()) {
        std::exit(1);
      }
      auto blob = (*reader)->ReadAll();
      if (!blob.ok()) {
        std::exit(1);
      }
    }
  });
  AddMetric("dedup_restore_mbps", total_mb / restore_timing.median_seconds,
            "MB/s", "higher", restore_timing.SpreadFraction() * 100.0);
}

// --- JSON -------------------------------------------------------------------

bool WriteJson() {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"perf_suite\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  EmitMachineJson(out, "  ");
  std::fprintf(out, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"determinism_ok\": %s,\n",
               g_determinism_ok ? "true" : "false");
  std::fprintf(out, "  \"metrics\": [\n");
  for (size_t i = 0; i < g_metrics.size(); ++i) {
    const Metric& metric = g_metrics[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\", "
                 "\"direction\": \"%s\", \"spread_pct\": %.2f}%s\n",
                 metric.name.c_str(), metric.value, metric.unit,
                 metric.direction, metric.spread_pct,
                 i + 1 < g_metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Perf suite (regression-gated) ===\n");
  std::printf("host: %u hardware thread(s), governor %s\n",
              QueryMachineInfo().hardware_threads,
              QueryMachineInfo().cpu_governor.c_str());

  SectionFleetWallclock();
  SectionMicroPolicyOps();
  SectionServiceThroughput();
  SectionFleetScale();
  SectionStorageDedup();

  const bool wrote = WriteJson();
  std::printf("\nwrote %s; determinism %s\n", kJsonPath,
              g_determinism_ok ? "OK" : "VIOLATED");
  return wrote && g_determinism_ok ? 0 : 1;
}
