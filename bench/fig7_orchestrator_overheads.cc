// Figure 7: per-operation orchestrator overheads of the request-centric
// strategy versus the checkpoint-after-1st baseline, across the three
// orchestration components: per worker startup, per request, and per
// checkpoint. Each benchmark is normalized against the baseline and against
// the number of relevant operations, exactly as the figure's caption
// describes. All of these costs are off the request critical path.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 500;
constexpr uint32_t kEvictionK = 4;

struct PerOp {
  double startup_ms = 0.0;
  double request_ms = 0.0;
  double checkpoint_ms = 0.0;
};

PerOp Normalize(const OrchestratorOverheads& overheads) {
  PerOp out;
  if (overheads.worker_starts > 0) {
    out.startup_ms = overheads.total_startup_overhead.ToMillis() /
                     static_cast<double>(overheads.worker_starts);
  }
  if (overheads.requests_served > 0) {
    out.request_ms = overheads.total_request_overhead.ToMillis() /
                     static_cast<double>(overheads.requests_served);
  }
  if (overheads.checkpoints_taken > 0) {
    out.checkpoint_ms = overheads.total_checkpoint_overhead.ToMillis() /
                        static_cast<double>(overheads.checkpoints_taken);
  }
  return out;
}

void Row(const char* benchmark) {
  const WorkloadProfile& profile = MustFind(benchmark);
  const SimulationReport rc = RunClosedLoop(profile, PolicyKind::kRequestCentric,
                                            kEvictionK, kRequests, /*seed=*/3);
  const SimulationReport baseline = RunClosedLoop(profile, PolicyKind::kAfterFirst,
                                                  kEvictionK, kRequests, /*seed=*/3);
  const PerOp rc_ops = Normalize(rc.overheads);
  const PerOp baseline_ops = Normalize(baseline.overheads);

  auto ratio = [](double ours, double base) {
    return base > 0.0 ? ours / base : 0.0;
  };
  std::printf("  %-14s %6.1f ms (%4.2fx) %8.1f ms (%4.2fx) %8.1f ms (%5.2fx)\n",
              benchmark, rc_ops.startup_ms, ratio(rc_ops.startup_ms,
                                                  baseline_ops.startup_ms),
              rc_ops.request_ms, ratio(rc_ops.request_ms, baseline_ops.request_ms),
              rc_ops.checkpoint_ms,
              ratio(rc_ops.checkpoint_ms, baseline_ops.checkpoint_ms));
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Figure 7: per-operation orchestrator overheads ===\n");
  std::printf("  per-op cost of the request-centric strategy, with the multiple of\n"
              "  the checkpoint-after-1st baseline in parentheses\n\n");
  std::printf("  %-14s %-18s %-20s %-18s\n", "benchmark", "startup/worker",
              "overhead/request", "overhead/checkpoint");
  for (const char* name :
       {"BFS", "DFS", "DynamicHTML", "MST", "PageRank", "Compression", "Uploader",
        "Thumbnailer", "Video", "MatrixMult", "Hash", "HTMLRendering", "WordCount"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("\n(paper: startup overhead below 2.5x/28ms -- the request-centric\n"
              " policy must pick a snapshot from the pool; per-request on-par;\n"
              " per-checkpoint below 2x/34ms -- pool bookkeeping in the database.\n"
              " All off the critical path.)\n");
  return 0;
}
