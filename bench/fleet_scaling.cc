// Fleet-scale sharding exhibit: wall-clock speedup of the sharded fleet
// simulation at 1/2/4/8 threads over a 100-function synthetic workload,
// plus the determinism check that makes the parallelism admissible — the
// merged fleet digest must be identical at every thread count, because all
// RNG substreams are derived per function (never per thread) and the merge
// is canonical. Exits non-zero on a digest mismatch so the CI smoke run
// doubles as a regression gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/common/thread_pool.h"

namespace pronghorn::bench {
namespace {

constexpr size_t kFleetSize = 100;
constexpr uint64_t kRequestsPerFunction = 240;
constexpr uint32_t kWorkerSlots = 4;
constexpr uint32_t kEvictionK = 4;
constexpr uint64_t kSeed = 42;

struct FleetRun {
  double wall_seconds = 0.0;
  uint32_t digest = 0;
  double fleet_p50_us = 0.0;
};

FleetRun RunOnce(uint32_t threads, const std::vector<const WorkloadProfile*>& profiles,
                 const std::vector<std::unique_ptr<OrchestrationPolicy>>& policies) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = threads;
  options.worker_slots = kWorkerSlots;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  std::vector<SimFunctionSpec> specs;
  specs.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    SimFunctionSpec spec;
    char name[48];
    std::snprintf(name, sizeof(name), "f%03zu-%s", i, profiles[i]->name.c_str());
    spec.name = name;
    spec.profile = profiles[i];
    spec.policy = policies[i].get();
    spec.requests = kRequestsPerFunction;
    specs.push_back(std::move(spec));
  }

  const auto start = std::chrono::steady_clock::now();
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kFleet, specs,
                         options);
  const auto end = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  FleetRun run;
  run.wall_seconds = std::chrono::duration<double>(end - start).count();
  run.digest = report->Digest();
  run.fleet_p50_us = report->latency.Quantile(50);
  return run;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Exhibit: sharded fleet simulation scaling ===\n");
  std::printf("%zu functions (evaluation set, cycled), %llu requests each, "
              "%u worker slots, eviction every %u requests, seed %llu\n",
              kFleetSize, static_cast<unsigned long long>(kRequestsPerFunction),
              kWorkerSlots, kEvictionK, static_cast<unsigned long long>(kSeed));
  std::printf("host concurrency: %u hardware thread(s)\n\n",
              pronghorn::ThreadPool::DefaultThreadCount());

  // One policy instance per deployment (policies are stateless per call, but
  // per-instance construction mirrors how a provider would deploy them).
  const auto evaluation = pronghorn::WorkloadRegistry::Default().EvaluationSet();
  std::vector<const pronghorn::WorkloadProfile*> profiles;
  std::vector<std::unique_ptr<pronghorn::OrchestrationPolicy>> policies;
  profiles.reserve(kFleetSize);
  policies.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    const auto* profile = evaluation[i % evaluation.size()];
    profiles.push_back(profile);
    policies.push_back(
        MakePolicy(PolicyKind::kRequestCentric, PaperConfig(*profile, kEvictionK)));
  }

  std::vector<FleetRun> runs;
  const uint32_t thread_counts[] = {1, 2, 4, 8};
  for (const uint32_t threads : thread_counts) {
    runs.push_back(RunOnce(threads, profiles, policies));
  }

  const double base = runs.front().wall_seconds;
  std::printf("  threads   wall (s)   speedup   digest\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("  %7u   %8.3f   %6.2fx   %08x\n", thread_counts[i],
                runs[i].wall_seconds, base / runs[i].wall_seconds, runs[i].digest);
  }

  bool deterministic = true;
  for (const FleetRun& run : runs) {
    deterministic = deterministic && run.digest == runs.front().digest &&
                    run.fleet_p50_us == runs.front().fleet_p50_us;
  }
  std::printf("\nfleet p50 %.0f us; merged reports %s across thread counts\n",
              runs.front().fleet_p50_us,
              deterministic ? "BIT-IDENTICAL" : "DIVERGED (BUG)");
  std::printf("(expected shape: speedup tracks available cores — near-linear to the\n"
              " core count, flat beyond it; the digest column never varies.)\n");
  return deterministic ? 0 : 1;
}
