// Fleet wall-clock trend exhibit: end-to-end simulator throughput
// (requests/sec and ns per simulated request) across thread counts, written
// to BENCH_fleet_wallclock.json so CI archives the perf trajectory across
// PRs. Each configuration is timed warmup + median-of-N (see
// exhibit_common.h) and the JSON carries machine metadata, so a committed
// baseline from one host is visibly incomparable to a rerun on another.
// Also re-checks the determinism contract — the merged digest must be
// identical at every thread count — and exits non-zero on a mismatch so the
// CI run doubles as a regression gate.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/common/thread_pool.h"

namespace pronghorn::bench {
namespace {

constexpr size_t kFleetSize = 48;
constexpr uint64_t kRequestsPerFunction = 220;
constexpr uint32_t kWorkerSlots = 4;
constexpr uint32_t kEvictionK = 4;
constexpr uint64_t kSeed = 42;
constexpr int kWarmupReps = 1;
constexpr int kTimedReps = 5;
constexpr const char* kJsonPath = "BENCH_fleet_wallclock.json";

struct WallclockRun {
  uint32_t threads = 0;         // Requested --threads value.
  uint32_t effective_workers = 0;  // After the hardware-concurrency clamp.
  TimingSample timing;
  double requests_per_sec = 0.0;
  double ns_per_request = 0.0;
  double scaling_vs_1_thread = 0.0;
  uint32_t digest = 0;
};

WallclockRun RunConfig(uint32_t threads,
                       const std::vector<const WorkloadProfile*>& profiles,
                       const std::vector<std::unique_ptr<OrchestrationPolicy>>& policies) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = threads;
  options.worker_slots = kWorkerSlots;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  std::vector<SimFunctionSpec> specs;
  specs.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    SimFunctionSpec spec;
    char name[48];
    std::snprintf(name, sizeof(name), "f%03zu-%s", i, profiles[i]->name.c_str());
    spec.name = name;
    spec.profile = profiles[i];
    spec.policy = policies[i].get();
    spec.requests = kRequestsPerFunction;
    specs.push_back(std::move(spec));
  }

  WallclockRun run;
  run.threads = threads;
  run.effective_workers = ThreadPool::EffectiveParallelism(threads);
  run.timing = MeasureMedianSeconds(kWarmupReps, kTimedReps, [&]() {
    auto report =
        Simulate(WorkloadRegistry::Default(), SimTopology::kFleet, specs, options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      std::exit(1);
    }
    run.digest = report->Digest();
  });
  const double total_requests =
      static_cast<double>(kFleetSize) * static_cast<double>(kRequestsPerFunction);
  run.requests_per_sec = total_requests / run.timing.median_seconds;
  run.ns_per_request = run.timing.median_seconds * 1e9 / total_requests;
  return run;
}

bool WriteJson(const std::vector<WallclockRun>& runs) {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"fleet_wallclock\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  EmitMachineJson(out, "  ");
  std::fprintf(out, "  \"functions\": %zu,\n", kFleetSize);
  std::fprintf(out, "  \"requests_per_function\": %llu,\n",
               static_cast<unsigned long long>(kRequestsPerFunction));
  std::fprintf(out, "  \"worker_slots\": %u,\n", kWorkerSlots);
  std::fprintf(out, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"warmup_reps\": %d,\n", kWarmupReps);
  std::fprintf(out, "  \"timed_reps\": %d,\n", kTimedReps);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const WallclockRun& run = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"effective_workers\": %u, "
                 "\"wall_seconds\": %.6f, \"wall_seconds_min\": %.6f, "
                 "\"wall_seconds_max\": %.6f, \"requests_per_sec\": %.1f, "
                 "\"ns_per_request\": %.1f, \"scaling_vs_1_thread\": %.3f, "
                 "\"digest\": \"%08x\"}%s\n",
                 run.threads, run.effective_workers, run.timing.median_seconds,
                 run.timing.min_seconds, run.timing.max_seconds,
                 run.requests_per_sec, run.ns_per_request,
                 run.scaling_vs_1_thread, run.digest,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Exhibit: fleet wall-clock throughput ===\n");
  std::printf("%zu functions, %llu requests each, %u worker slots, seed %llu; "
              "host has %u hardware thread(s); median of %d reps after %d warmup\n\n",
              kFleetSize, static_cast<unsigned long long>(kRequestsPerFunction),
              kWorkerSlots, static_cast<unsigned long long>(kSeed),
              pronghorn::ThreadPool::DefaultThreadCount(), kTimedReps, kWarmupReps);

  const auto evaluation = pronghorn::WorkloadRegistry::Default().EvaluationSet();
  std::vector<const pronghorn::WorkloadProfile*> profiles;
  std::vector<std::unique_ptr<pronghorn::OrchestrationPolicy>> policies;
  profiles.reserve(kFleetSize);
  policies.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    const auto* profile = evaluation[i % evaluation.size()];
    profiles.push_back(profile);
    policies.push_back(
        MakePolicy(PolicyKind::kRequestCentric, PaperConfig(*profile, kEvictionK)));
  }

  std::vector<WallclockRun> runs;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    runs.push_back(RunConfig(threads, profiles, policies));
  }
  for (WallclockRun& run : runs) {
    run.scaling_vs_1_thread =
        runs.front().requests_per_sec > 0.0
            ? run.requests_per_sec / runs.front().requests_per_sec
            : 0.0;
  }

  std::printf("  threads   workers   wall (s)   min..max (s)        requests/s"
              "   scaling   digest\n");
  for (const WallclockRun& run : runs) {
    std::printf("  %7u   %7u   %8.3f   %.3f..%.3f   %10.0f   %6.2fx   %08x\n",
                run.threads, run.effective_workers, run.timing.median_seconds,
                run.timing.min_seconds, run.timing.max_seconds,
                run.requests_per_sec, run.scaling_vs_1_thread, run.digest);
  }

  bool deterministic = true;
  for (const WallclockRun& run : runs) {
    deterministic = deterministic && run.digest == runs.front().digest;
  }
  const bool wrote = WriteJson(runs);
  std::printf("\nwrote %s; digests %s across thread counts\n", kJsonPath,
              deterministic ? "BIT-IDENTICAL" : "DIVERGED (BUG)");
  return deterministic && wrote ? 0 : 1;
}
