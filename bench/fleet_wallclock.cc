// Fleet wall-clock trend exhibit: end-to-end simulator throughput
// (requests/sec and ns per simulated request) for a fixed synthetic fleet at
// 1, 4, and 8 threads, written to BENCH_fleet_wallclock.json so CI archives
// the perf trajectory across PRs. Also re-checks the determinism contract —
// the merged digest must be identical at every thread count — and exits
// non-zero on a mismatch so the CI run doubles as a regression gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/common/thread_pool.h"

namespace pronghorn::bench {
namespace {

constexpr size_t kFleetSize = 48;
constexpr uint64_t kRequestsPerFunction = 220;
constexpr uint32_t kWorkerSlots = 4;
constexpr uint32_t kEvictionK = 4;
constexpr uint64_t kSeed = 42;
constexpr const char* kJsonPath = "BENCH_fleet_wallclock.json";

struct WallclockRun {
  uint32_t threads = 0;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double ns_per_request = 0.0;
  uint32_t digest = 0;
};

WallclockRun RunOnce(uint32_t threads,
                     const std::vector<const WorkloadProfile*>& profiles,
                     const std::vector<std::unique_ptr<OrchestrationPolicy>>& policies) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = threads;
  options.worker_slots = kWorkerSlots;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = kEvictionK;
  std::vector<SimFunctionSpec> specs;
  specs.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    SimFunctionSpec spec;
    char name[48];
    std::snprintf(name, sizeof(name), "f%03zu-%s", i, profiles[i]->name.c_str());
    spec.name = name;
    spec.profile = profiles[i];
    spec.policy = policies[i].get();
    spec.requests = kRequestsPerFunction;
    specs.push_back(std::move(spec));
  }

  const auto start = std::chrono::steady_clock::now();
  auto report =
      Simulate(WorkloadRegistry::Default(), SimTopology::kFleet, specs, options);
  const auto end = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  WallclockRun run;
  run.threads = threads;
  run.wall_seconds = std::chrono::duration<double>(end - start).count();
  const double total_requests =
      static_cast<double>(kFleetSize) * static_cast<double>(kRequestsPerFunction);
  run.requests_per_sec = total_requests / run.wall_seconds;
  run.ns_per_request = run.wall_seconds * 1e9 / total_requests;
  run.digest = report->Digest();
  return run;
}

bool WriteJson(const std::vector<WallclockRun>& runs) {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"fleet_wallclock\",\n");
  std::fprintf(out, "  \"functions\": %zu,\n", kFleetSize);
  std::fprintf(out, "  \"requests_per_function\": %llu,\n",
               static_cast<unsigned long long>(kRequestsPerFunction));
  std::fprintf(out, "  \"worker_slots\": %u,\n", kWorkerSlots);
  std::fprintf(out, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const WallclockRun& run = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"wall_seconds\": %.6f, "
                 "\"requests_per_sec\": %.1f, \"ns_per_request\": %.1f, "
                 "\"digest\": \"%08x\"}%s\n",
                 run.threads, run.wall_seconds, run.requests_per_sec,
                 run.ns_per_request, run.digest, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Exhibit: fleet wall-clock throughput ===\n");
  std::printf("%zu functions, %llu requests each, %u worker slots, seed %llu; "
              "host has %u hardware thread(s)\n\n",
              kFleetSize, static_cast<unsigned long long>(kRequestsPerFunction),
              kWorkerSlots, static_cast<unsigned long long>(kSeed),
              pronghorn::ThreadPool::DefaultThreadCount());

  const auto evaluation = pronghorn::WorkloadRegistry::Default().EvaluationSet();
  std::vector<const pronghorn::WorkloadProfile*> profiles;
  std::vector<std::unique_ptr<pronghorn::OrchestrationPolicy>> policies;
  profiles.reserve(kFleetSize);
  policies.reserve(kFleetSize);
  for (size_t i = 0; i < kFleetSize; ++i) {
    const auto* profile = evaluation[i % evaluation.size()];
    profiles.push_back(profile);
    policies.push_back(
        MakePolicy(PolicyKind::kRequestCentric, PaperConfig(*profile, kEvictionK)));
  }

  std::vector<WallclockRun> runs;
  for (const uint32_t threads : {1u, 4u, 8u}) {
    runs.push_back(RunOnce(threads, profiles, policies));
  }

  std::printf("  threads   wall (s)   requests/s   ns/request   digest\n");
  for (const WallclockRun& run : runs) {
    std::printf("  %7u   %8.3f   %10.0f   %10.0f   %08x\n", run.threads,
                run.wall_seconds, run.requests_per_sec, run.ns_per_request,
                run.digest);
  }

  bool deterministic = true;
  for (const WallclockRun& run : runs) {
    deterministic = deterministic && run.digest == runs.front().digest;
  }
  const bool wrote = WriteJson(runs);
  std::printf("\nwrote %s; digests %s across thread counts\n", kJsonPath,
              deterministic ? "BIT-IDENTICAL" : "DIVERGED (BUG)");
  return deterministic && wrote ? 0 : 1;
}
