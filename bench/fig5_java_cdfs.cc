// Figure 5: CDFs of end-to-end request latency (microseconds) for the four
// Java benchmarks across the three orchestration strategies and three
// container eviction rates, 500 invocations each (W = 200 for the JVM).

#include <map>

#include "bench/exhibit_common.h"
#include "src/common/mathutil.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 500;
constexpr uint32_t kEvictionRates[] = {1, 4, 20};
constexpr PolicyKind kPolicies[] = {PolicyKind::kCold, PolicyKind::kAfterFirst,
                                    PolicyKind::kRequestCentric};

const char* kBenchmarks[] = {"MatrixMult", "Hash", "HTMLRendering", "WordCount"};

void RunExhibit() {
  std::map<uint32_t, std::vector<double>> winners;
  for (const char* benchmark : kBenchmarks) {
    const WorkloadProfile& profile = MustFind(benchmark);
    std::printf("\n%s\n", benchmark);
    for (uint32_t k : kEvictionRates) {
      std::printf(" eviction: every %u request(s)\n", k);
      double after_first_median = 0.0;
      double request_centric_median = 0.0;
      std::vector<DistributionSummary> summaries;
      for (PolicyKind kind : kPolicies) {
        const SimulationReport report =
            RunClosedLoop(profile, kind, k, kRequests, /*seed=*/57u + k);
        summaries.push_back(report.LatencySummary());
        const DistributionSummary& summary = summaries.back();
        PrintPercentileRow(PolicyKindName(kind), summary);
        if (kind == PolicyKind::kAfterFirst) {
          after_first_median = summary.Median();
        } else if (kind == PolicyKind::kRequestCentric) {
          request_centric_median = summary.Median();
        }
      }
      const auto [log_lo, log_hi] = SharedLogBounds(summaries[1], summaries[2]);
      for (size_t s = 0; s < summaries.size(); ++s) {
        PrintAsciiDensity(PolicyKindName(kPolicies[s]), summaries[s], log_lo, log_hi);
      }
      const double improvement =
          (after_first_median - request_centric_median) / after_first_median * 100.0;
      std::printf("  -> request-centric median improvement over after-1st: %+.1f%%\n",
                  improvement);
      if (improvement > 5.0) {
        winners[k].push_back(improvement);
      }
    }
  }
  std::printf("\n=== Java headline aggregation ===\n");
  for (uint32_t k : kEvictionRates) {
    std::printf("eviction %2u: %zu/4 better, geomean improvement %.1f%%\n", k,
                winners[k].size(), GeometricMean(winners[k]));
  }
  std::printf("(paper: MatrixMult/Hash/HTMLRendering clear benefit to p90 at\n"
              " eviction 1 with median improvements of 24.8%%/36.8%%/58.9%%)\n");
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Figure 5: Java benchmark latency CDFs (us) ===\n");
  pronghorn::bench::RunExhibit();
  return 0;
}
