// Service throughput exhibit: decisions/sec through the live orchestrator
// service as a function of shard count and group-commit batch size, written
// to BENCH_service_throughput.json so CI archives the trend across PRs.
//
// Eight client threads drive start -> observe xN -> retire cycles in deferred
// (group-commit) mode against eight functions, so the shard threads — not the
// clients — are the bottleneck and the shard sweep measures real control-plane
// parallelism. On a single-core host the sweep degenerates to ~1x; the JSON
// records the host's hardware thread count so CI can interpret the scaling
// factor. The run doubles as a correctness gate: after the final drain every
// observation must have its knowledge write committed, or the binary exits
// non-zero.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/checkpoint/criu_like_engine.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/request_centric_policy.h"
#include "src/service/orchestrator_service.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn::bench {
namespace {

constexpr uint32_t kFunctions = 8;
constexpr uint32_t kClientThreads = 8;
constexpr uint32_t kCyclesPerThread = 40;
constexpr uint32_t kObservationsPerCycle = 6;
constexpr const char* kJsonPath = "BENCH_service_throughput.json";

PolicyConfig BenchPolicyConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// The per-function stack the service fronts (one shard owns all of it).
struct FunctionStack {
  FunctionStack(const OrchestrationPolicy& policy, const std::string& name_in,
                uint64_t seed)
      : name(name_in),
        profile(**WorkloadRegistry::Default().Find("DynamicHTML")),
        engine(HashCombine(seed, 0xe1)),
        state_store(db, name_in, policy.config()),
        snapshot_store(object_store),
        orchestrator(profile, WorkloadRegistry::Default(), policy, engine,
                     snapshot_store, state_store, clock, seed) {}

  std::string name;
  const WorkloadProfile& profile;
  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine;
  PolicyStateStore state_store;
  FlatSnapshotStore snapshot_store;
  Orchestrator orchestrator;
};

struct ThroughputRun {
  uint32_t shards = 0;
  uint32_t max_batch = 0;
  bool journal = false;
  uint64_t requests = 0;
  uint64_t journal_appends = 0;
  double wall_seconds = 0.0;
  double decisions_per_sec = 0.0;
  bool books_balanced = false;
};

ThroughputRun RunOnce(const OrchestrationPolicy& policy, uint32_t shards,
                      uint32_t max_batch, bool journal) {
  ServiceConfig config;
  config.shards = shards;
  config.max_batch = max_batch;
  config.queue_capacity = 128;
  if (journal) {
    // Write-ahead journaling on: every deferred observation pays an append +
    // flush before its ack. The row quantifies that durability tax against
    // the journal-off rows at the same shard/batch point.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pronghorn_bench_journal_" + std::to_string(shards) + "_" +
         std::to_string(max_batch));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    config.journal_dir = dir.string();
  }
  OrchestratorService service(config);

  std::vector<std::unique_ptr<FunctionStack>> stacks;
  for (uint32_t f = 0; f < kFunctions; ++f) {
    stacks.push_back(std::make_unique<FunctionStack>(
        policy, "bench-fn-" + std::to_string(f), 100 + f));
    const Status bound =
        service.Bind(stacks.back()->name, 0, &stacks.back()->orchestrator,
                     &stacks.back()->clock);
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.ToString().c_str());
      std::exit(1);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&service, &stacks, t] {
      FunctionStack& stack = *stacks[t % kFunctions];
      ServiceClient client(&service, stack.name, 0, /*defer_commit=*/true);
      for (uint32_t cycle = 0; cycle < kCyclesPerThread; ++cycle) {
        const auto view = client.StartWorker();
        if (!view.ok()) {
          // Another thread on the same function still holds the slot's
          // session; skip the cycle rather than serialize the clients.
          continue;
        }
        for (uint64_t i = 0; i < kObservationsPerCycle; ++i) {
          if (!client.ServeRequest({i, 1.0}).ok()) {
            break;
          }
        }
        (void)client.EndSession();
      }
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }
  const Status drained = service.Drain();
  const auto end = std::chrono::steady_clock::now();

  const ServiceStatsSnapshot stats = service.stats();
  ThroughputRun run;
  run.shards = shards;
  run.max_batch = max_batch;
  run.journal = journal;
  run.journal_appends = stats.journal_appends;
  run.requests = stats.requests;
  run.wall_seconds = std::chrono::duration<double>(end - start).count();
  run.decisions_per_sec = static_cast<double>(stats.requests) / run.wall_seconds;
  run.books_balanced = drained.ok() &&
                       stats.observations_committed == stats.observations &&
                       stats.flush_errors == 0 && stats.decode_errors == 0;
  service.Shutdown();
  return run;
}

bool WriteJson(const std::vector<ThroughputRun>& runs, double scaling_1_to_4,
               double journal_overhead) {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"service_throughput\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  EmitMachineJson(out, "  ");
  std::fprintf(out, "  \"client_threads\": %u,\n", kClientThreads);
  std::fprintf(out, "  \"functions\": %u,\n", kFunctions);
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               pronghorn::ThreadPool::DefaultThreadCount());
  std::fprintf(out, "  \"scaling_1_to_4_shards\": %.2f,\n", scaling_1_to_4);
  std::fprintf(out, "  \"journal_overhead_4_shards\": %.2f,\n", journal_overhead);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ThroughputRun& run = runs[i];
    std::fprintf(out,
                 "    {\"shards\": %u, \"max_batch\": %u, \"journal\": %s, "
                 "\"requests\": %llu, \"journal_appends\": %llu, "
                 "\"wall_seconds\": %.6f, \"decisions_per_sec\": %.1f, "
                 "\"books_balanced\": %s}%s\n",
                 run.shards, run.max_batch, run.journal ? "true" : "false",
                 static_cast<unsigned long long>(run.requests),
                 static_cast<unsigned long long>(run.journal_appends),
                 run.wall_seconds, run.decisions_per_sec,
                 run.books_balanced ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn::bench;
  std::printf("=== Exhibit: orchestrator service throughput ===\n");
  std::printf("%u client threads over %u functions, deferred commits; host has "
              "%u hardware thread(s)\n\n",
              kClientThreads, kFunctions,
              pronghorn::ThreadPool::DefaultThreadCount());

  const auto policy =
      pronghorn::RequestCentricPolicy::Create(BenchPolicyConfig());
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  std::vector<ThroughputRun> runs;
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (const uint32_t batch : {1u, 16u}) {
      runs.push_back(RunOnce(*policy, shards, batch, /*journal=*/false));
    }
  }
  // Durability tax: the same workload with the write-ahead observation
  // journal on, at the single-shard and default-shard points.
  for (const uint32_t shards : {1u, 4u}) {
    runs.push_back(RunOnce(*policy, shards, /*max_batch=*/16, /*journal=*/true));
  }

  std::printf("  shards   batch   journal   requests   wall (s)   decisions/s   books\n");
  bool balanced = true;
  for (const ThroughputRun& run : runs) {
    std::printf("  %6u   %5u   %7s   %8llu   %8.3f   %11.0f   %s\n", run.shards,
                run.max_batch, run.journal ? "on" : "off",
                static_cast<unsigned long long>(run.requests),
                run.wall_seconds, run.decisions_per_sec,
                run.books_balanced ? "ok" : "IMBALANCED");
    balanced = balanced && run.books_balanced;
  }

  // Shard scaling at the default batch size (16), journal off: 1 vs 4 shards.
  // Journal overhead at 4 shards: journal-on vs journal-off throughput.
  double at_1 = 0.0, at_4 = 0.0, at_4_journal = 0.0;
  for (const ThroughputRun& run : runs) {
    if (run.max_batch == 16 && run.shards == 1 && !run.journal) {
      at_1 = run.decisions_per_sec;
    }
    if (run.max_batch == 16 && run.shards == 4 && !run.journal) {
      at_4 = run.decisions_per_sec;
    }
    if (run.max_batch == 16 && run.shards == 4 && run.journal) {
      at_4_journal = run.decisions_per_sec;
    }
  }
  const double scaling = at_1 > 0.0 ? at_4 / at_1 : 0.0;
  const double journal_overhead = at_4 > 0.0 ? at_4_journal / at_4 : 0.0;
  const bool wrote = WriteJson(runs, scaling, journal_overhead);
  std::printf("\nwrote %s; 1->4 shard scaling %.2fx; journal throughput ratio "
              "%.2fx; accounting %s\n",
              kJsonPath, scaling, journal_overhead,
              balanced ? "BALANCED" : "IMBALANCED (BUG)");
  return balanced && wrote ? 0 : 1;
}
