// Ablation (paper §4 engine-agnosticism + §7 Medes): swapping the CRIU-like
// full-image engine for a deduplicating delta engine under the unchanged
// request-centric policy. Latency benefits persist; the exploration-phase
// storage and network costs (Table 5's worry) collapse, because only each
// function's first snapshot is a full image.

#include "bench/exhibit_common.h"
#include "src/platform/function_simulation.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 500;
constexpr uint32_t kEvictionK = 1;

void Row(const char* benchmark, EngineKind engine_kind) {
  const WorkloadProfile& profile = MustFind(benchmark);
  const PolicyConfig config = PaperConfig(profile, kEvictionK);
  const auto policy = MakePolicy(PolicyKind::kRequestCentric, config);
  auto eviction = EveryKRequestsEviction::Create(kEvictionK);
  SimOptions options;
  options.seed = 77;
  options.engine_kind = engine_kind;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(kRequests);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  const double mb = 1048576.0;
  std::printf("  %-14s %-9s median %8.0f us   peak storage %6.0f MB   "
              "network %7.0f MB   downtime %6.1f s\n",
              benchmark, engine_kind == EngineKind::kDelta ? "delta" : "criu-like",
              report->MedianLatencyUs(),
              static_cast<double>(report->object_store.peak_logical_bytes) / mb,
              static_cast<double>(report->object_store.network_bytes_uploaded +
                                  report->object_store.network_bytes_downloaded) /
                  mb,
              sim.engine().total_checkpoint_time().ToSeconds());
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn;
  using namespace pronghorn::bench;
  std::printf("=== Ablation: checkpoint-engine substitution (CRIU-like vs delta) "
              "===\n");
  std::printf("request-centric policy, eviction 1, %llu requests\n\n",
              static_cast<unsigned long long>(kRequests));
  for (const char* benchmark : {"BFS", "DynamicHTML", "HTMLRendering"}) {
    Row(benchmark, EngineKind::kCriuLike);
    Row(benchmark, EngineKind::kDelta);
  }
  std::printf("\n(expected shape: medians unchanged — the policy is engine-\n"
              " agnostic — while delta snapshots cut exploration-phase storage,\n"
              " network, and cumulative checkpoint downtime several-fold.)\n");
  return 0;
}
