// Fleet-scale replay exhibit: what the streaming accounting paths buy at
// 10k/50k-function scale, written to BENCH_fleet_scale.json so CI archives
// the trajectory across PRs. Four panels:
//
//   1. Streaming trace generation: FleetArrivalStream arrivals/sec per
//      arrival-mix preset at 10k and 50k functions — O(functions) state,
//      the full invocation list is never materialized.
//   2. Replay throughput: decisions/sec (one policy decision per simulated
//      request) for bounded-retention fleet replays at both scales.
//   3. Memory: peak RSS after the bounded runs vs after a keep-all run of
//      the same 10k-function fleet. Bounded runs go FIRST — VmHWM is
//      monotone, so the ordering makes the contrast measurable in one
//      process.
//   4. Checkpoint cost: wall-clock overhead of periodic sim checkpoints and
//      the cost of resuming from a complete final frame.
//
// Digest gates: the bounded 10k run, the keep-all 10k run, the checkpointed
// run, and the resumed run must all agree bit-for-bit; the binary exits
// non-zero on any mismatch, so a CI execution doubles as a regression gate.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/trace/trace_generator.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kSeed = 42;
constexpr uint64_t kRequestsPerFunction = 12;
constexpr uint64_t kRetainedK = 64;
constexpr uint64_t kCheckpointEvery = 1000;
constexpr const char* kJsonPath = "BENCH_fleet_scale.json";

constexpr ArrivalMix kMixes[] = {ArrivalMix::kSteady, ArrivalMix::kDiurnal,
                                 ArrivalMix::kBursty, ArrivalMix::kMultiTenant};

// Current and high-water RSS in KiB from /proc/self/status (0 off-Linux).
struct RssSample {
  uint64_t current_kib = 0;
  uint64_t peak_kib = 0;
};

RssSample ReadRss() {
  RssSample sample;
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) {
    return sample;
  }
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &value) == 1) {
      sample.current_kib = value;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
      sample.peak_kib = value;
    }
  }
  std::fclose(status);
  return sample;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// --- Panel 1: streaming trace generation ------------------------------------

struct TraceGenRun {
  ArrivalMix mix = ArrivalMix::kSteady;
  uint64_t functions = 0;
  uint64_t arrivals = 0;
  double wall_seconds = 0.0;
  double arrivals_per_sec = 0.0;
};

TraceGenRun RunTraceGeneration(ArrivalMix mix, uint64_t functions) {
  const AzureTraceModel model;
  std::vector<FunctionArrivalSpec> specs;
  specs.reserve(functions);
  for (uint64_t i = 0; i < functions; ++i) {
    specs.push_back(ArrivalSpecFor(mix, kSeed, i, functions));
  }
  const auto start = std::chrono::steady_clock::now();
  FleetArrivalStream stream(model, specs, kSeed, Duration::Seconds(900));
  while (stream.Next()) {
  }
  TraceGenRun run;
  run.mix = mix;
  run.functions = functions;
  run.arrivals = stream.emitted();
  run.wall_seconds = Seconds(start);
  run.arrivals_per_sec =
      run.wall_seconds > 0 ? static_cast<double>(run.arrivals) / run.wall_seconds : 0;
  return run;
}

// --- Panels 2-4: fleet replay ------------------------------------------------

struct ReplayRun {
  std::string label;
  uint64_t functions = 0;
  uint64_t invocations = 0;
  double wall_seconds = 0.0;
  double decisions_per_sec = 0.0;
  uint64_t peak_rss_kib = 0;
  uint32_t digest = 0;
};

struct Fixture {
  std::vector<const WorkloadProfile*> profiles;
  std::vector<std::unique_ptr<OrchestrationPolicy>> policies;  // One per profile.
  std::vector<SimFunctionSpec> specs;
};

// One policy per *profile* (policies are stateless per call), so fixture
// memory stays O(evaluation set), not O(fleet).
Fixture MakeFixture(uint64_t functions, ArrivalMix mix) {
  Fixture fixture;
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  for (const WorkloadProfile* profile : evaluation) {
    fixture.profiles.push_back(profile);
    fixture.policies.push_back(
        MakePolicy(PolicyKind::kRequestCentric, PaperConfig(*profile, 4)));
  }
  const AzureTraceModel model;
  const double median = *model.DailyInvocationsAtPercentile(50.0);
  fixture.specs.reserve(functions);
  for (uint64_t i = 0; i < functions; ++i) {
    const size_t which = i % evaluation.size();
    SimFunctionSpec spec;
    char name[64];
    std::snprintf(name, sizeof(name), "f%06llu-%s",
                  static_cast<unsigned long long>(i),
                  evaluation[which]->name.c_str());
    spec.name = name;
    spec.profile = fixture.profiles[which];
    spec.policy = fixture.policies[which].get();
    spec.requests = kRequestsPerFunction;
    if (mix != ArrivalMix::kSteady) {
      // The same busier/quieter scaling pronghorn_sim --arrival-mix applies.
      const FunctionArrivalSpec arrival = ArrivalSpecFor(mix, kSeed, i, functions);
      const auto daily = model.DailyInvocationsAtPercentile(arrival.percentile);
      if (daily.ok() && median > 0) {
        const double scale = std::clamp(*daily / median, 0.125, 8.0);
        spec.requests = std::max<uint64_t>(
            1, static_cast<uint64_t>(static_cast<double>(kRequestsPerFunction) * scale));
      }
    }
    fixture.specs.push_back(std::move(spec));
  }
  return fixture;
}

ReplayRun RunReplay(const std::string& label, const Fixture& fixture,
                    const SimOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kFleet,
                         fixture.specs, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    std::exit(1);
  }
  ReplayRun run;
  run.label = label;
  run.functions = report->functions_total;
  run.invocations = report->invocations_total;
  run.wall_seconds = Seconds(start);
  run.decisions_per_sec =
      static_cast<double>(run.invocations) / run.wall_seconds;
  run.peak_rss_kib = ReadRss().peak_kib;
  run.digest = report->Digest();
  return run;
}

SimOptions BoundedOptions() {
  SimOptions options;
  options.seed = kSeed;
  options.threads = 0;  // One shard worker per hardware thread.
  options.worker_slots = 2;
  options.exploring_slots = 1;
  options.retention.mode = ReportRetention::kTopLatency;
  options.retention.k = kRetainedK;
  return options;
}

bool WriteJson(const std::vector<TraceGenRun>& tracegen,
               const std::vector<ReplayRun>& replays) {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"fleet_scale\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  EmitMachineJson(out, "  ");
  std::fprintf(out, "  \"seed\": %llu,\n", static_cast<unsigned long long>(kSeed));
  std::fprintf(out, "  \"requests_per_function\": %llu,\n",
               static_cast<unsigned long long>(kRequestsPerFunction));
  std::fprintf(out, "  \"retained_k\": %llu,\n",
               static_cast<unsigned long long>(kRetainedK));
  std::fprintf(out, "  \"trace_generation\": [\n");
  for (size_t i = 0; i < tracegen.size(); ++i) {
    const TraceGenRun& run = tracegen[i];
    std::fprintf(out,
                 "    {\"mix\": \"%.*s\", \"functions\": %llu, \"arrivals\": "
                 "%llu, \"wall_seconds\": %.4f, \"arrivals_per_sec\": %.0f}%s\n",
                 static_cast<int>(ArrivalMixName(run.mix).size()),
                 ArrivalMixName(run.mix).data(),
                 static_cast<unsigned long long>(run.functions),
                 static_cast<unsigned long long>(run.arrivals), run.wall_seconds,
                 run.arrivals_per_sec, i + 1 < tracegen.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"replays\": [\n");
  for (size_t i = 0; i < replays.size(); ++i) {
    const ReplayRun& run = replays[i];
    std::fprintf(out,
                 "    {\"label\": \"%s\", \"functions\": %llu, \"invocations\": "
                 "%llu, \"wall_seconds\": %.3f, \"decisions_per_sec\": %.0f, "
                 "\"peak_rss_kib\": %llu, \"digest\": \"%08x\"}%s\n",
                 run.label.c_str(), static_cast<unsigned long long>(run.functions),
                 static_cast<unsigned long long>(run.invocations),
                 run.wall_seconds, run.decisions_per_sec,
                 static_cast<unsigned long long>(run.peak_rss_kib), run.digest,
                 i + 1 < replays.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main(int argc, char** argv) {
  using namespace pronghorn;
  using namespace pronghorn::bench;
  // --smoke: the CI-sized variant (10k functions only, no 50k panels).
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<uint64_t> scales =
      smoke ? std::vector<uint64_t>{10'000} : std::vector<uint64_t>{10'000, 50'000};

  std::printf("=== Exhibit: fleet-scale streaming replay ===\n\n");

  // Panel 1: streaming trace generation.
  std::printf("  streaming trace generation (15-minute window)\n");
  std::printf("  %-12s %9s %12s %10s %14s\n", "mix", "functions", "arrivals",
              "wall (s)", "arrivals/s");
  std::vector<TraceGenRun> tracegen;
  for (const uint64_t functions : scales) {
    for (const ArrivalMix mix : kMixes) {
      tracegen.push_back(RunTraceGeneration(mix, functions));
      const TraceGenRun& run = tracegen.back();
      std::printf("  %-12.*s %9llu %12llu %10.3f %14.0f\n",
                  static_cast<int>(ArrivalMixName(mix).size()),
                  ArrivalMixName(mix).data(),
                  static_cast<unsigned long long>(run.functions),
                  static_cast<unsigned long long>(run.arrivals),
                  run.wall_seconds, run.arrivals_per_sec);
    }
  }
  PrintRule();

  // Panels 2-3: bounded replays first (VmHWM is monotone), keep-all last.
  std::vector<ReplayRun> replays;
  for (const uint64_t functions : scales) {
    for (const ArrivalMix mix : kMixes) {
      const Fixture fixture = MakeFixture(functions, mix);
      char label[64];
      std::snprintf(label, sizeof(label), "bounded-%lluk-%.*s",
                    static_cast<unsigned long long>(functions / 1000),
                    static_cast<int>(ArrivalMixName(mix).size()),
                    ArrivalMixName(mix).data());
      replays.push_back(RunReplay(label, fixture, BoundedOptions()));
    }
  }

  // Panel 4: checkpoint overhead + resume, at the smallest scale.
  const Fixture checkpoint_fixture = MakeFixture(scales.front(), ArrivalMix::kSteady);
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "pronghorn_fleet_scale_ckpt").string();
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  SimOptions ckpt_options = BoundedOptions();
  ckpt_options.sim_checkpoint.dir = ckpt_dir;
  ckpt_options.sim_checkpoint.every = kCheckpointEvery;
  replays.push_back(RunReplay("checkpointed-10k", checkpoint_fixture, ckpt_options));
  ckpt_options.sim_checkpoint.resume = true;
  replays.push_back(RunReplay("resumed-10k", checkpoint_fixture, ckpt_options));
  std::filesystem::remove_all(ckpt_dir);

  // Keep-all contrast LAST so its peak cannot pollute the bounded numbers.
  const Fixture keep_all_fixture = MakeFixture(scales.front(), ArrivalMix::kSteady);
  SimOptions keep_all_options = BoundedOptions();
  keep_all_options.retention = RetentionOptions{};
  replays.push_back(RunReplay("keep-all-10k", keep_all_fixture, keep_all_options));

  std::printf("  fleet replays (per-function requests ~%llu, retained K=%llu)\n",
              static_cast<unsigned long long>(kRequestsPerFunction),
              static_cast<unsigned long long>(kRetainedK));
  std::printf("  %-24s %9s %12s %10s %14s %14s\n", "run", "functions",
              "invocations", "wall (s)", "decisions/s", "peak RSS KiB");
  for (const ReplayRun& run : replays) {
    std::printf("  %-24s %9llu %12llu %10.3f %14.0f %14llu\n", run.label.c_str(),
                static_cast<unsigned long long>(run.functions),
                static_cast<unsigned long long>(run.invocations),
                run.wall_seconds, run.decisions_per_sec,
                static_cast<unsigned long long>(run.peak_rss_kib));
  }

  // Digest gates: every 10k steady run (bounded, checkpointed, resumed,
  // keep-all) replays the same experiment, so all four must agree.
  uint32_t expected = 0;
  bool agree = true;
  for (const ReplayRun& run : replays) {
    const bool steady_10k = run.label == "bounded-10k-steady" ||
                            run.label == "checkpointed-10k" ||
                            run.label == "resumed-10k" ||
                            run.label == "keep-all-10k";
    if (!steady_10k) {
      continue;
    }
    if (expected == 0) {
      expected = run.digest;
    }
    agree = agree && run.digest == expected;
  }

  const bool wrote = WriteJson(tracegen, replays);
  std::printf("\nwrote %s; 10k-function digests %s across bounded / "
              "checkpointed / resumed / keep-all\n",
              kJsonPath, agree ? "BIT-IDENTICAL" : "DIVERGED (BUG)");
  return agree && wrote ? 0 : 1;
}
