// Table 4: for each benchmark, the number of requests the request-centric
// policy takes to find the optimal snapshot (sliding window of 20, median
// within 2% of the final value, averaged across eviction rates), plus
// checkpoint/restore timings and snapshot sizes measured by repeatedly
// checkpointing and restoring each benchmark 10 times after startup.

#include "bench/exhibit_common.h"
#include "src/checkpoint/criu_like_engine.h"
#include "src/common/stats.h"

namespace pronghorn::bench {
namespace {

struct CostSample {
  double checkpoint_ms_mean = 0.0;
  double checkpoint_ms_sd = 0.0;
  double restore_ms_mean = 0.0;
  double restore_ms_sd = 0.0;
  double snapshot_mb = 0.0;
};

CostSample MeasureCosts(const WorkloadProfile& profile) {
  CriuLikeEngine engine(11);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 5);
  for (uint64_t i = 0; i < 30; ++i) {
    process.Execute({i, 1.0});  // "after startup": a briefly-warm process.
  }
  OnlineStats checkpoint_ms;
  OnlineStats restore_ms;
  double snapshot_mb = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    auto checkpoint =
        engine.Checkpoint(process, SnapshotId{static_cast<uint64_t>(rep) + 1},
                          TimePoint());
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "%s\n", checkpoint.status().ToString().c_str());
      std::exit(1);
    }
    checkpoint_ms.Add(checkpoint->downtime.ToMillis());
    snapshot_mb = static_cast<double>(checkpoint->image.metadata().logical_size_bytes) /
                  (1024.0 * 1024.0);
    auto restored = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
    if (!restored.ok()) {
      std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
      std::exit(1);
    }
    restore_ms.Add(restored->restore_time.ToMillis());
  }
  return CostSample{checkpoint_ms.mean(), checkpoint_ms.stddev(), restore_ms.mean(),
                    restore_ms.stddev(), snapshot_mb};
}

// Mean convergence request across the three eviction rates (the paper
// averages across all tested input-variance and eviction combinations).
double MeasureConvergence(const WorkloadProfile& profile) {
  double sum = 0.0;
  int counted = 0;
  for (uint32_t k : {1u, 4u, 20u}) {
    const SimulationReport report = RunClosedLoop(
        profile, PolicyKind::kRequestCentric, k, 500, /*seed=*/33u + k);
    const auto convergence = ConvergenceRequest(report.records, 20, 0.02);
    if (convergence.has_value()) {
      sum += static_cast<double>(*convergence);
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : -1.0;
}

void Row(const char* benchmark) {
  const WorkloadProfile& profile = MustFind(benchmark);
  const double convergence = MeasureConvergence(profile);
  const CostSample costs = MeasureCosts(profile);
  std::printf("  %-14s %7.0f   %6.1f +- %-5.1f  %6.1f +- %-5.1f  %7.1f\n", benchmark,
              convergence, costs.checkpoint_ms_mean, costs.checkpoint_ms_sd,
              costs.restore_ms_mean, costs.restore_ms_sd, costs.snapshot_mb);
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Table 4: convergence and checkpoint/restore costs ===\n");
  std::printf("  %-14s %7s   %-16s %-16s %8s\n", "benchmark", "req #",
              "checkpoint (ms)", "restore (ms)", "img (MB)");
  std::printf("  Java:\n");
  for (const char* name : {"HTMLRendering", "MatrixMult", "Hash", "WordCount"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("  Python:\n");
  for (const char* name : {"BFS", "DFS", "MST", "DynamicHTML", "PageRank", "Uploader",
                           "Thumbnailer", "Video", "Compression"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("\n(paper: convergence 100-287 requests for PyPy and 203-218 for JVM --\n"
              " always under W+100; checkpoint 60-105 ms; restore 30-81 ms;\n"
              " snapshots ~10-13 MB Java, ~54-64 MB Python)\n");
  return 0;
}
