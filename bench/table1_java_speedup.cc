// Table 1: function latency reduction compared with the first request for
// the Java benchmarks, sampled at requests 200/400/600/800 over a 1000-
// request run. Different benchmarks peak at different request counts, and
// the progression is non-monotonic (deoptimizations).

#include "bench/exhibit_common.h"
#include "src/jit/runtime_process.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 1000;
constexpr uint64_t kSamplePoints[] = {200, 400, 600, 800};
// Median over a small window around each sample point smooths per-request
// jitter the way repeated measurement runs would.
constexpr uint64_t kWindow = 25;

void Row(const char* benchmark) {
  const WorkloadProfile& profile = MustFind(benchmark);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, /*seed=*/17);
  std::vector<double> latencies_us;
  latencies_us.reserve(kRequests);
  for (uint64_t i = 0; i < kRequests; ++i) {
    latencies_us.push_back(
        static_cast<double>(process.Execute({i, 1.0}).latency.ToMicros()));
  }

  const double first_ms = latencies_us[0] / 1000.0;
  std::printf("  %-14s %9.0f ms ", benchmark, first_ms);
  for (uint64_t point : kSamplePoints) {
    const std::span<const double> window(latencies_us.data() + point - kWindow / 2,
                                         kWindow);
    const double speedup = latencies_us[0] / Percentile(window, 50.0);
    std::printf(" %7.1fx", speedup);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Table 1: Java latency reduction vs first request ===\n");
  std::printf("  (paper reference -- Hash: 27ms base, peaks ~2.5x; HTML: 650ms base,\n"
              "   peaks ~5.1x; WordCount: 64ms base, peaks ~3.4x; JSON: 360ms, ~5.9x)\n\n");
  std::printf("  %-14s %12s  %7s %7s %7s %7s\n", "benchmark", "request #1", "req200",
              "req400", "req600", "req800");
  for (const char* name : {"Hash", "HTMLRendering", "WordCount", "JSONParse"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("\nNotes: request #1 includes lazy runtime initialization; later\n"
              "speedups are non-monotonic because of deoptimization rounds (§2).\n"
              "Our HTMLRendering is calibrated to Figure 1(b)'s steady-state 75.6%%\n"
              "latency reduction, so its speedup-vs-request-1 exceeds Table 1's\n"
              "(the paper's Table-1 HTML run is a different implementation from\n"
              "its Figure-1 one).\n");
  return 0;
}
