// Microbenchmarks of the orchestration hot paths (google-benchmark). These
// quantify the in-process cost of the policy's decisions — the paper's
// Figure 7 overheads are dominated by database round trips, but the CPU cost
// of softmax selection, EWMA updates, pool pruning, and snapshot codecs is
// what a production (non-Python) orchestrator implementation would pay.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/exhibit_common.h"
#include "src/checkpoint/criu_like_engine.h"
#include "src/common/mathutil.h"
#include "src/core/policy_state_store.h"
#include "src/platform/function_simulation.h"
#include "src/store/kv_database.h"

namespace pronghorn::bench {
namespace {

// --- Vectorized-kernel rows -------------------------------------------------
//
// The *ScalarRef rows reimplement the pre-optimization code paths verbatim
// (allocate-per-call softmax, one-division-at-a-time inverse weights) so the
// optimized/reference ratio stays measurable against any future change. The
// optimized rows run the production kernels: allocation-free SoftmaxInto
// with SIMD max/normalize, and the bulk InverseWeightsInto behind the
// weight-vector folds. Bit-identity of the two is pinned separately by
// tests/vector_math_test.cc; these rows measure only speed.

std::vector<double> RandomLogits(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> logits(n);
  for (double& v : logits) {
    v = rng.UniformDouble() * 20.0;
  }
  return logits;
}

std::vector<double> SoftmaxScalarReference(std::span<const double> logits,
                                           double temperature) {
  std::vector<double> out;
  if (logits.empty()) {
    return out;
  }
  if (temperature <= 0.0) {
    temperature = 1.0;
  }
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  out.reserve(logits.size());
  double total = 0.0;
  for (double logit : logits) {
    const double e = std::exp((logit - max_logit) / temperature);
    out.push_back(e);
    total += e;
  }
  for (double& p : out) {
    p /= total;
  }
  return out;
}

void BM_SoftmaxOptimized(benchmark::State& bench_state) {
  const auto logits = RandomLogits(static_cast<size_t>(bench_state.range(0)), 11);
  std::vector<double> out(logits.size());
  for (auto _ : bench_state) {
    SoftmaxInto(logits, 1.0, out);
    benchmark::DoNotOptimize(out.data());
  }
}
// 13 = the policy's candidate count (pool capacity 12 + cold start).
BENCHMARK(BM_SoftmaxOptimized)->Arg(13)->Arg(64)->Arg(512);

void BM_SoftmaxScalarRef(benchmark::State& bench_state) {
  const auto logits = RandomLogits(static_cast<size_t>(bench_state.range(0)), 11);
  for (auto _ : bench_state) {
    auto out = SoftmaxScalarReference(logits, 1.0);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SoftmaxScalarRef)->Arg(13)->Arg(64)->Arg(512);

void BM_WeightFoldOptimized(benchmark::State& bench_state) {
  const auto values = RandomLogits(static_cast<size_t>(bench_state.range(0)), 12);
  std::vector<double> out(values.size());
  for (auto _ : bench_state) {
    InverseWeightsInto(values, 0.01, out);
    benchmark::DoNotOptimize(out.data());
  }
}
// 200 = the JVM learning window W, the length the folds actually scan.
BENCHMARK(BM_WeightFoldOptimized)->Arg(200)->Arg(1024);

void BM_WeightFoldScalarRef(benchmark::State& bench_state) {
  const auto values = RandomLogits(static_cast<size_t>(bench_state.range(0)), 12);
  std::vector<double> out(values.size());
  for (auto _ : bench_state) {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = InverseWeight(values[i], 0.01);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WeightFoldScalarRef)->Arg(200)->Arg(1024);

PolicyState PopulatedState(const PolicyConfig& config, size_t pool_size) {
  PolicyState state(config);
  Rng rng(1);
  for (uint64_t i = 1; i < config.WeightVectorLength(); ++i) {
    state.theta.Update(i, 0.01 + rng.UniformDouble() * 0.1, config.alpha);
  }
  for (uint64_t i = 1; i <= pool_size; ++i) {
    PoolEntry entry;
    entry.metadata.id = SnapshotId{i};
    entry.metadata.function = "bench";
    entry.metadata.request_number = i * (config.max_checkpoint_request / (pool_size + 1));
    entry.object_key = "snapshots/bench/" + std::to_string(i);
    if (!state.pool.Add(std::move(entry)).ok()) {
      std::abort();
    }
  }
  return state;
}

void BM_PolicyOnWorkerStart(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 20);
  auto policy = RequestCentricPolicy::Create(config);
  const PolicyState state =
      PopulatedState(config, static_cast<size_t>(bench_state.range(0)));
  Rng rng(2);
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(policy->OnWorkerStart(state, rng));
  }
}
BENCHMARK(BM_PolicyOnWorkerStart)->Arg(1)->Arg(6)->Arg(12);

// The real per-request cost (paper §3.2 step 3, Figure 7's dominant
// overhead): the latency observation is written through the Database-backed
// PolicyStateStore — Get, decode (skipped on a cache hit), EWMA update,
// re-encode, CAS. Arg 0/1 toggles the decoded-state cache, so the pair
// quantifies exactly what the cache buys on the knowledge-write path.
void KnowledgeWriteLoop(benchmark::State& bench_state, bool cache) {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 20);
  auto policy = RequestCentricPolicy::Create(config);
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "bench", config, nullptr, StateStoreRetryPolicy{}, cache);
  const PolicyState populated = PopulatedState(config, 12);
  if (!store.Update([&](PolicyState& s) { s = populated; }).ok()) {
    std::abort();
  }
  uint64_t request = 1;
  for (auto _ : bench_state) {
    const Status status = store.Update([&](PolicyState& s) {
      policy->OnRequestComplete(s, request, Duration::Millis(10));
    });
    benchmark::DoNotOptimize(status);
    request = request % 100 + 1;
  }
}

void BM_PolicyOnRequestComplete(benchmark::State& bench_state) {
  KnowledgeWriteLoop(bench_state, /*cache=*/true);
}
BENCHMARK(BM_PolicyOnRequestComplete);

void BM_PolicyOnRequestCompleteNoCache(benchmark::State& bench_state) {
  KnowledgeWriteLoop(bench_state, /*cache=*/false);
}
BENCHMARK(BM_PolicyOnRequestCompleteNoCache);

// The raw in-memory EWMA blend alone (the pre-store cost the old
// BM_PolicyOnRequestComplete measured); already O(1).
void BM_ThetaUpdate(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 20);
  auto policy = RequestCentricPolicy::Create(config);
  PolicyState state = PopulatedState(config, 12);
  uint64_t request = 1;
  for (auto _ : bench_state) {
    policy->OnRequestComplete(state, request, Duration::Millis(10));
    request = request % 100 + 1;
  }
}
BENCHMARK(BM_ThetaUpdate);

void BM_PoolPrune(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 20);
  auto policy = RequestCentricPolicy::Create(config);
  Rng rng(3);
  for (auto _ : bench_state) {
    bench_state.PauseTiming();
    PolicyState state = PopulatedState(config, 13);  // One over capacity.
    bench_state.ResumeTiming();
    benchmark::DoNotOptimize(policy->OnSnapshotAdded(state, rng));
  }
}
BENCHMARK(BM_PoolPrune);

void BM_PolicyStateCodec(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("HTMLRendering");  // W = 200.
  const PolicyConfig config = PaperConfig(profile, 20);
  const PolicyState state = PopulatedState(config, 12);
  for (auto _ : bench_state) {
    const auto encoded = EncodePolicyState(state);
    auto decoded = DecodePolicyState(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_PolicyStateCodec);

void BM_ProcessExecute(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("BFS");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 4);
  uint64_t id = 0;
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(process.Execute({id++, 1.0}));
  }
}
BENCHMARK(BM_ProcessExecute);

void BM_SnapshotEncodeDecode(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("BFS");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 5);
  for (uint64_t i = 0; i < 100; ++i) {
    process.Execute({i, 1.0});
  }
  CriuLikeEngine engine(6);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  for (auto _ : bench_state) {
    const auto wire = checkpoint->image.Encode();
    auto decoded = SnapshotImage::Decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SnapshotEncodeDecode);

void BM_CheckpointRestoreRoundTrip(benchmark::State& bench_state) {
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 7);
  for (uint64_t i = 0; i < 50; ++i) {
    process.Execute({i, 1.0});
  }
  CriuLikeEngine engine(8);
  uint64_t id = 1;
  for (auto _ : bench_state) {
    auto checkpoint = engine.Checkpoint(process, SnapshotId{id++}, TimePoint());
    auto restored = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_CheckpointRestoreRoundTrip);

void BM_SimulatedRequestEndToEnd(benchmark::State& bench_state) {
  // Full-stack cost of one simulated request (execution + DB round trip).
  const WorkloadProfile& profile = MustFind("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 20);
  auto policy = RequestCentricPolicy::Create(config);
  auto eviction = EveryKRequestsEviction::Create(20);
  SimOptions options;
  options.seed = 9;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  for (auto _ : bench_state) {
    auto report = sim.RunClosedLoop(1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SimulatedRequestEndToEnd);

}  // namespace
}  // namespace pronghorn::bench

BENCHMARK_MAIN();
