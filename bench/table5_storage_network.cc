// Table 5: maximum storage and cumulative network bandwidth used by the
// request-centric strategy versus the state-of-the-art baseline. The paper
// computes max storage as C x the average snapshot size, and max network as
// 2 x (container lifetimes) x snapshot size (each exploring lifetime performs
// one restore download and one checkpoint upload); the baseline stores one
// snapshot and only downloads. We print both the analytic bound and the
// simulator's measured accounting.

#include "bench/exhibit_common.h"

namespace pronghorn::bench {
namespace {

constexpr uint64_t kRequests = 500;
constexpr uint32_t kEvictionK = 1;  // Every request a new worker, as in Table 5.

void Row(const char* benchmark) {
  const WorkloadProfile& profile = MustFind(benchmark);

  const SimulationReport rc = RunClosedLoop(profile, PolicyKind::kRequestCentric,
                                            kEvictionK, kRequests, /*seed=*/29);
  const SimulationReport baseline = RunClosedLoop(profile, PolicyKind::kAfterFirst,
                                                  kEvictionK, kRequests, /*seed=*/29);

  const double mb = 1024.0 * 1024.0;
  const double snapshot_mb = profile.snapshot_mb;
  const double lifetimes = static_cast<double>(rc.worker_lifetimes);

  // Analytic bounds, exactly as the paper's caption computes them.
  const double analytic_max_storage = 12.0 * snapshot_mb;
  const double analytic_max_network = 2.0 * lifetimes * snapshot_mb;
  const double analytic_baseline_storage = snapshot_mb;
  const double analytic_baseline_network = lifetimes * snapshot_mb;

  // Measured from the object-store accounting.
  const double measured_peak_storage =
      static_cast<double>(rc.object_store.peak_logical_bytes) / mb;
  const double measured_network =
      static_cast<double>(rc.object_store.network_bytes_uploaded +
                          rc.object_store.network_bytes_downloaded) /
      mb;
  const double measured_baseline_storage =
      static_cast<double>(baseline.object_store.peak_logical_bytes) / mb;
  const double measured_baseline_network =
      static_cast<double>(baseline.object_store.network_bytes_uploaded +
                          baseline.object_store.network_bytes_downloaded) /
      mb;

  std::printf("  %-14s %8.0f/%-8.0f %9.0f/%-9.0f %8.0f/%-8.0f %9.0f/%-9.0f\n",
              benchmark, analytic_max_storage, measured_peak_storage,
              analytic_max_network, measured_network, analytic_baseline_storage,
              measured_baseline_storage, analytic_baseline_network,
              measured_baseline_network);
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Table 5: storage and network overheads (MB) ===\n");
  std::printf("  columns are analytic-bound/measured\n\n");
  std::printf("  %-14s %-17s %-19s %-17s %-19s\n", "benchmark", "max storage",
              "max network", "baseline storage", "baseline network");
  std::printf("  Java:\n");
  for (const char* name : {"HTMLRendering", "MatrixMult", "Hash", "WordCount"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("  Python:\n");
  for (const char* name : {"BFS", "DFS", "MST", "DynamicHTML", "PageRank", "Uploader",
                           "Thumbnailer", "Video", "Compression"}) {
    pronghorn::bench::Row(name);
  }
  std::printf("\n(paper, for 13 benchmarks at 500 invocations: max storage 126-768 MB\n"
              " = C=12 snapshots; max network ~2x the baseline's; baseline storage\n"
              " is one snapshot. Measured values fall below the analytic bound when\n"
              " the pool has not yet refilled to capacity at the high-water mark.)\n");
  return 0;
}
