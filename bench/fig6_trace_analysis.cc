// Figure 6: end-to-end latency CDFs under production-like traffic. Functions
// are sampled at the 50th/65th/75th percentile of popularity from the Azure
// trace model and replayed as fifteen-minute invocation windows against a
// platform with a 10-minute idle eviction timeout (the AWS Lambda default the
// paper cites). Low-popularity windows contain very few requests — the paper
// calls its 3-request MST window at the 50th percentile "pathological" — so,
// like the paper's multi-window methodology, we replay a sequence of windows
// per scenario to populate the CDF.

#include "bench/exhibit_common.h"
#include "src/platform/function_simulation.h"
#include "src/trace/trace_generator.h"

namespace pronghorn::bench {
namespace {

constexpr double kPercentiles[] = {50.0, 65.0, 75.0};
const char* kBenchmarks[] = {"MST", "Thumbnailer", "HTMLRendering"};
constexpr int kWindowsPerScenario = 30;
constexpr int64_t kWindowSeconds = 900;

std::vector<TimePoint> BuildArrivals(double percentile, uint64_t seed) {
  const AzureTraceModel model;
  TraceGenerator generator(model, seed);
  std::vector<TimePoint> arrivals;
  for (int window = 0; window < kWindowsPerScenario; ++window) {
    auto window_arrivals =
        generator.GenerateWindow(percentile, Duration::Seconds(kWindowSeconds));
    if (!window_arrivals.ok()) {
      std::fprintf(stderr, "%s\n", window_arrivals.status().ToString().c_str());
      std::exit(1);
    }
    const int64_t base_us = static_cast<int64_t>(window) * kWindowSeconds * 1000000;
    for (TimePoint t : *window_arrivals) {
      arrivals.push_back(TimePoint::FromMicros(base_us + t.ToMicros()));
    }
  }
  return arrivals;
}

void RunScenario(const char* benchmark, double percentile) {
  const WorkloadProfile& profile = MustFind(benchmark);
  const std::vector<TimePoint> arrivals =
      BuildArrivals(percentile, 1000 + static_cast<uint64_t>(percentile));
  std::printf(" %-14s popularity p%.0f: %zu invocations over %d windows\n", benchmark,
              percentile, arrivals.size(), kWindowsPerScenario);
  if (arrivals.empty()) {
    std::printf("  (window empty -- function too unpopular; paper's pathological "
                "case)\n");
    return;
  }

  double after_first_median = 0.0;
  for (PolicyKind kind :
       {PolicyKind::kCold, PolicyKind::kAfterFirst, PolicyKind::kRequestCentric}) {
    // beta for trace runs: requests expected per worker lifetime; a rough
    // provider estimate of 4 mirrors the paper's mid eviction rate.
    const PolicyConfig config = PaperConfig(profile, /*eviction_k=*/4);
    const auto policy = MakePolicy(kind, config);
    // Platform behavior: 10-minute idle timeout (AWS Lambda default) plus the
    // ~20-minute typical worker lifetime from the Azure characterization.
    IdleTimeoutEviction idle(Duration::Seconds(600));
    MaxLifetimeEviction lifetime(Duration::Seconds(1200));
    AnyOfEviction eviction({&idle, &lifetime});
    SimOptions options;
    options.seed = 7;
    FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, eviction,
                           options);
    auto report = sim.RunTrace(arrivals);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      std::exit(1);
    }
    const DistributionSummary summary = report->LatencySummary();
    PrintPercentileRow(PolicyKindName(kind), summary);
    if (kind == PolicyKind::kAfterFirst) {
      after_first_median = summary.Median();
    } else if (kind == PolicyKind::kRequestCentric) {
      std::printf("  -> request-centric vs after-1st median: %+.1f%%\n",
                  (after_first_median - summary.Median()) / after_first_median * 100.0);
    }
  }
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  std::printf("=== Figure 6: Azure-trace-driven latency CDFs (us) ===\n");
  std::printf("(paper: Pronghorn superior in 6/9 scenarios, on-par in 2, worse in 1\n"
              " pathological low-traffic scenario)\n\n");
  for (double percentile : pronghorn::bench::kPercentiles) {
    std::printf("--- popularity percentile %.0f ---\n", percentile);
    for (const char* benchmark : pronghorn::bench::kBenchmarks) {
      pronghorn::bench::RunScenario(benchmark, percentile);
    }
    std::printf("\n");
  }
  return 0;
}
