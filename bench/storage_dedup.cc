// Storage dedup exhibit: the content-addressed snapshot store against the
// flat baseline on a pool-shaped checkpoint workload (DESIGN.md §14).
//
// Workload: a few functions, each keeping a pool of worker snapshots that
// are re-checkpointed across generations. Adjacent generations of one worker
// share almost all of their pages (the engines re-encode the same layout and
// mutate a small working set), and workers of one function share the base
// image — exactly the redundancy the chunk index collapses. The exhibit
// reports logical vs physical bytes and the dedup ratio, then times an
// eager vs lazy (record-then-prefetch) restore storm over the same pool,
// and finishes with a GC pass plus a full invariant check.
//
// Written to BENCH_storage_dedup.json so CI archives the trajectory. The
// binary exits non-zero when a gate fails:
//   - physical resident bytes must be <= 50% of the logical bytes put
//   - the lazy restore storm must fetch fewer bytes than the eager one
//   - GC must reclaim every unreferenced chunk and the refcount invariants
//     must hold afterwards

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/exhibit_common.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/store/snapshot_store.h"

namespace pronghorn::bench {
namespace {

constexpr size_t kFunctions = 4;
constexpr size_t kWorkersPerFunction = 8;
constexpr size_t kGenerations = 6;
constexpr size_t kImageBytes = 1 << 20;  // 1 MiB per snapshot image.
constexpr size_t kPageBytes = 4096;
constexpr size_t kMutatedPagesPerGeneration = 12;
constexpr size_t kRestoreRounds = 4;
constexpr uint64_t kSeed = 42;
constexpr const char* kJsonPath = "BENCH_storage_dedup.json";

struct RestoreRun {
  uint64_t bytes_fetched = 0;
  uint64_t chunks_fetched = 0;
  uint64_t chunks_prefetched = 0;
  uint64_t demand_faults = 0;
  uint64_t cache_hits = 0;
  double wall_seconds = 0.0;
};

std::string SnapshotKey(size_t function, size_t worker) {
  char key[64];
  std::snprintf(key, sizeof(key), "fn%02zu/worker%02zu", function, worker);
  return key;
}

// The pool of images the workload checkpoints: per function one random base
// image; per worker/generation a copy with a small set of mutated pages (the
// per-generation working set) plus one worker-unique page so no two workers
// are bit-identical.
std::vector<uint8_t> MakeImage(const std::vector<uint8_t>& base, size_t worker,
                               size_t generation, Rng& rng) {
  std::vector<uint8_t> image = base;
  // Worker-unique page: stable across generations, so it dedups against the
  // worker's own previous snapshot but not against its siblings.
  const size_t worker_page = worker % (kImageBytes / kPageBytes);
  Rng worker_rng(HashCombine(kSeed, HashCombine(0x50a6eULL, worker)));
  for (size_t i = 0; i < kPageBytes; ++i) {
    image[worker_page * kPageBytes + i] = static_cast<uint8_t>(worker_rng.NextUint64());
  }
  // Generation working set: freshly dirtied pages.
  for (size_t m = 0; m < kMutatedPagesPerGeneration * generation; ++m) {
    const size_t page = rng.UniformUint64(kImageBytes / kPageBytes);
    for (size_t i = 0; i < kPageBytes; ++i) {
      image[page * kPageBytes + i] = static_cast<uint8_t>(rng.NextUint64());
    }
  }
  return image;
}

// Puts every pool snapshot (each worker key is replaced once per
// generation, like the orchestrator's checkpoint path).
void FillStore(SnapshotStore& store, uint64_t* logical_bytes_put) {
  for (size_t f = 0; f < kFunctions; ++f) {
    Rng base_rng(HashCombine(kSeed, f));
    std::vector<uint8_t> base(kImageBytes);
    for (uint8_t& b : base) {
      b = static_cast<uint8_t>(base_rng.NextUint64());
    }
    for (size_t g = 0; g < kGenerations; ++g) {
      for (size_t w = 0; w < kWorkersPerFunction; ++w) {
        Rng mut_rng(HashCombine(kSeed, HashCombine(f, HashCombine(g, w))));
        std::vector<uint8_t> image = MakeImage(base, w, g, mut_rng);
        const uint64_t logical = image.size();
        auto ref = store.PutSnapshot(SnapshotKey(f, w),
                                     ObjectBlob(std::move(image), logical));
        if (!ref.ok()) {
          std::fprintf(stderr, "put failed: %s\n", ref.status().ToString().c_str());
          std::exit(1);
        }
        *logical_bytes_put += logical;
      }
    }
  }
}

// Restore storm: every pool snapshot opened and fully materialized,
// kRestoreRounds times — the hot-start path under load. Returns the fetch
// counters accumulated by the storm alone.
RestoreRun RestoreStorm(SnapshotStore& store) {
  const PhysicalAccounting before = store.accounting().physical;
  const auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < kRestoreRounds; ++round) {
    for (size_t f = 0; f < kFunctions; ++f) {
      for (size_t w = 0; w < kWorkersPerFunction; ++w) {
        auto reader = store.OpenSnapshot(SnapshotKey(f, w));
        if (!reader.ok()) {
          std::fprintf(stderr, "open failed: %s\n",
                       reader.status().ToString().c_str());
          std::exit(1);
        }
        auto blob = (*reader)->ReadAll();
        if (!blob.ok() || blob->bytes().size() != kImageBytes) {
          std::fprintf(stderr, "restore failed or short\n");
          std::exit(1);
        }
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const PhysicalAccounting after = store.accounting().physical;
  RestoreRun run;
  run.bytes_fetched = after.bytes_fetched - before.bytes_fetched;
  run.chunks_fetched = after.chunks_fetched - before.chunks_fetched;
  run.chunks_prefetched = after.chunks_prefetched - before.chunks_prefetched;
  run.demand_faults = after.demand_faults - before.demand_faults;
  run.cache_hits = after.cache_hits - before.cache_hits;
  run.wall_seconds = std::chrono::duration<double>(end - start).count();
  return run;
}

bool WriteJson(uint64_t logical, const PhysicalAccounting& phys,
               const RestoreRun& eager, const RestoreRun& lazy,
               uint64_t collected_chunks, uint64_t collected_bytes) {
  std::FILE* out = std::fopen(kJsonPath, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", kJsonPath);
    return false;
  }
  const auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"storage_dedup\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  EmitMachineJson(out, "  ");
  std::fprintf(out, "  \"functions\": %zu,\n", kFunctions);
  std::fprintf(out, "  \"workers_per_function\": %zu,\n", kWorkersPerFunction);
  std::fprintf(out, "  \"generations\": %zu,\n", kGenerations);
  std::fprintf(out, "  \"image_bytes\": %zu,\n", kImageBytes);
  std::fprintf(out, "  \"chunk_bytes\": %zu,\n", kPageBytes);
  std::fprintf(out, "  \"seed\": %llu,\n", u(kSeed));
  std::fprintf(out, "  \"logical_bytes_put\": %llu,\n", u(logical));
  std::fprintf(out, "  \"physical_bytes_resident\": %llu,\n", u(phys.bytes_stored));
  std::fprintf(out, "  \"flat_bytes_resident\": %llu,\n", u(phys.flat_bytes_stored));
  std::fprintf(out, "  \"dedup_ratio\": %.3f,\n", phys.DedupRatio());
  std::fprintf(out, "  \"chunks_stored\": %llu,\n", u(phys.chunks_stored));
  std::fprintf(out, "  \"dedup_hits\": %llu,\n", u(phys.dedup_hits));
  std::fprintf(out, "  \"dedup_bytes_saved\": %llu,\n", u(phys.dedup_bytes_saved));
  std::fprintf(out, "  \"delta_bytes_shared\": %llu,\n", u(phys.delta_bytes_shared));
  std::fprintf(out, "  \"gc_chunks_collected\": %llu,\n", u(collected_chunks));
  std::fprintf(out, "  \"gc_bytes_collected\": %llu,\n", u(collected_bytes));
  std::fprintf(out,
               "  \"eager_restore\": {\"bytes_fetched\": %llu, "
               "\"chunks_fetched\": %llu, \"wall_seconds\": %.6f},\n",
               u(eager.bytes_fetched), u(eager.chunks_fetched), eager.wall_seconds);
  std::fprintf(out,
               "  \"lazy_restore\": {\"bytes_fetched\": %llu, "
               "\"chunks_fetched\": %llu, \"chunks_prefetched\": %llu, "
               "\"demand_faults\": %llu, \"cache_hits\": %llu, "
               "\"wall_seconds\": %.6f}\n",
               u(lazy.bytes_fetched), u(lazy.chunks_fetched),
               u(lazy.chunks_prefetched), u(lazy.demand_faults), u(lazy.cache_hits),
               lazy.wall_seconds);
  std::fprintf(out, "}\n");
  std::fclose(out);
  return true;
}

}  // namespace
}  // namespace pronghorn::bench

int main() {
  using namespace pronghorn;
  using namespace pronghorn::bench;
  std::printf("=== Exhibit: content-addressed snapshot storage ===\n");
  std::printf("%zu functions x %zu workers x %zu generations, %zu KiB images, "
              "%zu-byte chunks\n\n",
              kFunctions, kWorkersPerFunction, kGenerations, kImageBytes / 1024,
              kPageBytes);

  SimClock clock;
  SnapshotStoreOptions options;
  options.kind = SnapshotStoreOptions::Kind::kDedup;
  options.chunker.chunk_size = kPageBytes;

  // Pool fill + dedup footprint.
  DedupSnapshotStore store(options, &clock);
  uint64_t logical_bytes_put = 0;
  FillStore(store, &logical_bytes_put);
  const PhysicalAccounting phys = store.accounting().physical;
  std::printf("logical bytes put      %12llu\n",
              static_cast<unsigned long long>(logical_bytes_put));
  std::printf("physical resident      %12llu  (dedup ratio %.1fx, %llu chunks, "
              "%llu dedup hits)\n",
              static_cast<unsigned long long>(phys.bytes_stored), phys.DedupRatio(),
              static_cast<unsigned long long>(phys.chunks_stored),
              static_cast<unsigned long long>(phys.dedup_hits));
  std::printf("delta bytes shared     %12llu  (vs previous snapshot of the "
              "same function)\n\n",
              static_cast<unsigned long long>(phys.delta_bytes_shared));

  // Eager restore storm on the filled store.
  const RestoreRun eager = RestoreStorm(store);

  // Lazy restore storm on an identically-filled lazy store.
  SnapshotStoreOptions lazy_options = options;
  lazy_options.lazy_restore = true;
  // A cache smaller than the pool's unique bytes, so the storm actually
  // exercises eviction, prefetch, and demand faults rather than pure hits.
  lazy_options.chunk_cache_bytes = 4ull << 20;
  DedupSnapshotStore lazy_store(lazy_options, &clock);
  uint64_t lazy_logical = 0;
  FillStore(lazy_store, &lazy_logical);
  const RestoreRun lazy = RestoreStorm(lazy_store);

  std::printf("eager restore storm    %12llu bytes fetched  (%.3fs)\n",
              static_cast<unsigned long long>(eager.bytes_fetched),
              eager.wall_seconds);
  std::printf("lazy restore storm     %12llu bytes fetched  (%.3fs, "
              "%llu prefetched, %llu cache hits, %llu demand faults)\n\n",
              static_cast<unsigned long long>(lazy.bytes_fetched), lazy.wall_seconds,
              static_cast<unsigned long long>(lazy.chunks_prefetched),
              static_cast<unsigned long long>(lazy.cache_hits),
              static_cast<unsigned long long>(lazy.demand_faults));

  // GC pass: drop half the pool, collect, and verify the books.
  const PhysicalAccounting before_gc = store.accounting().physical;
  for (size_t f = 0; f < kFunctions; ++f) {
    for (size_t w = 0; w < kWorkersPerFunction; w += 2) {
      if (Status s = store.DeleteSnapshot(SnapshotKey(f, w)); !s.ok()) {
        std::fprintf(stderr, "delete failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  (void)store.CollectGarbage();
  const PhysicalAccounting after_gc = store.accounting().physical;
  const uint64_t collected_chunks =
      after_gc.chunks_collected - before_gc.chunks_collected;
  const uint64_t collected_bytes = after_gc.bytes_collected - before_gc.bytes_collected;
  std::printf("gc after dropping half %12llu bytes reclaimed (%llu chunks)\n\n",
              static_cast<unsigned long long>(collected_bytes),
              static_cast<unsigned long long>(collected_chunks));

  bool ok = true;
  if (Status s = store.CheckInvariants(); !s.ok()) {
    std::fprintf(stderr, "GATE: invariants violated after gc: %s\n",
                 s.ToString().c_str());
    ok = false;
  }
  if (store.unreferenced_chunks() != 0) {
    std::fprintf(stderr, "GATE: %llu unreferenced chunks survived gc\n",
                 static_cast<unsigned long long>(store.unreferenced_chunks()));
    ok = false;
  }
  if (phys.bytes_stored * 2 > logical_bytes_put) {
    std::fprintf(stderr, "GATE: physical %llu > 50%% of logical %llu\n",
                 static_cast<unsigned long long>(phys.bytes_stored),
                 static_cast<unsigned long long>(logical_bytes_put));
    ok = false;
  }
  if (lazy.bytes_fetched >= eager.bytes_fetched) {
    std::fprintf(stderr, "GATE: lazy storm fetched %llu bytes >= eager %llu\n",
                 static_cast<unsigned long long>(lazy.bytes_fetched),
                 static_cast<unsigned long long>(eager.bytes_fetched));
    ok = false;
  }
  if (!WriteJson(logical_bytes_put, phys, eager, lazy, collected_chunks,
                 collected_bytes)) {
    ok = false;
  }
  if (ok) {
    std::printf("all storage gates hold; wrote %s\n", kJsonPath);
  }
  return ok ? 0 : 1;
}
