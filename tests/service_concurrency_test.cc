// Concurrency battery for the live orchestrator service (run under TSan in
// CI). Many client threads hammer one service through the wire boundary with
// randomized sync/deferred interleavings while the main thread reconfigures
// and drains it, and a poller watches the policy-state versions. Invariants:
//
//   - No lost observations: after a drain with no injected faults, every
//     observation issued has its knowledge write committed to the Database.
//   - Policy-state versions are monotonic under concurrent group commits.
//   - Drain-on-shutdown is clean: no orchestrator holds a pending
//     observation once Drain() returns, and every in-flight Call gets a
//     reply (no thread is left blocked).
//   - Shutdown is idempotent and post-shutdown calls fail loudly (kError),
//     never hang.

#include "src/service/orchestrator_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/criu_like_engine.h"
#include "src/common/rng.h"
#include "src/core/request_centric_policy.h"
#include "src/service/wire.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {
namespace {

constexpr uint32_t kFunctions = 4;
constexpr uint32_t kSlotsPerFunction = 2;
constexpr uint32_t kClientThreads = kFunctions * kSlotsPerFunction;  // 8.
constexpr uint32_t kCyclesPerThread = 30;

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// The per-function stack, shaped like SimEnvironment's Deployment: one
// database / object store / clock / engine / state store shared by all of the
// function's slot orchestrators. All slots of a function route to one shard,
// so the shared pieces are only ever touched by that shard's thread.
struct FunctionStack {
  FunctionStack(const OrchestrationPolicy& policy, const std::string& name_in,
                uint64_t seed)
      : name(name_in),
        profile(**WorkloadRegistry::Default().Find("DynamicHTML")),
        engine(HashCombine(seed, 0xe1)),
        state_store(db, name_in, policy.config()),
        snapshot_store(object_store) {
    for (uint32_t slot = 0; slot < kSlotsPerFunction; ++slot) {
      orchestrators.push_back(std::make_unique<Orchestrator>(
          profile, WorkloadRegistry::Default(), policy, engine, snapshot_store,
          state_store, clock, HashCombine(seed, slot)));
    }
  }

  std::string name;
  const WorkloadProfile& profile;
  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine;
  PolicyStateStore state_store;
  FlatSnapshotStore snapshot_store;
  std::vector<std::unique_ptr<Orchestrator>> orchestrators;
};

// One thread's workload: repeated start → observe×N → retire cycles against
// its own (function, slot) pair, randomly alternating between the synchronous
// client and the deferred (group-commit) client. Returns observations issued.
uint64_t ClientWorkload(OrchestratorService* service, const std::string& function,
                        uint32_t slot, uint64_t seed) {
  ServiceClient sync_client(service, function, slot, /*defer_commit=*/false);
  ServiceClient deferred_client(service, function, slot, /*defer_commit=*/true);
  Rng rng(seed);
  uint64_t issued = 0;
  for (uint32_t cycle = 0; cycle < kCyclesPerThread; ++cycle) {
    ServiceClient& client = rng.Bernoulli(0.5) ? deferred_client : sync_client;
    const auto view = client.StartWorker();
    if (!view.ok()) {
      ADD_FAILURE() << "StartWorker: " << view.status().ToString();
      return issued;
    }
    const uint64_t observations = 1 + rng.UniformUint64(6);
    for (uint64_t i = 0; i < observations; ++i) {
      const auto outcome = client.ServeRequest({i, 1.0});
      if (!outcome.ok()) {
        ADD_FAILURE() << "ServeRequest: " << outcome.status().ToString();
        return issued;
      }
      ++issued;
    }
    if (rng.Bernoulli(0.2)) {
      // Occasionally probe the plan mid-session; must see a live session.
      const auto plan = client.QueryPlan();
      if (plan.ok()) {
        EXPECT_TRUE(plan->live);
        EXPECT_FALSE(plan->retired);
      } else {
        ADD_FAILURE() << "QueryPlan: " << plan.status().ToString();
      }
    }
    (void)client.EndSession();  // Retires the slot; zeroed on failure.
  }
  return issued;
}

TEST(ServiceConcurrencyTest, StressBatteryNoLostObservations) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());

  ServiceConfig config;
  config.shards = 4;
  config.queue_capacity = 16;  // Small, so Push backpressure is exercised.
  config.max_batch = 4;
  config.flush_interval = Duration::Millis(1);
  OrchestratorService service(config);
  ASSERT_EQ(service.shard_count(), 4u);

  std::vector<std::unique_ptr<FunctionStack>> stacks;
  for (uint32_t f = 0; f < kFunctions; ++f) {
    stacks.push_back(std::make_unique<FunctionStack>(
        *policy, "stress-fn-" + std::to_string(f), 1000 + f));
    for (uint32_t slot = 0; slot < kSlotsPerFunction; ++slot) {
      ASSERT_TRUE(service
                      .Bind(stacks.back()->name, slot,
                            stacks.back()->orchestrators[slot].get(),
                            &stacks.back()->clock)
                      .ok());
    }
  }

  // Version poller: policy-state versions must only ever move forward, even
  // while group commits land concurrently on other functions' shards.
  std::atomic<bool> stop_poller{false};
  std::thread poller([&] {
    std::vector<uint64_t> last(kFunctions, 0);
    while (!stop_poller.load(std::memory_order_acquire)) {
      for (uint32_t f = 0; f < kFunctions; ++f) {
        const auto versioned =
            stacks[f]->db.GetVersioned("policy/" + stacks[f]->name + "/state");
        if (versioned.ok()) {
          EXPECT_GE(versioned->version, last[f]) << "version went backwards";
          last[f] = versioned->version;
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  std::vector<uint64_t> issued(kClientThreads, 0);
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const uint32_t function = t / kSlotsPerFunction;
      const uint32_t slot = t % kSlotsPerFunction;
      issued[t] = ClientWorkload(&service, stacks[function]->name, slot,
                                 /*seed=*/5000 + t);
    });
  }

  // Control-plane churn while the clients hammer: shrink and grow the shard
  // count and batch policy, and interleave full drains. Every reconfigure
  // re-partitions the endpoints without dropping a binding or a session.
  const std::vector<std::pair<uint32_t, uint32_t>> regimes = {{2, 2}, {8, 8}, {4, 4}};
  for (const auto& [shards, batch] : regimes) {
    ASSERT_TRUE(service.Reconfigure(shards, batch, Duration::Millis(1)).ok());
    ASSERT_EQ(service.shard_count(), shards);
    ASSERT_TRUE(service.Drain().ok());
  }

  for (std::thread& thread : clients) {
    thread.join();
  }
  stop_poller.store(true, std::memory_order_release);
  poller.join();

  // Final drain, then the books must balance exactly.
  ASSERT_TRUE(service.Drain().ok());
  uint64_t total_issued = 0;
  for (const uint64_t n : issued) {
    total_issued += n;
  }
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.observations, total_issued);
  // No faults injected anywhere, so every observation's knowledge write must
  // have committed — none lost in a queue, a batch, or a dropped reply.
  EXPECT_EQ(stats.observations_committed, stats.observations);
  EXPECT_EQ(stats.start_decisions, uint64_t{kClientThreads} * kCyclesPerThread);
  EXPECT_EQ(stats.requests,
            stats.start_decisions + stats.observations + stats.plan_requests);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.rejected_requests, 0u);
  EXPECT_EQ(stats.flush_errors, 0u);
  EXPECT_GT(stats.observations_deferred, 0u);  // Both modes actually ran.
  EXPECT_GT(stats.batches_committed, 0u);
  EXPECT_EQ(stats.reconfigures, 3u);

  // Clean drain: nothing is buffered anywhere.
  for (const auto& stack : stacks) {
    for (const auto& orchestrator : stack->orchestrators) {
      EXPECT_EQ(orchestrator->pending_observation_count(), 0u);
    }
  }

  service.Shutdown();
  EXPECT_FALSE(service.running());
}

TEST(ServiceConcurrencyTest, ShutdownIsIdempotentAndRejectsLateCalls) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, "late", 1);

  ServiceConfig config;
  config.shards = 2;
  OrchestratorService service(config);
  ASSERT_TRUE(
      service.Bind(stack.name, 0, stack.orchestrators[0].get(), &stack.clock).ok());

  ServiceClient client(&service, stack.name, 0);
  ASSERT_TRUE(client.StartWorker().ok());
  ASSERT_TRUE(client.ServeRequest({0, 1.0}).ok());

  service.Shutdown();
  service.Shutdown();  // Second shutdown is a no-op, not a crash or a hang.
  EXPECT_FALSE(service.running());

  // A call after shutdown gets a decodable kError frame, never a hang.
  ServiceRequest request;
  request.type = WireType::kStartDecision;
  request.function = stack.name;
  const std::vector<uint8_t> reply = service.Call(EncodeServiceRequest(request));
  const auto response = DecodeServiceResponse(reply);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, WireType::kError);
  EXPECT_GT(service.stats().rejected_requests, 0u);

  // Control operations on a stopped service are safe too.
  EXPECT_TRUE(service.Drain().ok());
}

TEST(ServiceConcurrencyTest, ConcurrentShutdownWithLiveClients) {
  // Shutdown racing in-flight traffic: every client call must complete (reply
  // or kError), and the process must not deadlock. TSan checks the rest.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());

  ServiceConfig config;
  config.shards = 4;
  config.max_batch = 4;
  OrchestratorService service(config);

  std::vector<std::unique_ptr<FunctionStack>> stacks;
  for (uint32_t f = 0; f < kFunctions; ++f) {
    stacks.push_back(std::make_unique<FunctionStack>(
        *policy, "race-fn-" + std::to_string(f), 2000 + f));
    ASSERT_TRUE(service
                    .Bind(stacks.back()->name, 0,
                          stacks.back()->orchestrators[0].get(),
                          &stacks.back()->clock)
                    .ok());
  }

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kFunctions; ++t) {
    clients.emplace_back([&, t] {
      ServiceClient client(&service, stacks[t]->name, 0, /*defer_commit=*/true);
      Rng rng(3000 + t);
      // Drive until the service refuses; every individual call still returns.
      for (int cycle = 0; cycle < 200; ++cycle) {
        const auto view = client.StartWorker();
        if (!view.ok()) {
          return;  // Service shut down underneath us — expected.
        }
        const uint64_t observations = 1 + rng.UniformUint64(4);
        for (uint64_t i = 0; i < observations; ++i) {
          if (!client.ServeRequest({i, 1.0}).ok()) {
            return;
          }
        }
        (void)client.EndSession();
      }
    });
  }

  service.Shutdown();
  for (std::thread& thread : clients) {
    thread.join();  // Nobody is left blocked in Call().
  }
  EXPECT_FALSE(service.running());
}

TEST(ServiceConcurrencyTest, BindingErrorsAreReported) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, "dup", 1);

  OrchestratorService service(ServiceConfig{});
  ASSERT_TRUE(
      service.Bind(stack.name, 0, stack.orchestrators[0].get(), &stack.clock).ok());
  EXPECT_EQ(
      service.Bind(stack.name, 0, stack.orchestrators[1].get(), &stack.clock).code(),
      StatusCode::kAlreadyExists);

  // A request for a function nobody bound fails loudly through the wire.
  ServiceClient client(&service, "nobody-bound-this", 0);
  const auto view = client.StartWorker();
  EXPECT_FALSE(view.ok());

  EXPECT_TRUE(service.Unbind(stack.name).ok());
  EXPECT_EQ(service.Unbind(stack.name).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pronghorn
