#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pronghorn {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, ExplicitThreadCountHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> forty_two = pool.Submit([]() { return 42; });
  std::future<std::string> text = pool.Submit([]() { return std::string("shard"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "shard");
}

TEST(ThreadPoolTest, SubmitVoidTaskRuns) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, FailedTaskDoesNotPoisonLaterTasks) {
  ThreadPool pool(1);
  std::future<int> bad = pool.Submit([]() -> int { throw std::logic_error("bad"); });
  std::future<int> good = pool.Submit([]() { return 7; });
  EXPECT_THROW(bad.get(), std::logic_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> visits(kTasks);
  pool.ParallelFor(kTasks, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&completed](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("unlucky");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // Every non-throwing task still ran: one failure does not cancel the batch.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, UnevenTasksAllCompleteAcrossQueues) {
  // Round-robin placement puts the slow tasks on a subset of queues; the
  // other workers must steal the remaining fast tasks rather than idle.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr size_t kTasks = 64;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i, &done]() {
      if (i % 4 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      done.fetch_add(1);
    }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(done.load(), static_cast<int>(kTasks));
}

TEST(ThreadPoolTest, NoTaskLossUnderConcurrentSubmission) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter, &futures, s]() {
      futures[static_cast<size_t>(s)].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[static_cast<size_t>(s)].push_back(
            pool.Submit([&counter]() { counter.fetch_add(1); }));
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      future.get();
    }
  }
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      // The first tasks sleep briefly so a backlog builds up behind them;
      // the destructor must run that backlog, not drop it.
      pool.Submit([i, &executed]() {
        if (i < 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        executed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletesEverything) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, EffectiveParallelismClampsToHardware) {
  const uint32_t hardware = ThreadPool::DefaultThreadCount();
  // 0 means "use everything available".
  EXPECT_EQ(ThreadPool::EffectiveParallelism(0), hardware);
  // Requests at or below hardware are honored as-is.
  EXPECT_EQ(ThreadPool::EffectiveParallelism(1), 1u);
  if (hardware > 1) {
    EXPECT_EQ(ThreadPool::EffectiveParallelism(hardware - 1), hardware - 1);
  }
  // Oversubscription requests are capped: --threads is a parallelism cap,
  // not a demand (this is the negative-scaling fix).
  EXPECT_EQ(ThreadPool::EffectiveParallelism(hardware), hardware);
  EXPECT_EQ(ThreadPool::EffectiveParallelism(hardware + 1), hardware);
  EXPECT_EQ(ThreadPool::EffectiveParallelism(1000), hardware);
}

TEST(ThreadPoolTest, TryRunOnePendingDrainsQueuedTasks) {
  // A zero-worker scenario is unbuildable (min 1 worker), so instead park
  // the single worker on a slow task and verify the caller can drain the
  // backlog behind it.
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::future<void> slow = pool.Submit([&started, &release]() {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Wait until the worker owns the parked task, so the backlog below is
  // drainable purely by the calling thread.
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::atomic<int> drained{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&drained]() { drained.fetch_add(1); }));
  }
  // The worker is blocked; the calling thread runs the backlog itself.
  while (drained.load() < 16) {
    if (!pool.TryRunOnePending()) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(drained.load(), 16);
  EXPECT_FALSE(pool.TryRunOnePending());  // nothing left but the parked task
  release.store(true);
  slow.get();
  for (auto& future : futures) {
    future.get();
  }
}

TEST(ThreadPoolTest, ParallelForCallerAssistsWhileWorkersBlocked) {
  // Park the only worker; ParallelFor must still finish because the calling
  // thread drains the queued iterations while waiting.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::future<void> slow = pool.Submit([&release]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::atomic<int> counter{0};
  std::thread unblocker([&release]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    release.store(true);
  });
  pool.ParallelFor(64, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
  release.store(true);
  unblocker.join();
  slow.get();
}

TEST(ThreadPoolTest, OptionsConstructorHonorsThreadCount) {
  ThreadPoolOptions options;
  options.threads = 2;
  ThreadPool pool(options);
  EXPECT_EQ(pool.thread_count(), 2u);
}

TEST(ThreadPoolTest, PinnedPoolRunsWorkNormally) {
  // Pinning is a scheduling hint; on any platform (supported or not) the
  // pool must behave identically from the caller's perspective.
  ThreadPoolOptions options;
  options.threads = 2;
  options.pin_threads = true;
  ThreadPool pool(options);
  std::atomic<int> counter{0};
  pool.ParallelFor(200, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.Submit([]() { return 5; }).get(), 5);
}

}  // namespace
}  // namespace pronghorn
