#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pronghorn {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, ExplicitThreadCountHonored) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> forty_two = pool.Submit([]() { return 42; });
  std::future<std::string> text = pool.Submit([]() { return std::string("shard"); });
  EXPECT_EQ(forty_two.get(), 42);
  EXPECT_EQ(text.get(), "shard");
}

TEST(ThreadPoolTest, SubmitVoidTaskRuns) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.Submit([&ran]() { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("shard failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, FailedTaskDoesNotPoisonLaterTasks) {
  ThreadPool pool(1);
  std::future<int> bad = pool.Submit([]() -> int { throw std::logic_error("bad"); });
  std::future<int> good = pool.Submit([]() { return 7; });
  EXPECT_THROW(bad.get(), std::logic_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> visits(kTasks);
  pool.ParallelFor(kTasks, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsAfterAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&completed](size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("unlucky");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // Every non-throwing task still ran: one failure does not cancel the batch.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, UnevenTasksAllCompleteAcrossQueues) {
  // Round-robin placement puts the slow tasks on a subset of queues; the
  // other workers must steal the remaining fast tasks rather than idle.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr size_t kTasks = 64;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([i, &done]() {
      if (i % 4 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      done.fetch_add(1);
    }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(done.load(), static_cast<int>(kTasks));
}

TEST(ThreadPoolTest, NoTaskLossUnderConcurrentSubmission) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter, &futures, s]() {
      futures[static_cast<size_t>(s)].reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        futures[static_cast<size_t>(s)].push_back(
            pool.Submit([&counter]() { counter.fetch_add(1); }));
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      future.get();
    }
  }
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> executed{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      // The first tasks sleep briefly so a backlog builds up behind them;
      // the destructor must run that backlog, not drop it.
      pool.Submit([i, &executed]() {
        if (i < 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        executed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletesEverything) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace pronghorn
