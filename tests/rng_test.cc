#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pronghorn {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 42;
  const uint64_t first = SplitMix64(s);
  const uint64_t second = SplitMix64(s);
  EXPECT_NE(first, second);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(123, 456), HashCombine(123, 456));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(99);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  EXPECT_EQ(child1.NextUint64(), child1_again.NextUint64());
  EXPECT_NE(child1.NextUint64(), child2.NextUint64());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.Fork(3);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
  EXPECT_EQ(rng.UniformUint64(1), 0u);
  EXPECT_EQ(rng.UniformUint64(0), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values should appear in 2000 draws.
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(5);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Gaussian(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(8);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexHonorsWeights) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(12);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 8000.0, 0.25, 0.05);
  }
}

TEST(RngTest, WeightedIndexNegativeTreatedAsZero) {
  Rng rng(13);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(14);
  const std::vector<double> weights = {0.7};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(16);
  std::vector<int> values(20);
  for (int i = 0; i < 20; ++i) {
    values[static_cast<size_t>(i)] = i;
  }
  std::vector<int> original = values;
  rng.Shuffle(values);
  EXPECT_NE(values, original);  // 1/20! chance of spurious failure.
}

TEST(RngTest, StateRoundTripResumesStream) {
  Rng a(17);
  (void)a.NextUint64();
  const auto saved = a.state();
  const uint64_t expected = a.NextUint64();
  Rng b(0);
  b.set_state(saved);
  EXPECT_EQ(b.NextUint64(), expected);
}

// Property sweep: every distribution helper stays in its documented domain
// across a spread of seeds.
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, DomainsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.UniformUint64(100), 100u);
    const double u = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
    EXPECT_GE(rng.Exponential(1.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 2u, 42u, 1337u, 0xffffffffffffffffULL));

}  // namespace
}  // namespace pronghorn
