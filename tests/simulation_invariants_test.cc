// Property-based end-to-end invariants: for random policy configurations,
// eviction regimes, benchmarks, and seeds, the full stack must uphold the
// structural guarantees of the design regardless of outcome quality.

#include <gtest/gtest.h>

#include "src/core/request_centric_policy.h"
#include "src/platform/function_simulation.h"

namespace pronghorn {
namespace {

struct Scenario {
  const char* benchmark;
  uint32_t beta;
  uint32_t pool_capacity;
  uint32_t w;
  uint32_t eviction_k;
  uint64_t seed;
};

class SimulationInvariants : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimulationInvariants, HoldAcrossTheRun) {
  const Scenario& scenario = GetParam();
  const auto profile = WorkloadRegistry::Default().Find(scenario.benchmark);
  ASSERT_TRUE(profile.ok());

  PolicyConfig config;
  config.beta = scenario.beta;
  config.pool_capacity = scenario.pool_capacity;
  config.max_checkpoint_request = scenario.w;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  auto eviction = EveryKRequestsEviction::Create(scenario.eviction_k);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = scenario.seed;
  FunctionSimulation sim(**profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  constexpr uint64_t kRequests = 260;
  auto report = sim.RunClosedLoop(kRequests);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // --- Record-stream invariants -----------------------------------------
  ASSERT_EQ(report->records.size(), kRequests);
  uint64_t lifetimes_seen = 0;
  uint64_t previous_maturity = 0;
  for (size_t i = 0; i < report->records.size(); ++i) {
    const RequestRecord& record = report->records[i];
    EXPECT_EQ(record.global_index, i);
    EXPECT_GT(record.latency, Duration::Zero());
    EXPECT_GE(record.request_number, 1u);
    if (record.first_of_lifetime) {
      ++lifetimes_seen;
    } else {
      // Within a lifetime, maturity advances by exactly one per request.
      EXPECT_EQ(record.request_number, previous_maturity + 1) << i;
    }
    if (record.cold_start) {
      EXPECT_TRUE(record.first_of_lifetime) << i;
      EXPECT_EQ(record.request_number, 1u) << i;
    }
    previous_maturity = record.request_number;
  }

  // --- Counter invariants -------------------------------------------------
  EXPECT_EQ(report->worker_lifetimes, lifetimes_seen);
  EXPECT_EQ(report->worker_lifetimes, report->cold_starts + report->restores);
  EXPECT_EQ(report->worker_lifetimes,
            (kRequests + scenario.eviction_k - 1) / scenario.eviction_k);
  // Algorithm 1 plans at most one checkpoint per worker lifetime.
  EXPECT_LE(report->checkpoints, report->worker_lifetimes);
  EXPECT_EQ(report->checkpoints, sim.engine().checkpoints_taken());
  EXPECT_EQ(report->restores, sim.engine().restores_performed());
  EXPECT_EQ(report->overheads.requests_served, kRequests);

  // --- Learned-state invariants -------------------------------------------
  auto state = sim.LoadPolicyState();
  ASSERT_TRUE(state.ok());
  EXPECT_LE(state->pool.size(), scenario.pool_capacity);
  for (const PoolEntry& entry : state->pool.entries()) {
    // W bounds every checkpoint's request number (Table 2).
    EXPECT_LE(entry.metadata.request_number, scenario.w);
    EXPECT_GE(entry.metadata.request_number, 1u);
    EXPECT_TRUE(sim.object_store().Contains(entry.object_key))
        << entry.object_key;
  }
  // Every stored snapshot object is reachable from the pool (no leaks).
  EXPECT_EQ(sim.object_store().ListKeys("snapshots/").size(), state->pool.size());
  // theta only holds values at indices the run could have produced.
  for (uint64_t i = 0; i < state->theta.length(); ++i) {
    EXPECT_GE(state->theta.At(i), 0.0);
  }
  EXPECT_EQ(state->theta.At(0), 0.0);  // Request numbers start at 1.
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimulationInvariants,
    ::testing::Values(Scenario{"DynamicHTML", 1, 12, 100, 1, 1},
                      Scenario{"DynamicHTML", 4, 12, 100, 4, 2},
                      Scenario{"DynamicHTML", 20, 12, 100, 20, 3},
                      Scenario{"BFS", 1, 2, 50, 1, 4},
                      Scenario{"BFS", 8, 1, 100, 8, 5},
                      Scenario{"Hash", 4, 12, 200, 4, 6},
                      Scenario{"Uploader", 4, 6, 100, 4, 7},
                      Scenario{"HTMLRendering", 20, 24, 200, 20, 8},
                      Scenario{"MST", 3, 12, 10, 3, 9},
                      Scenario{"Compression", 2, 12, 100, 2, 10},
                      // beta deliberately mismatched with eviction k.
                      Scenario{"DFS", 16, 12, 100, 4, 11},
                      Scenario{"PageRank", 2, 12, 100, 10, 12}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return std::string(info.param.benchmark) + "_b" +
             std::to_string(info.param.beta) + "_C" +
             std::to_string(info.param.pool_capacity) + "_W" +
             std::to_string(info.param.w) + "_k" +
             std::to_string(info.param.eviction_k) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace pronghorn
